"""Tests for the language models and the CLgen synthesizer."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError, SynthesisError
from repro.model import (
    CharacterVocabulary,
    LSTMConfig,
    LSTMLanguageModel,
    NgramLanguageModel,
    StepDecaySchedule,
    apply_temperature,
    clip_gradients,
    load_model,
    save_model,
    train_model,
)
from repro.preprocess import RejectionFilter
from repro.synthesis import ArgumentSpec, CLgen, KernelArgument, KernelSampler, SamplerConfig


class TestVocabulary:
    def test_round_trip(self):
        vocabulary = CharacterVocabulary.from_text("kernel void {}")
        encoded = vocabulary.encode("void")
        assert vocabulary.decode(encoded) == "void"

    def test_unknown_characters_map_to_reserved_index(self):
        vocabulary = CharacterVocabulary.from_text("abc")
        assert vocabulary.index("z") == 0
        assert vocabulary.decode([0]) == ""

    def test_empty_text_raises(self):
        with pytest.raises(ModelError):
            CharacterVocabulary.from_text("")

    @given(st.text(min_size=1, max_size=100))
    def test_encode_decode_identity_on_seen_text(self, text):
        vocabulary = CharacterVocabulary.from_text(text)
        assert vocabulary.decode(vocabulary.encode(text)) == text


class TestNgramModel:
    def test_distribution_sums_to_one(self, corpus):
        model = NgramLanguageModel(order=6)
        model.fit(corpus.training_text()[:5000])
        distribution = model.next_distribution("__kernel void A(")
        assert distribution.shape == (model.vocabulary.size,)
        assert distribution.sum() == pytest.approx(1.0)

    def test_memorizes_deterministic_sequence(self):
        model = NgramLanguageModel(order=4)
        model.fit("abcabcabcabcabcabc")
        distribution = model.next_distribution("ab")
        best = model.vocabulary.character(int(np.argmax(distribution)))
        assert best == "c"

    def test_perplexity_lower_on_training_like_text(self, corpus):
        model = NgramLanguageModel(order=6)
        text = corpus.training_text()[:4000]
        model.fit(text)
        in_domain = model.perplexity(text[:400])
        out_of_domain = model.perplexity("zzzz qqqq @@@@ ####" * 20)
        assert in_domain < out_of_domain

    def test_sampling_uses_only_vocabulary_characters(self, corpus):
        model = NgramLanguageModel(order=6)
        model.fit(corpus.training_text()[:4000])
        rng = random.Random(3)
        sample = "".join(model.sample_next("__kernel ", rng) for _ in range(50))
        assert all(c in model.vocabulary for c in sample)

    def test_serialization_round_trip(self, tmp_path, corpus):
        model = NgramLanguageModel(order=5)
        model.fit(corpus.training_text()[:2000])
        path = save_model(model, tmp_path / "model.json")
        restored = load_model(path)
        context = "__kernel void"
        assert np.allclose(restored.next_distribution(context), model.next_distribution(context))

    def test_untrained_model_raises(self):
        with pytest.raises(ModelError):
            NgramLanguageModel().next_distribution("x")

    def test_invalid_order_raises(self):
        with pytest.raises(ModelError):
            NgramLanguageModel(order=1)


class TestLSTM:
    def test_training_reduces_loss(self, corpus):
        model = LSTMLanguageModel(LSTMConfig(hidden_size=32, num_layers=1, sequence_length=32,
                                             batch_size=4, epochs=4, seed=1))
        summary = model.fit(corpus.training_text()[:3000])
        assert summary.improved
        assert summary.parameters > 1000

    def test_distribution_and_sampler(self, corpus):
        model = LSTMLanguageModel(LSTMConfig.test_configuration())
        model.fit(corpus.training_text()[:1500])
        distribution = model.next_distribution("__kernel")
        assert distribution.sum() == pytest.approx(1.0)
        sampler = model.make_sampler("__kernel void A(")
        character = sampler.sample(random.Random(0), temperature=0.8)
        assert len(character) == 1

    def test_too_short_text_raises(self):
        model = LSTMLanguageModel(LSTMConfig.test_configuration())
        with pytest.raises(ModelError):
            model.fit("short")

    def test_checkpoint_round_trip(self, tmp_path, corpus):
        model = LSTMLanguageModel(LSTMConfig.test_configuration())
        model.fit(corpus.training_text()[:1500])
        path = save_model(model, tmp_path / "lstm.json.gz")
        restored = load_model(path)
        context = "__kernel void"
        assert np.allclose(restored.next_distribution(context), model.next_distribution(context),
                           atol=1e-8)

    def test_paper_configuration_matches_section_4_2(self):
        config = LSTMConfig.paper_configuration()
        assert config.hidden_size == 2048 and config.num_layers == 3
        assert config.optimizer == "sgd" and config.learning_rate == 0.002
        assert config.lr_decay_factor == 0.5 and config.lr_decay_interval == 5
        assert config.epochs == 50


class TestOptimizers:
    def test_step_decay_schedule(self):
        schedule = StepDecaySchedule(initial_rate=0.002, factor=0.5, interval=5)
        assert schedule.rate(0) == 0.002
        assert schedule.rate(5) == 0.001
        assert schedule.rate(10) == 0.0005

    def test_gradient_clipping(self):
        gradients = {"w": np.ones(100) * 10.0}
        norm = clip_gradients(gradients, max_norm=5.0)
        assert norm > 5.0
        assert np.linalg.norm(gradients["w"]) == pytest.approx(5.0)

    def test_apply_temperature_sharpens(self):
        distribution = np.array([0.6, 0.3, 0.1])
        sharp = apply_temperature(distribution, 0.25)
        assert sharp[0] > distribution[0]
        assert sharp.sum() == pytest.approx(1.0)


class TestTrainer:
    def test_train_model_ngram(self, corpus):
        trained = train_model(corpus, backend="ngram", ngram_order=8)
        assert trained.corpus_characters > 0
        assert trained.summary.parameters > 0

    def test_unknown_backend_raises(self, corpus):
        with pytest.raises(ModelError):
            train_model(corpus, backend="transformer")


class TestArgumentSpec:
    def test_paper_default_seed_text(self):
        spec = ArgumentSpec.paper_default()
        assert spec.seed_text() == (
            "__kernel void A(__global float* a, __global float* b, "
            "__global float* c, const int d) {"
        )

    def test_from_kernel_source(self, reduction_source):
        spec = ArgumentSpec.from_kernel_source(reduction_source)
        assert spec.argument_count == 4
        assert spec.arguments[2].address_space == "local"
        assert spec.arguments[3].is_scalar

    def test_custom_spec_rendering(self):
        spec = ArgumentSpec((KernelArgument("int", is_pointer=True),
                             KernelArgument("float", is_const=True)))
        assert spec.render_signature("K") == "__kernel void K(__global int* a, const float b)"

    def test_from_source_without_kernel_raises(self):
        with pytest.raises(SynthesisError):
            ArgumentSpec.from_kernel_source("float f(float a) { return a; }")


class TestSamplerAndCLgen:
    def test_sampler_stops_at_balanced_braces(self, clgen):
        sampler = KernelSampler(clgen.model, SamplerConfig(temperature=0.5, max_kernel_length=600))
        candidate = sampler.sample(ArgumentSpec.paper_default().seed_text(), random.Random(7))
        if candidate.completed:
            assert candidate.text.count("{") == candidate.text.count("}")
        assert candidate.characters_sampled <= 600

    def test_generate_kernels_are_unique_and_compilable(self, clgen):
        result = clgen.generate_kernels(8, seed=5, max_attempts_per_kernel=40)
        assert result.kernels, "expected at least one accepted kernel"
        rejection = RejectionFilter()
        sources = [k.source for k in result.kernels]
        assert len(set(sources)) == len(sources)
        assert all(rejection.accepts(source) for source in sources)

    def test_generated_kernels_match_argument_spec(self, clgen):
        result = clgen.generate_kernels(5, seed=9)
        for kernel in result.kernels:
            assert kernel.source.lstrip().startswith("__kernel void A(")
            assert kernel.static_instruction_count >= 3

    def test_statistics_are_consistent(self, clgen):
        result = clgen.generate_kernels(6, seed=2)
        stats = result.statistics
        assert stats.generated == len(result.kernels)
        assert stats.attempts >= stats.generated
        assert 0.0 <= stats.acceptance_rate <= 1.0
        assert stats.generated + stats.rejected == stats.attempts

    def test_zero_count_raises(self, clgen):
        with pytest.raises(SynthesisError):
            clgen.generate_kernels(0)

    def test_generation_is_deterministic_for_seed(self, clgen):
        first = [k.source for k in clgen.generate_kernels(4, seed=42).kernels]
        second = [k.source for k in clgen.generate_kernels(4, seed=42).kernels]
        assert first == second
