"""Tests for the content-addressed artifact store (``repro.store``).

Covers the store invariants the pipeline depends on: schema-version
invalidation, recovery from corrupted/truncated disk entries, LRU bounds,
concurrent writers (threads and processes), and fingerprint stability
across sessions (a fingerprint must not depend on ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import multiprocessing
import pickle
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.store.artifact_store import ArtifactStore, resolve_store
from repro.store.fingerprint import SCHEMA_VERSIONS, fingerprint, text_digest


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = fingerprint("mine", {"seed": 1, "repository_count": 10})
        b = fingerprint("mine", {"repository_count": 10, "seed": 1})
        assert a == b
        assert len(a) == 64

    def test_distinguishes_kind_payload_and_floats(self):
        base = fingerprint("mine", {"seed": 1})
        assert fingerprint("corpus", {"seed": 1}) != base
        assert fingerprint("mine", {"seed": 2}) != base
        assert fingerprint("mine", {"seed": 1.0}) != base  # int vs float
        assert fingerprint("mine", {"t": 0.1}) != fingerprint("mine", {"t": 0.2})

    def test_nested_and_tuple_payloads(self):
        nested = fingerprint("mine", {"a": {"b": [1, 2, (3, 4)]}})
        assert nested == fingerprint("mine", {"a": {"b": (1, 2, [3, 4])}})

    def test_rejects_unstable_values(self):
        with pytest.raises(TypeError):
            fingerprint("mine", {"bad": object()})
        with pytest.raises(TypeError):
            fingerprint("mine", {1: "non-string key"})  # type: ignore[dict-item]

    def test_stable_across_sessions(self):
        """The same payload must fingerprint identically in a fresh
        interpreter with a different hash seed (no dict-order or
        PYTHONHASHSEED dependence)."""
        expected = fingerprint(
            "synthesis", {"model": "abc", "temperature": 0.6, "count": 50}
        )
        script = (
            "from repro.store.fingerprint import fingerprint;"
            "print(fingerprint('synthesis',"
            " {'count': 50, 'model': 'abc', 'temperature': 0.6}))"
        )
        for hash_seed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
                    "PYTHONHASHSEED": hash_seed,
                },
            )
            assert out.returncode == 0, out.stderr
            assert out.stdout.strip() == expected

    def test_text_digest_is_injective_on_boundaries(self):
        assert text_digest("ab", "c") != text_digest("a", "bc")


class TestArtifactStoreBasics:
    def test_round_trip_memory_only(self):
        store = ArtifactStore()
        assert store.get("mine", "k" * 64) is None
        store.put("mine", "k" * 64, ["text-1", "text-2"])
        assert store.get("mine", "k" * 64) == ["text-1", "text-2"]
        assert store.counts("mine") == {"hit": 1, "miss": 1}

    def test_hits_return_fresh_copies(self):
        """A consumer mutating its result must not poison the cache."""
        store = ArtifactStore()
        store.put("mine", "a" * 64, ["one", "two"])
        first = store.get("mine", "a" * 64)
        first.append("mutation")
        assert store.get("mine", "a" * 64) == ["one", "two"]

    def test_disk_round_trip_across_instances(self, tmp_path):
        first = ArtifactStore(directory=tmp_path / "store")
        first.put("corpus", "b" * 64, {"kernels": ["k"]})
        second = ArtifactStore(directory=tmp_path / "store")
        assert second.get("corpus", "b" * 64) == {"kernels": ["k"]}

    def test_kinds_do_not_collide(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        store.put("mine", "c" * 64, "mine-value")
        store.put("corpus", "c" * 64, "corpus-value")
        assert store.get("mine", "c" * 64) == "mine-value"
        assert store.get("corpus", "c" * 64) == "corpus-value"

    def test_lru_bounds_memory(self):
        store = ArtifactStore(memory_entries=4)
        for index in range(10):
            store.put("mine", f"{index:064d}", index)
        assert store.memory_size() == 4
        # The most recent entries survive; older ones were evicted (and with
        # no disk layer, evicted means gone).
        assert store.get("mine", f"{9:064d}") == 9
        assert store.get("mine", f"{0:064d}") is None

    def test_lru_eviction_spares_disk(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store", memory_entries=2)
        for index in range(6):
            store.put("mine", f"{index:064d}", index)
        assert store.memory_size() == 2
        # Evicted from memory but recoverable from disk.
        assert store.get("mine", f"{0:064d}") == 0

    def test_resolve_store_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
        store = resolve_store(None)
        assert store.directory == (tmp_path / "env-store").resolve() or (
            str(store.directory) == str(tmp_path / "env-store")
        )
        assert resolve_store(None) is store
        monkeypatch.delenv("REPRO_STORE_DIR")
        assert resolve_store(None).directory is None


class TestSchemaInvalidation:
    def test_schema_bump_invalidates_disk_entries(self, tmp_path, monkeypatch):
        store = ArtifactStore(directory=tmp_path / "store")
        store.put("model", "d" * 64, {"checkpoint": {}})
        store.clear_memory()
        assert store.get("model", "d" * 64) == {"checkpoint": {}}

        monkeypatch.setitem(SCHEMA_VERSIONS, "model", SCHEMA_VERSIONS["model"] + 1)
        store.clear_memory()
        assert store.get("model", "d" * 64) is None
        # Storing under the new schema works and survives.
        store.put("model", "d" * 64, {"checkpoint": {"new": True}})
        store.clear_memory()
        assert store.get("model", "d" * 64) == {"checkpoint": {"new": True}}

    def test_kind_mismatch_on_disk_is_a_miss(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        store.put("mine", "e" * 64, "value")
        path = store.entry_path("mine", "e" * 64)
        # Rewrite the entry claiming a different kind.
        path.write_bytes(pickle.dumps(("corpus", SCHEMA_VERSIONS["corpus"], "value")))
        store.clear_memory()
        assert store.get("mine", "e" * 64) is None


class TestCorruptionRecovery:
    @pytest.mark.parametrize("damage", ["garbage", "truncate", "empty"])
    def test_damaged_entries_are_misses_and_pruned(self, tmp_path, damage):
        store = ArtifactStore(directory=tmp_path / "store")
        key = "f" * 64
        store.put("corpus", key, {"kernels": list(range(100))})
        path = store.entry_path("corpus", key)
        original = path.read_bytes()
        if damage == "garbage":
            path.write_bytes(b"\x00not a pickle\xff")
        elif damage == "truncate":
            path.write_bytes(original[: len(original) // 2])
        else:
            path.write_bytes(b"")
        store.clear_memory()
        assert store.get("corpus", key) is None
        # No reader-side unlink (it would race a concurrent writer's
        # os.replace); the recompute's put atomically heals the slot.
        store.put("corpus", key, {"kernels": [1]})
        store.clear_memory()
        assert store.get("corpus", key) == {"kernels": [1]}
        assert path.read_bytes() != original

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        key = "a1" + "0" * 62
        path = tmp_path / "store" / "mine" / key[:2] / f"{key}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps("not a (kind, schema, value) tuple"))
        assert store.get("mine", key) is None


def _process_writer(arguments: tuple[str, int]) -> int:
    """Writes then reads its own slice of keys (run in a child process)."""
    directory, worker = arguments
    store = ArtifactStore(directory=directory, memory_entries=4)
    ok = 0
    for index in range(8):
        key = f"{worker:02d}{index:02d}" + "0" * 60
        store.put("mine", key, {"worker": worker, "index": index})
        if store.get("mine", key) == {"worker": worker, "index": index}:
            ok += 1
    # Everyone also hammers one shared key with different (valid) values.
    store.put("corpus", "ff" * 32, {"winner": worker})
    return ok


class TestConcurrentWriters:
    def test_threads_share_one_store(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store", memory_entries=16)
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                for index in range(20):
                    key = f"{worker_id:02d}{index:02d}" + "0" * 60
                    store.put("mine", key, (worker_id, index))
                    assert store.get("mine", key) == (worker_id, index)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.memory_size() <= 16

    def test_processes_share_one_directory(self, tmp_path):
        directory = str(tmp_path / "store")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("no fork start method on this platform")
        with context.Pool(processes=3) as pool:
            results = pool.map(_process_writer, [(directory, n) for n in range(3)])
        assert results == [8, 8, 8]
        # A fresh store in this process reads everything the children wrote.
        reader = ArtifactStore(directory=directory)
        for worker in range(3):
            for index in range(8):
                key = f"{worker:02d}{index:02d}" + "0" * 60
                assert reader.get("mine", key) == {"worker": worker, "index": index}
        # The contended key holds one complete value from some writer.
        contended = reader.get("corpus", "ff" * 32)
        assert contended in [{"winner": n} for n in range(3)]


class TestStatsAndGC:
    """Store hygiene (ISSUE 4): size accounting and the age/LRU gc that
    keeps shared sharded stores from growing without bound."""

    @staticmethod
    def _fill(store: ArtifactStore, kind: str, count: int, payload_bytes: int = 256):
        for index in range(count):
            key = f"{index:02d}" + "a" * 62
            store.put(kind, key, "x" * payload_bytes)

    def test_stats_counts_entries_and_bytes_per_kind(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        self._fill(store, "mine", 3)
        self._fill(store, "corpus", 2)
        stats = store.stats()
        assert stats.entries == 5
        assert stats.kinds["mine"]["entries"] == 3
        assert stats.kinds["corpus"]["entries"] == 2
        assert stats.bytes == sum(b["bytes"] for b in stats.kinds.values())
        assert stats.bytes > 5 * 256  # pickle overhead on top of payloads

    def test_stats_memory_only_store(self):
        store = ArtifactStore(directory=None)
        store.put("mine", "ab" * 32, [1, 2, 3])
        stats = store.stats()
        assert stats.entries == 0 and stats.bytes == 0
        assert stats.memory_entries == 1

    def test_gc_by_age_drops_only_old_entries(self, tmp_path):
        import os as _os

        store = ArtifactStore(directory=tmp_path / "store")
        self._fill(store, "mine", 4)
        old = store.entry_path("mine", "00" + "a" * 62)
        aged = old.stat().st_mtime - 1000
        _os.utime(old, (aged, aged))
        result = store.gc(max_age_seconds=500)
        assert result.removed_entries == 1
        assert result.remaining_entries == 3
        assert not old.exists()
        # The dropped entry reads as a miss and heals by recomputation.
        fresh = ArtifactStore(directory=tmp_path / "store")
        assert fresh.get("mine", "00" + "a" * 62) is None

    def test_gc_by_max_bytes_evicts_least_recently_written(self, tmp_path):
        import os as _os

        store = ArtifactStore(directory=tmp_path / "store")
        self._fill(store, "mine", 5)
        # Spread mtimes so eviction order is deterministic: entry 0 oldest.
        for index in range(5):
            path = store.entry_path("mine", f"{index:02d}" + "a" * 62)
            stamp = path.stat().st_mtime - (100 - index)
            _os.utime(path, (stamp, stamp))
        total = store.stats().bytes
        entry_size = total // 5
        result = store.gc(max_bytes=total - 2 * entry_size)
        assert result.removed_entries == 2
        assert result.remaining_bytes <= total - 2 * entry_size
        # Oldest two gone, newest three kept.
        assert not store.entry_path("mine", "00" + "a" * 62).exists()
        assert not store.entry_path("mine", "01" + "a" * 62).exists()
        assert store.entry_path("mine", "04" + "a" * 62).exists()

    def test_gc_sweeps_stale_temp_files(self, tmp_path):
        import os as _os

        store = ArtifactStore(directory=tmp_path / "store")
        self._fill(store, "mine", 1)
        stale = store.entry_path("mine", "00" + "a" * 62).with_suffix(".tmp.999.1")
        stale.write_bytes(b"half-written")
        aged = stale.stat().st_mtime - 7200
        _os.utime(stale, (aged, aged))
        fresh_tmp = store.entry_path("mine", "00" + "a" * 62).with_suffix(".tmp.999.2")
        fresh_tmp.write_bytes(b"in flight")
        store.gc(max_age_seconds=1e9)
        assert not stale.exists()
        assert fresh_tmp.exists()  # a write in flight is never swept
        assert store.stats().entries == 1

    def test_gc_noop_without_bounds_is_safe(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        self._fill(store, "mine", 2)
        result = store.gc()
        assert result.removed_entries == 0
        assert result.remaining_entries == 2

    def test_cli_store_stats_and_gc(self, tmp_path, capsys):
        from repro.cli import main

        store = ArtifactStore(directory=tmp_path / "store")
        self._fill(store, "mine", 3)
        assert main(["store", "stats", "--cache-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "mine" in out and "total" in out

        assert main(["store", "gc", "--max-bytes", "0", "--cache-dir",
                     str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "removed 3 entries" in out
        assert store.stats().entries == 0

    def test_cli_store_gc_requires_a_bound(self, tmp_path):
        from repro.cli import main

        assert main(["store", "gc", "--cache-dir", str(tmp_path / "store")]) == 2

    def test_cli_size_and_age_suffixes(self):
        from repro.cli import _parse_age, _parse_size

        assert _parse_size("500M") == 500 * (1 << 20)
        assert _parse_size("2G") == 2 * (1 << 30)
        assert _parse_size("1024") == 1024
        assert _parse_age("7d") == 7 * 86400.0
        assert _parse_age("30m") == 1800.0
        assert _parse_age("45") == 45.0

    def test_cli_rejects_negative_gc_bounds(self, tmp_path, capsys):
        import pytest as _pytest

        from repro.cli import main

        with _pytest.raises(SystemExit):
            main(["store", "gc", "--max-bytes", "-500M",
                  "--cache-dir", str(tmp_path / "store")])
        with _pytest.raises(SystemExit):
            main(["store", "gc", "--max-age", "-1d",
                  "--cache-dir", str(tmp_path / "store")])
