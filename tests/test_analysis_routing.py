"""Engine routing, the soundness harness and the lint front end."""

import pytest

from repro.analysis import ANALYSIS_STATS
from repro.analysis.lint import lint_source, lint_sources, lint_suites
from repro.analysis.soundness import check_suites, cross_check_source
from repro.clc import compile_source
from repro.execution.cache import (
    GLOBAL_COMPILATION_CACHE,
    analysis_verdict_for,
    run_kernel,
)
from repro.execution.memory import MemoryPool
from repro.execution.ndrange import NDRange
from repro.preprocess.shim import shim_include_resolver, with_shim

DOOMED = """
kernel void k(global float* a, global float* out, const int n) {
    int gid = get_global_id(0);
    if (gid % 2 == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
    out[gid] = a[gid] + 1.0f;
}
"""

SAFE = """
kernel void k(global float* a, global float* out, const int n) {
    int gid = get_global_id(0);
    out[gid] = a[gid] * 2.0f;
}
"""


def _compile(source):
    return compile_source(
        with_shim(source), include_resolver=shim_include_resolver, strict=False
    )


def _run(source, engine="auto"):
    compilation = _compile(source)
    pool = MemoryPool()
    a = pool.allocate("a", 16)
    a.copy_from([float(i) for i in range(16)])
    pool.allocate("out", 16)
    run_kernel(
        compilation.unit, pool, {"n": 16}, NDRange((16,), (8,)), engine=engine
    )
    return pool.get("out").to_list()


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    monkeypatch.delenv("REPRO_STATIC_ROUTING", raising=False)
    GLOBAL_COMPILATION_CACHE.clear()
    ANALYSIS_STATS.reset()
    yield
    GLOBAL_COMPILATION_CACHE.clear()
    ANALYSIS_STATS.reset()


class TestRouting:
    def test_doomed_kernel_skips_lockstep(self):
        _run(DOOMED)
        assert ANALYSIS_STATS.routed_skips == 1

    def test_safe_kernel_not_skipped(self):
        _run(SAFE)
        assert ANALYSIS_STATS.routed_skips == 0

    def test_kill_switch_disables_routing(self, monkeypatch):
        monkeypatch.setenv("REPRO_STATIC_ROUTING", "0")
        _run(DOOMED)
        assert ANALYSIS_STATS.routed_skips == 0

    def test_routed_and_unrouted_outputs_bit_identical(self, monkeypatch):
        routed = _run(DOOMED)
        monkeypatch.setenv("REPRO_STATIC_ROUTING", "0")
        GLOBAL_COMPILATION_CACHE.clear()
        unrouted = _run(DOOMED)
        compiled = _run(DOOMED, engine="compiled")
        assert routed == unrouted == compiled

    def test_explicit_vectorized_engine_ignores_verdict(self):
        # engine="vectorized" is the A/B lever: it must attempt lockstep
        # even for statically-doomed kernels (and fall back on the bailout).
        _run(DOOMED, engine="vectorized")
        assert ANALYSIS_STATS.routed_skips == 0

    def test_verdict_cached_per_unit(self):
        compilation = _compile(DOOMED)
        first = analysis_verdict_for(compilation.unit)
        second = analysis_verdict_for(compilation.unit)
        assert first is second
        assert ANALYSIS_STATS.kernels_analyzed == 1


class TestSoundnessHarness:
    def test_safe_kernel_runs_clean(self):
        record = cross_check_source(SAFE, name="safe")
        assert record.static == "safe"
        assert record.dynamic == "clean"
        assert record.agrees and not record.violation

    def test_doomed_kernel_bails_dynamically(self):
        record = cross_check_source(DOOMED, name="doomed")
        assert record.static == "bailout"
        assert record.dynamic == "bailout"
        assert "divergent work-group barrier" in record.dynamic_cause
        assert record.agrees

    def test_uncompilable_source_recorded(self):
        record = cross_check_source("kernel void k(", name="broken")
        assert record.dynamic == "uncompilable"
        assert not record.violation

    def test_suite_soundness_gate(self):
        report = check_suites()
        assert report.total >= 70
        assert report.sound, [record.to_dict() for record in report.violations]
        # The safe class must be non-trivial, or the gate proves nothing.
        assert report.classification_counts().get("safe", 0) >= 10

    def test_report_serializes(self):
        import json

        report = check_suites()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["total"] == report.total
        assert payload["sound"] is True


class TestLint:
    def test_lint_source_classifies(self):
        record = lint_source(DOOMED, name="doomed")
        assert record.classification == "bailout"
        assert record.to_dict()["verdict"]["divergent_barriers"] == 1

    def test_lint_uncompilable(self):
        record = lint_source("kernel void k(", name="broken")
        assert record.classification == "uncompilable"
        assert record.error

    def test_lint_sources_summary(self):
        report = lint_sources([("safe", SAFE), ("doomed", DOOMED)])
        counts = report.by_classification()
        assert counts == {"safe": 1, "bailout": 1}
        assert [record.name for record in report.bailout_certain] == ["doomed"]

    def test_lint_suites_has_no_bailout_certain_kernels(self):
        # Suite kernels are real benchmarks: the analyzer must never route
        # one of them away from the lockstep tier.
        report = lint_suites()
        assert report.total >= 70
        assert report.bailout_certain == []

    def test_lint_paths(self, tmp_path):
        from repro.analysis.lint import lint_paths

        good = tmp_path / "good.cl"
        good.write_text(SAFE)
        missing = tmp_path / "missing.cl"
        report = lint_paths([str(good), str(missing)])
        by_name = {record.name: record for record in report.records}
        assert by_name[str(good)].classification == "safe"
        assert by_name[str(missing)].error


class TestLintCli:
    def test_cli_lint_suites(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out

    def test_cli_lint_soundness(self, capsys):
        from repro.cli import main

        assert main(["lint", "--soundness"]) == 0
        out = capsys.readouterr().out
        assert "violations=0" in out

    def test_cli_lint_json(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "k.cl"
        path.write_text(DOOMED)
        assert main(["lint", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["by_classification"] == {"bailout": 1}


class TestAnalysisFeatureColumns:
    def test_extended_tuple_unchanged_and_analysis_opt_in(self):
        from repro.features.static_features import extract_static_features

        plain = extract_static_features(DOOMED)
        assert plain.as_analysis_tuple() == plain.as_extended_tuple() + (0, 0, 0)

        analyzed = extract_static_features(DOOMED, with_analysis=True)
        assert analyzed.as_extended_tuple() == plain.as_extended_tuple()
        assert analyzed.divergent_barriers == 1
        assert analyzed.bailout_class == 3

    def test_safe_kernel_columns(self):
        from repro.features.static_features import extract_static_features

        features = extract_static_features(SAFE, with_analysis=True)
        assert features.divergent_barriers == 0
        assert features.race_sites == 0
        assert features.bailout_class == 0


class TestLintFilterStage:
    @staticmethod
    def _config(**overrides):
        from repro.store.stages import PipelineConfig

        return PipelineConfig(
            repository_count=12,
            seed=3,
            synthetic_kernel_count=4,
            executed_global_size=32,
            local_size=16,
            payload_seed=3,
            suites=("NPB",),
            **overrides,
        )

    def test_fingerprint_stable_unless_enabled(self):
        import dataclasses

        from repro.store.stages import synthetic_execution_fingerprint

        base = self._config()
        assert synthetic_execution_fingerprint(base) == synthetic_execution_fingerprint(
            dataclasses.replace(base)
        )
        assert synthetic_execution_fingerprint(base) != synthetic_execution_fingerprint(
            dataclasses.replace(base, lint_filter=True)
        )

    def test_lint_verdicts_persist_and_filter_measurements(self):
        from repro.store.stages import PipelineRunner

        runner = PipelineRunner()
        config = self._config(lint_filter=True)
        verdicts = runner.lint_verdicts(config)
        synthesis = runner.synthesis(config)
        assert len(verdicts) == len(synthesis.kernels)
        assert all("classification" in record for record in verdicts)

        measurements = runner.synthetic_measurements(config)
        doomed = {
            record["name"]
            for record in verdicts
            if record["classification"] == "bailout"
        }
        measured_names = {measurement.name for measurement in measurements}
        assert measured_names.isdisjoint(doomed)
        expected = {
            record["name"] for record in verdicts if record["name"] not in doomed
        }
        # Kernels that fail to execute are dropped by the driver; the filter
        # must only ever remove doomed rows, never add names.
        assert measured_names <= expected
