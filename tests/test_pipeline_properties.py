"""Cross-module property-based tests and CLI smoke tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import build_parser, main
from repro.clc import lower, parse
from repro.clc.printer import print_source
from repro.corpus import ContentFileGenerator
from repro.preprocess import CodeRewriter, RejectionFilter

_ARCHETYPES = [
    "add", "saxpy", "scale", "map", "zip", "stencil", "reduce", "dot",
    "matmul", "transpose", "activation", "threshold", "triad", "heavy", "copy",
]


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(_ARCHETYPES), st.integers(min_value=0, max_value=500))
def test_rewriting_preserves_static_feature_counts(archetype, seed):
    """Invariant: the rewriter is behaviour-preserving, so the static memory
    and branch profile of a kernel must survive normalization."""
    generated = ContentFileGenerator(seed=seed).generate_archetype(archetype)
    rewriter = CodeRewriter()
    rewritten = rewriter.rewrite_or_none(generated.text)
    if rewritten is None:
        return
    from repro.features import extract_static_features

    before = extract_static_features(generated.text)
    after = extract_static_features(rewritten.text)
    if before is None or after is None:
        return
    assert after.mem == before.mem
    assert after.localmem == before.localmem
    assert after.branches == before.branches


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(_ARCHETYPES), st.integers(min_value=0, max_value=300))
def test_printer_is_idempotent_on_normalized_code(archetype, seed):
    """Invariant: printing a parsed, already-normalized kernel is a fixpoint."""
    generated = ContentFileGenerator(seed=seed).generate_archetype(archetype)
    rewritten = CodeRewriter().rewrite_or_none(generated.text)
    if rewritten is None:
        return
    once = print_source(parse(rewritten.text))
    twice = print_source(parse(once))
    assert once == twice


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(_ARCHETYPES), st.integers(min_value=0, max_value=300))
def test_accepted_kernels_always_have_min_instructions(archetype, seed):
    """Invariant: anything the rejection filter accepts lowers to >= 3 instructions."""
    generated = ContentFileGenerator(seed=seed).generate_archetype(archetype)
    result = RejectionFilter().check(generated.text)
    if result.accepted:
        assert result.compilation is not None
        assert result.compilation.static_instruction_count >= 3


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_synthesized_candidates_never_exceed_max_length(clgen, seed):
    """Invariant: Algorithm 1 respects its maximum kernel length."""
    from repro.synthesis import ArgumentSpec

    candidate = clgen.sample_candidate(ArgumentSpec.paper_default(), random.Random(seed))
    assert candidate.characters_sampled <= clgen.sampler.config.max_kernel_length


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("mine", "train", "sample", "experiments"):
            assert command in text

    def test_mine_command_runs(self, capsys):
        assert main(["mine", "--repositories", "10", "--seed", "1"]) == 0
        captured = capsys.readouterr()
        assert "corpus:" in captured.out

    def test_sample_command_emits_kernels(self, capsys):
        assert main(["sample", "--count", "2", "--repositories", "20", "--seed", "1"]) == 0
        captured = capsys.readouterr()
        assert "__kernel void A(" in captured.out

    def test_train_command_with_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.json"
        assert main(["train", "--repositories", "15", "--checkpoint", str(checkpoint)]) == 0
        assert checkpoint.exists()
