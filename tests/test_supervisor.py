"""Tests for the crash-only fleet supervisor (``repro.store.supervisor``).

The supervision contract under test:

* exit classification — clean drains, scripted chaos (exit 70) and honest
  quarantine reports are never charged against the restart budget; real
  crashes (including death by signal) are;
* the restart budget — a rolling window caps charged crashes, consecutive
  crashes back off exponentially up to a cap, and a healthy stretch of
  uptime resets the ladder;
* the supervisor itself, run against scripted fake workers — chaos kills
  respawn for free, repeated real crashes degrade the slot while the
  survivors keep serving, drains stop everything cleanly, and the whole
  story lands in ``fleet/status.json``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.store.faults import CRASH_EXIT_CODE
from repro.store.supervisor import (
    CHAOS,
    CLEAN,
    CRASH,
    QUARANTINE,
    FleetSupervisor,
    RestartBudget,
    classify_exit,
    default_fleet_restarts,
    default_fleet_size,
    read_fleet_status,
)


class TestClassifyExit:
    """Table-driven: every (returncode, quarantine artifact?) pair."""

    @pytest.mark.parametrize(
        ("returncode", "quarantine_present", "expected"),
        [
            (0, False, CLEAN),
            (0, True, CLEAN),
            (CRASH_EXIT_CODE, False, CHAOS),
            (CRASH_EXIT_CODE, True, CHAOS),
            (1, True, QUARANTINE),
            (1, False, CRASH),
            (2, False, CRASH),
            (2, True, CRASH),
            (-9, False, CRASH),  # SIGKILL
            (-9, True, CRASH),  # a signal death is never a quarantine report
            (-15, False, CRASH),  # SIGTERM that skipped the clean path
        ],
    )
    def test_classification_table(self, returncode, quarantine_present, expected):
        assert classify_exit(returncode, quarantine_present) == expected


class TestRestartBudget:
    def test_window_exhaustion_degrades(self):
        budget = RestartBudget(max_restarts=3, window_seconds=60.0)
        assert budget.charge(now=0.0)
        assert budget.charge(now=1.0)
        assert budget.charge(now=2.0)
        assert not budget.charge(now=3.0)  # fourth within the window

    def test_window_rolls(self):
        budget = RestartBudget(max_restarts=2, window_seconds=10.0)
        assert budget.charge(now=0.0)
        assert budget.charge(now=1.0)
        # Both earlier charges have aged out of the window by t=20.
        assert budget.charge(now=20.0)
        assert budget.charged_in_window == 1

    def test_backoff_doubles_and_caps(self):
        budget = RestartBudget(
            max_restarts=100, window_seconds=1e6, backoff_base=0.5, backoff_cap=4.0
        )
        delays = []
        for moment in range(6):
            budget.charge(now=float(moment))
            delays.append(budget.backoff_seconds())
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]

    def test_healthy_uptime_resets_ladder(self):
        budget = RestartBudget(
            max_restarts=100,
            window_seconds=1e6,
            backoff_base=0.5,
            healthy_seconds=10.0,
        )
        budget.charge(now=0.0)
        budget.charge(now=1.0)
        assert budget.backoff_seconds() == 1.0
        budget.note_uptime(11.0)  # the worker ran real work before dying
        budget.charge(now=2.0)
        assert budget.backoff_seconds() == 0.5
        # A short-lived worker does NOT reset the ladder.
        budget.note_uptime(0.2)
        budget.charge(now=3.0)
        assert budget.backoff_seconds() == 1.0

    def test_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SIZE", "5")
        monkeypatch.setenv("REPRO_FLEET_RESTARTS", "7")
        assert default_fleet_size() == 5
        assert default_fleet_restarts() == 7
        monkeypatch.setenv("REPRO_FLEET_SIZE", "not-a-number")
        monkeypatch.setenv("REPRO_FLEET_RESTARTS", "0")  # below the minimum of 1
        with pytest.warns(RuntimeWarning):
            assert default_fleet_size() == 2
        with pytest.warns(RuntimeWarning):
            assert default_fleet_restarts() == 1


def _fake_worker_argv(exit_code: int, sleep_seconds: float = 0.0) -> list:
    """A scripted stand-in for ``repro worker --watch``."""
    return [
        sys.executable,
        "-c",
        f"import sys, time; time.sleep({sleep_seconds}); sys.exit({exit_code})",
    ]


def _supervisor(tmp_path: Path, **kwargs) -> FleetSupervisor:
    kwargs.setdefault("size", 1)
    kwargs.setdefault("status_interval", 0.0)
    return FleetSupervisor(tmp_path / "store", **kwargs)


def _wait(predicate, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestFleetSupervisor:
    def test_chaos_exit_respawns_for_free(self, tmp_path):
        supervisor = _supervisor(
            tmp_path, worker_argv=_fake_worker_argv(CRASH_EXIT_CODE)
        )
        slot = supervisor.slots[0]
        supervisor._spawn(slot, now=0.0)
        assert _wait(lambda: slot.process.poll() is not None)
        supervisor.tick(now=100.0)
        assert slot.last_class == CHAOS
        assert slot.state == "running"  # respawned immediately
        assert slot.budget.charged_in_window == 0  # and never charged
        slot.process.kill()
        slot.process.wait()

    def test_repeated_crashes_degrade_slot(self, tmp_path):
        supervisor = _supervisor(
            tmp_path,
            max_restarts=2,
            window_seconds=1e6,
            backoff_base=0.0,
            worker_argv=_fake_worker_argv(3),
        )
        slot = supervisor.slots[0]
        supervisor._spawn(slot, now=0.0)
        for moment in (10.0, 20.0, 30.0):
            assert _wait(lambda: slot.process.poll() is not None)
            supervisor.tick(now=moment)  # reap the crash
            supervisor.tick(now=moment)  # respawn if in backoff
            if slot.state == "degraded":
                break
        assert slot.last_class == CRASH
        assert slot.state == "degraded"
        assert slot.budget.charged_in_window > supervisor.max_restarts - 1
        # A degraded slot stays down: further ticks must not resurrect it.
        supervisor.tick(now=1000.0)
        assert slot.state == "degraded"
        assert slot.process is None

    def test_quarantine_exit_respawns_and_counts(self, tmp_path):
        store = tmp_path / "store"
        failures = store / "queue" / "failures"
        failures.mkdir(parents=True)
        (failures / "poisoned.json").write_text("{}")
        supervisor = _supervisor(tmp_path, worker_argv=_fake_worker_argv(1))
        slot = supervisor.slots[0]
        supervisor._spawn(slot, now=0.0)
        assert _wait(lambda: slot.process.poll() is not None)
        supervisor.tick(now=50.0)
        assert slot.last_class == QUARANTINE
        assert slot.state == "running"
        assert slot.budget.charged_in_window == 0
        assert supervisor.quarantine_exits == 1
        slot.process.kill()
        slot.process.wait()

    def test_sigkilled_worker_is_a_real_crash(self, tmp_path):
        supervisor = _supervisor(
            tmp_path, worker_argv=_fake_worker_argv(0, sleep_seconds=600)
        )
        slot = supervisor.slots[0]
        supervisor._spawn(slot, now=0.0)
        slot.process.kill()
        assert _wait(lambda: slot.process.poll() is not None)
        supervisor.tick(now=1.0)
        assert slot.last_exit == -9
        assert slot.last_class == CRASH
        assert slot.state == "backoff"
        assert slot.budget.charged_in_window == 1
        supervisor.request_drain()

    def test_run_drains_on_request_and_writes_status(self, tmp_path):
        supervisor = _supervisor(
            tmp_path,
            size=2,
            drain_grace=30.0,
            worker_argv=_fake_worker_argv(0, sleep_seconds=600),
        )
        result: list = []
        thread = threading.Thread(
            target=lambda: result.append(supervisor.run()), daemon=True
        )
        thread.start()
        assert _wait(
            lambda: all(slot.state == "running" for slot in supervisor.slots)
        )
        status = read_fleet_status(tmp_path / "store")
        assert status is not None
        assert status["running"] == 2
        assert [worker["state"] for worker in status["workers"]] == [
            "running",
            "running",
        ]
        supervisor.request_drain()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert result == [0]
        final = read_fleet_status(tmp_path / "store")
        assert final["supervisor"]["draining"] is True
        assert final["running"] == 0
        assert all(worker["state"] == "stopped" for worker in final["workers"])

    def test_status_json_is_valid_and_atomic_target(self, tmp_path):
        supervisor = _supervisor(tmp_path, worker_argv=_fake_worker_argv(0))
        supervisor.write_status(force=True)
        path = tmp_path / "store" / "fleet" / "status.json"
        record = json.loads(path.read_text())
        assert record["size"] == 1
        assert record["supervisor"]["pid"]
        assert not list(path.parent.glob("*.tmp.*"))  # no torn temp left

    def test_read_fleet_status_missing_or_corrupt(self, tmp_path):
        assert read_fleet_status(tmp_path) is None
        path = tmp_path / "fleet" / "status.json"
        path.parent.mkdir(parents=True)
        path.write_text("{ torn")
        assert read_fleet_status(tmp_path) is None
        path.write_text('"not a dict"')
        assert read_fleet_status(tmp_path) is None


def _cli_env() -> dict:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env.pop("REPRO_STORE_DIR", None)
    return env


class TestFleetCLI:
    def test_fleet_status_human_and_json(self, tmp_path):
        supervisor = _supervisor(tmp_path, worker_argv=_fake_worker_argv(0))
        supervisor.write_status(force=True)
        env = _cli_env()
        base = [sys.executable, "-m", "repro", "fleet", "status", "--store",
                str(tmp_path / "store")]
        human = subprocess.run(base, capture_output=True, text=True, env=env)
        assert human.returncode == 0
        assert "running" in human.stdout
        machine = subprocess.run(
            base + ["--json"], capture_output=True, text=True, env=env
        )
        assert machine.returncode == 0
        assert json.loads(machine.stdout)["size"] == 1

    def test_fleet_status_without_status_file(self, tmp_path):
        env = _cli_env()
        result = subprocess.run(
            [sys.executable, "-m", "repro", "fleet", "status", "--store",
             str(tmp_path)],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 1
        assert "no fleet status" in result.stderr
