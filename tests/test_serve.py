"""Tests for the stateless HTTP front door (``repro.store.serve``).

The service contract under test:

* strict request validation — unknown config fields, bad shard counts and
  malformed JSON are refused with structured 400s, never silently
  defaulted;
* admission control — past ``max_plans`` unfinished plans the door
  answers 503 with a ``Retry-After``, but re-posting a plan already in
  the backlog is never double-counted;
* statelessness — every status answer is re-derived from the store, so a
  plan drained by out-of-band workers turns complete with no server
  involvement;
* failure surfacing — a quarantined plan maps to a structured 502 naming
  the poison shard, and a blocking result request past its deadline
  answers 504 while leaving the plan published.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.store.artifact_store import ArtifactStore
from repro.store.queue import (
    ShardQueue,
    load_plans,
    plan_fingerprint,
    plan_priority,
    publish_plan,
    queue_status,
)
from repro.store import serve as serve_mod
from repro.store.serve import ValidationError, build_config, build_server
from repro.store.stages import PipelineConfig, PipelineRunner


def tiny_config(**overrides) -> PipelineConfig:
    settings = dict(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=5,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=("NPB",),
    )
    settings.update(overrides)
    return PipelineConfig(**settings)


def tiny_config_json(**overrides) -> dict:
    body = dict(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=5,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=["NPB"],
    )
    body.update(overrides)
    return body


@pytest.fixture
def service(tmp_path):
    """A running front door over a fresh store: (base_url, store_directory)."""
    directory = tmp_path / "store"
    server = build_server(directory, max_plans=2, deadline_seconds=30.0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", directory
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)


def http(url: str, payload=None, raw: bytes | None = None):
    """(status, decoded JSON body, headers); 4xx/5xx returned, not raised."""
    data = raw if raw is not None else (
        json.dumps(payload).encode() if payload is not None else None
    )
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            decoded = json.loads(body)
        except (json.JSONDecodeError, ValueError):
            decoded = {}
        return error.code, decoded, dict(error.headers)


class TestBuildConfig:
    def test_round_trips_fields(self):
        cfg = build_config(tiny_config_json())
        assert cfg == tiny_config()
        assert cfg.suites == ("NPB",)  # JSON list became the tuple field

    def test_none_means_defaults(self):
        assert build_config(None) == PipelineConfig()

    def test_unknown_field_refused(self):
        with pytest.raises(ValidationError, match="unknown config field"):
            build_config({"repositry_count": 100})  # the typo must not run

    def test_lstm_refused(self):
        with pytest.raises(ValidationError, match="lstm"):
            build_config({"lstm": {"layers": 2}})

    def test_nested_object_refused(self):
        with pytest.raises(ValidationError, match="unsupported type"):
            build_config({"suites": [{"name": "NPB"}]})


class TestValidation:
    def test_invalid_json_answers_400(self, service):
        url, _directory = service
        status, body, _headers = http(url + "/plans", raw=b"{not json")
        assert (status, body["error"]) == (400, "invalid-json")

    def test_non_object_body_answers_400(self, service):
        url, _directory = service
        status, body, _headers = http(url + "/plans", payload=[1, 2])
        assert (status, body["error"]) == (400, "invalid-request")

    def test_unknown_config_field_answers_400(self, service):
        url, _directory = service
        status, body, _headers = http(
            url + "/plans", payload={"config": {"no_such_knob": 1}}
        )
        assert (status, body["error"]) == (400, "invalid-request")
        assert "no_such_knob" in body["detail"]

    @pytest.mark.parametrize(
        "payload",
        [
            {"shards": 0},
            {"shards": -1},
            {"shards": "3"},
            {"shards": True},
            {"shards": 5000},  # over the ceiling
            {"priority": "urgent"},
            {"priority": 1.5},
        ],
    )
    def test_bad_shards_and_priority_answer_400(self, service, payload):
        url, _directory = service
        payload = {"config": tiny_config_json(), **payload}
        status, body, _headers = http(url + "/plans", payload=payload)
        assert (status, body["error"]) == (400, "invalid-request")

    def test_unknown_routes_answer_404(self, service):
        url, _directory = service
        for route in ("/nope", "/plans/x/y/z"):
            status, body, _headers = http(url + route)
            assert (status, body["error"]) == (404, "unknown-route")


class TestAdmission:
    def test_post_publishes_plan_with_priority(self, service):
        url, directory = service
        status, body, _headers = http(
            url + "/plans",
            payload={"config": tiny_config_json(), "shards": 3, "priority": 9},
        )
        assert status == 202
        assert body["state"] == "pending"
        assert body["links"]["result"] == f"/plans/{body['plan']}/result"
        plans = load_plans(ArtifactStore(directory=directory))
        assert [key for key, _value in plans] == [body["plan"]]
        assert plan_priority(plans[0][1]) == 9

    def test_saturation_answers_503_with_retry_after(self, service):
        url, _directory = service
        for seed in (1, 2):  # fill the max_plans=2 backlog
            status, _body, _headers = http(
                url + "/plans", payload={"config": tiny_config_json(seed=seed)}
            )
            assert status == 202
        status, body, headers = http(
            url + "/plans", payload={"config": tiny_config_json(seed=3)}
        )
        assert (status, body["error"]) == (503, "saturated")
        assert headers.get("Retry-After") == str(body["retry_after_seconds"])

    def test_reposting_backlogged_plan_is_not_saturation(self, service):
        url, _directory = service
        for seed in (1, 2):
            http(url + "/plans", payload={"config": tiny_config_json(seed=seed)})
        # Same fingerprint as an in-flight plan: admitted again (idempotent
        # republish — this is also how a client re-prioritizes in place).
        status, body, _headers = http(
            url + "/plans",
            payload={"config": tiny_config_json(seed=2), "priority": 5},
        )
        assert status == 202
        assert body["priority"] == 5


class TestLifecycle:
    def test_healthz_queue_fleet(self, service):
        url, directory = service
        status, body, _headers = http(url + "/healthz")
        assert (status, body["ok"]) == (200, True)
        status, body, _headers = http(url + "/queue")
        assert status == 200
        assert body["claims"] == [] and body["failures"] == []
        assert body == queue_status(directory)
        status, body, _headers = http(url + "/fleet")
        assert (status, body["error"]) == (404, "no-fleet-status")

    def test_unknown_plan_answers_404(self, service):
        url, _directory = service
        status, body, _headers = http(url + "/plans/deadbeef")
        assert (status, body["error"]) == (404, "unknown-plan")
        status, body, _headers = http(url + "/plans/deadbeef/result")
        assert (status, body["error"]) == (404, "unknown-plan")

    def test_out_of_band_drain_turns_plan_complete(self, service):
        url, directory = service
        cfg = tiny_config()
        status, body, _headers = http(
            url + "/plans", payload={"config": tiny_config_json(), "shards": 1}
        )
        assert (status, body["state"]) == (202, "pending")
        key = body["plan"]
        # Drain out-of-band — the server holds no per-plan state, so the
        # store alone must flip the answers below.
        runner = PipelineRunner(store=ArtifactStore(directory=directory))
        runner.content_files(cfg)
        runner.synthesis(cfg)
        runner.suite_measurements(cfg)
        runner.synthetic_measurements(cfg)
        status, body, _headers = http(url + f"/plans/{key}")
        assert (status, body["state"]) == (200, "complete")
        assert all(body["merged"].values())
        status, result, _headers = http(url + f"/plans/{key}/result")
        assert status == 200
        assert len(result["kernels"]) == result["synthesis"]["generated"]
        assert result["suite_measurements"] > 0
        # Re-posting a completed plan short-circuits with 200, no admission.
        status, body, _headers = http(
            url + "/plans", payload={"config": tiny_config_json(), "shards": 1}
        )
        assert (status, body["state"]) == (200, "complete")

    def test_blocking_result_times_out_with_504(self, service):
        url, _directory = service
        status, body, _headers = http(
            url + "/plans", payload={"config": tiny_config_json(), "shards": 3}
        )
        key = body["plan"]
        started = time.monotonic()
        status, body, _headers = http(
            url + f"/plans/{key}/result?wait=1&deadline=0.4"
        )
        assert (status, body["error"]) == (504, "deadline")
        assert body["state"] == "pending"  # the plan stays published
        assert time.monotonic() - started < 20.0

    def test_quarantined_plan_answers_502_naming_the_shard(self, service):
        url, directory = service
        cfg = tiny_config()
        status, body, _headers = http(
            url + "/plans", payload={"config": tiny_config_json(), "shards": 3}
        )
        key = body["plan"]
        # Quarantine one shard task the way a worker would.
        labels = serve_mod._task_labels(cfg, 3)
        task = next(task for task, label in labels.items() if "[1]" in label)
        queue = ShardQueue(directory)
        queue._quarantine(task, [{"worker": "w0", "error": "scripted"}])
        status, body, _headers = http(url + f"/plans/{key}/result?wait=1")
        assert (status, body["error"]) == (502, "plan-quarantined")
        assert body["poison_shard"] == labels[task]
        assert "shard" in body["poison_shard"]
        assert body["record"]["task"] == task

    def test_events_stream_emits_ndjson_until_deadline(self, service):
        url, _directory = service
        status, body, _headers = http(
            url + "/plans", payload={"config": tiny_config_json(), "shards": 3}
        )
        key = body["plan"]
        with urllib.request.urlopen(
            f"{url}/plans/{key}/events?deadline=0.4", timeout=30.0
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response.read().splitlines()]
        assert lines[0]["state"] == "pending"
        assert lines[-1]["error"] == "deadline"


class TestQueueStatusCLI:
    def _run(self, *argv, store: Path):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env.pop("REPRO_STORE_DIR", None)
        return subprocess.run(
            [sys.executable, "-m", "repro", "queue", "status",
             "--store", str(store), *argv],
            capture_output=True, text=True, env=env,
        )

    def test_json_output_matches_library(self, tmp_path):
        publish_plan(ArtifactStore(directory=tmp_path), tiny_config(), 3)
        result = self._run("--json", store=tmp_path)
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        library = queue_status(tmp_path)
        assert payload["claims"] == library["claims"]
        assert payload["failures"] == library["failures"]
        assert payload["max_attempts"] == library["max_attempts"]

    def test_failures_drive_exit_code(self, tmp_path):
        ShardQueue(tmp_path)._quarantine("poisoned-task", [{"worker": "w0"}])
        result = self._run("--json", store=tmp_path)
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["failures"][0]["task"] == "poisoned-task"
