"""Shared fixtures: one corpus and one trained synthesizer for the whole session."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus
from repro.driver import DriverConfig, HostDriver
from repro.synthesis import CLgen, SamplerConfig

VECADD = """
__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
  int e = get_global_id(0);
  if (e < d) {
    c[e] = a[e] + b[e];
  }
}
"""

REDUCTION = """
__kernel void reduce(__global const float* in, __global float* out,
                     __local float* tmp, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  tmp[lid] = (gid < n) ? in[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) {
      tmp[lid] += tmp[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) {
    out[get_group_id(0)] = tmp[0];
  }
}
"""

COMPUTE_HEAVY = """
__kernel void heavy(__global float* a, __global float* b, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float x = a[i];
  for (int k = 0; k < 50; k++) {
    x = sqrt(x * x + 1.5f) * 0.99f;
  }
  b[i] = x;
}
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: multi-process fault-injection soak over the work-stealing "
        "queue (opt-in: -m chaos; see scripts/chaos_drain.py)",
    )


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    """A small mined-and-preprocessed corpus shared by model/synthesis tests."""
    return Corpus.mine_and_build(repository_count=40, seed=11)


@pytest.fixture(scope="session")
def clgen(corpus: Corpus) -> CLgen:
    """A trained synthesizer shared by synthesis/experiment tests."""
    return CLgen.from_corpus(
        corpus, backend="ngram", ngram_order=12, sampler_config=SamplerConfig(temperature=0.6)
    )


@pytest.fixture(scope="session")
def driver() -> HostDriver:
    """A host driver with a small executed NDRange."""
    return HostDriver(config=DriverConfig(executed_global_size=64, local_size=32))


@pytest.fixture
def vecadd_source() -> str:
    return VECADD


@pytest.fixture
def reduction_source() -> str:
    return REDUCTION


@pytest.fixture
def compute_heavy_source() -> str:
    return COMPUTE_HEAVY
