"""Tests for the PR-1 performance infrastructure.

Covers the batched LSTM sampler (lock-step chains must be real samples of
the same model the sequential sampler uses), the preprocessing result cache
(in-memory and on-disk) and the multiprocessing pipeline (parallel and
serial runs must produce byte-identical corpora and statistics).
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.model.lstm import LSTMConfig, LSTMLanguageModel
from repro.preprocess.cache import PreprocessCache, outcome_key
from repro.preprocess.pipeline import PreprocessingPipeline
from repro.synthesis.sampler import KernelSampler, SamplerConfig


TRAINING_TEXT = (
    "__kernel void A(__global float* a, __global float* b, const int c) {\n"
    "  int d = get_global_id(0);\n"
    "  if (d < c) { a[d] = b[d] + 1.0f; }\n"
    "}\n"
) * 8


@pytest.fixture(scope="module")
def tiny_lstm() -> LSTMLanguageModel:
    model = LSTMLanguageModel(LSTMConfig.test_configuration())
    model.fit(TRAINING_TEXT)
    return model


class TestBatchSampler:
    def test_batch_matches_sequential_distribution(self, tiny_lstm):
        """Feeding the same context must give every chain the sequential
        sampler's next-character distribution."""
        context = "__kernel void A("
        sequential = tiny_lstm.make_sampler(context)
        batched = tiny_lstm.make_batch_sampler(context, batch_size=5)
        expected = sequential.next_distribution()
        batch = batched.next_distribution()
        assert batch.shape == (5, tiny_lstm.vocabulary.size)
        for row in range(5):
            np.testing.assert_allclose(batch[row], expected, rtol=1e-10)

    def test_sampled_characters_come_from_vocabulary(self, tiny_lstm):
        batched = tiny_lstm.make_batch_sampler("__kernel ", batch_size=4)
        rng = random.Random(11)
        for _ in range(8):
            characters = batched.sample(rng, temperature=0.8)
            assert len(characters) == 4
            for character in characters:
                assert len(character) == 1

    def test_compact_drops_finished_chains(self, tiny_lstm):
        batched = tiny_lstm.make_batch_sampler("k", batch_size=6)
        batched.compact([0, 2, 5])
        assert batched.batch_size == 3
        assert batched.next_distribution().shape[0] == 3
        # Sampling still advances the surviving chains.
        characters = batched.sample(random.Random(0))
        assert len(characters) == 3

    def test_sample_many_uses_batching_and_completes(self, tiny_lstm):
        sampler = KernelSampler(
            tiny_lstm, SamplerConfig(max_kernel_length=400, temperature=0.7)
        )
        seed_text = "__kernel void A(__global float* a, __global float* b, const int c) {"
        candidates = sampler.sample_many(seed_text, 6, random.Random(3))
        assert len(candidates) == 6
        for candidate in candidates:
            assert candidate.text.startswith(seed_text)
            assert candidate.characters_sampled <= 400
            if candidate.completed:
                # Completion is defined by the brace depth returning to zero.
                body = candidate.text[len(seed_text):]
                assert body.count("}") >= body.count("{")

    def test_sample_many_zero_and_one(self, tiny_lstm):
        sampler = KernelSampler(tiny_lstm, SamplerConfig(max_kernel_length=50))
        assert sampler.sample_many("k {", 0, random.Random(0)) == []
        only = sampler.sample_many("k {", 1, random.Random(0))
        assert len(only) == 1


def _stream_outcomes(results):
    """The observable per-stream outcome tuple used for bit-identity checks."""
    return [
        (
            entry.index,
            entry.kernel.source if entry.kernel else None,
            entry.kernel.raw_sample if entry.kernel else None,
            entry.kernel.attempt_index if entry.kernel else None,
            dataclasses.asdict(entry.statistics),
        )
        for entry in results
    ]


class TestWavefront:
    """The batched cross-stream sample stage must be invisible in the output:
    every wavefront width produces bit-identical kernels and statistics to
    the sequential reference (per-stream RNG isolation)."""

    BUDGET = 6

    def _sequential(self, clgen, count, seed):
        """The sequential reference: ``generate_kernel_range`` with the
        wavefront forced off (width one takes the plain attempt loop)."""
        original = clgen.sampler.config
        clgen.sampler.config = dataclasses.replace(original, batch_size=1)
        try:
            return clgen.generate_kernel_range(
                0, count, seed=seed, max_attempts_per_kernel=self.BUDGET
            )
        finally:
            clgen.sampler.config = original

    def test_ngram_widths_match_sequential(self, clgen):
        reference = _stream_outcomes(self._sequential(clgen, 8, seed=5))
        for width in (1, 2, 3, 8, 50):
            batched = clgen.generate_kernel_wavefront(
                0, 8, seed=5, max_attempts_per_kernel=self.BUDGET, batch_size=width
            )
            assert _stream_outcomes(batched) == reference, f"width {width}"
        # The equality above is only meaningful if the run exercised the
        # refill path: rejected attempts must have recycled their lanes.
        assert any(outcome[4]["rejected"] > 0 for outcome in reference)

    def test_budget_exhaustion_mid_batch(self, clgen):
        """Streams that exhaust their attempt budget while others are still
        in flight must drop out without disturbing any other stream."""
        reference = _stream_outcomes(
            self._sequential(type(clgen)(clgen.model, min_static_instructions=999), 6, seed=2)
        )
        strict = type(clgen)(clgen.model, min_static_instructions=999)
        for width in (2, 6):
            batched = strict.generate_kernel_wavefront(
                0, 6, seed=2, max_attempts_per_kernel=self.BUDGET, batch_size=width
            )
            assert _stream_outcomes(batched) == reference, f"width {width}"
        # With an unsatisfiable filter every stream exhausts its budget.
        assert all(outcome[1] is None for outcome in reference)
        assert all(outcome[4]["attempts"] == self.BUDGET for outcome in reference)

    def test_lstm_widths_match_sequential(self, tiny_lstm, corpus):
        from repro.synthesis.generator import CLgen

        clgen = CLgen(
            tiny_lstm, corpus=corpus, sampler_config=SamplerConfig(max_kernel_length=120)
        )
        reference = _stream_outcomes(self._sequential(clgen, 4, seed=7))
        for width in (2, 4):
            batched = clgen.generate_kernel_wavefront(
                0, 4, seed=7, max_attempts_per_kernel=self.BUDGET, batch_size=width
            )
            assert _stream_outcomes(batched) == reference, f"width {width}"

    def test_env_width_one_is_the_sequential_path(self, clgen, monkeypatch):
        """``REPRO_SAMPLE_BATCH=1`` must not merely match the sequential
        output — it must *be* the sequential code path."""
        monkeypatch.setenv("REPRO_SAMPLE_BATCH", "1")

        def _boom(*args, **kwargs):  # pragma: no cover - the assertion
            raise AssertionError("wavefront invoked despite REPRO_SAMPLE_BATCH=1")

        monkeypatch.setattr(clgen, "generate_kernel_wavefront", _boom)
        results = clgen.generate_kernel_range(0, 3, seed=5, max_attempts_per_kernel=self.BUDGET)
        assert len(results) == 3

    def test_env_width_drives_range(self, clgen, monkeypatch):
        """An explicit env width must route ``generate_kernel_range`` through
        the wavefront at that width, byte-identically."""
        reference = _stream_outcomes(self._sequential(clgen, 5, seed=5))
        monkeypatch.setenv("REPRO_SAMPLE_BATCH", "3")
        routed = clgen.generate_kernel_range(0, 5, seed=5, max_attempts_per_kernel=self.BUDGET)
        assert _stream_outcomes(routed) == reference


ACCEPTED_SOURCE = (
    "__kernel void foo(__global float* data, const int n) {\n"
    "  int i = get_global_id(0);\n"
    "  data[i] = data[i] * 2.0f;\n"
    "  data[0] = 1.0f; data[1] = 2.0f;\n"
    "}\n"
)
REJECTED_SOURCE = "this is not OpenCL at all {{{"


class TestPreprocessCacheAndParallelism:
    def _inputs(self):
        variants = [ACCEPTED_SOURCE.replace("2.0f", f"{k}.0f") for k in range(2, 20)]
        return variants + [REJECTED_SOURCE, ACCEPTED_SOURCE, ACCEPTED_SOURCE]

    def test_serial_and_parallel_runs_agree(self):
        inputs = self._inputs()
        serial = PreprocessingPipeline(cache=PreprocessCache(), jobs=1).run(inputs)
        parallel = PreprocessingPipeline(cache=PreprocessCache(), jobs=2).run(inputs)
        assert serial.corpus_texts == parallel.corpus_texts
        assert dataclasses.asdict(serial.statistics) == dataclasses.asdict(parallel.statistics)
        assert [r.accepted for r in serial.rejections] == [
            r.accepted for r in parallel.rejections
        ]

    def test_repeat_run_is_served_from_cache(self):
        cache = PreprocessCache()
        pipeline = PreprocessingPipeline(cache=cache)
        inputs = self._inputs()
        first = pipeline.run(inputs)
        hits_before = cache.hits
        second = pipeline.run(inputs)
        assert cache.hits >= hits_before + len(inputs)
        assert second.corpus_texts == first.corpus_texts
        assert dataclasses.asdict(second.statistics) == dataclasses.asdict(first.statistics)

    def test_disk_cache_survives_new_pipeline_instance(self, tmp_path):
        directory = tmp_path / "preprocess-cache"
        first_cache = PreprocessCache(directory=str(directory))
        PreprocessingPipeline(cache=first_cache).run([ACCEPTED_SOURCE, REJECTED_SOURCE])

        # A fresh cache instance (fresh process, conceptually) reads the
        # entries back from disk without reprocessing.
        second_cache = PreprocessCache(directory=str(directory))
        pipeline = PreprocessingPipeline(cache=second_cache)
        result = pipeline.run([ACCEPTED_SOURCE, REJECTED_SOURCE])
        assert second_cache.hits == 2
        assert second_cache.misses == 0
        assert result.statistics.accepted_files == 1
        assert result.statistics.rejected_files == 1

    def test_cache_key_depends_on_configuration(self):
        with_shim = outcome_key(ACCEPTED_SOURCE, True, True, 3)
        without_shim = outcome_key(ACCEPTED_SOURCE, False, True, 3)
        no_rename = outcome_key(ACCEPTED_SOURCE, True, False, 3)
        higher_bar = outcome_key(ACCEPTED_SOURCE, True, True, 5)
        assert len({with_shim, without_shim, no_rename, higher_bar}) == 4

    def test_corrupt_disk_entry_is_recomputed(self, tmp_path):
        directory = tmp_path / "preprocess-cache"
        cache = PreprocessCache(directory=str(directory))
        key = outcome_key(ACCEPTED_SOURCE, True, True, 3)
        pipeline = PreprocessingPipeline(cache=cache)
        pipeline.run([ACCEPTED_SOURCE])
        entry = cache.entry_path(key)
        assert entry is not None and entry.exists()
        entry.write_bytes(b"garbage")

        fresh = PreprocessCache(directory=str(directory))
        result = PreprocessingPipeline(cache=fresh).run([ACCEPTED_SOURCE])
        assert result.statistics.accepted_files == 1


class TestBenchCompareScaleGuard:
    """`scripts/bench_compare.py` must refuse to diff snapshots taken at
    different REPRO_BENCH_SCALEs — a full-vs-quick comparison reads as a
    huge fake regression (ISSUE 4 CI satellite)."""

    @staticmethod
    def _compare(tmp_path, old: dict, new: dict, *extra: str) -> int:
        import json
        import subprocess
        import sys
        from pathlib import Path

        script = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        return subprocess.run(
            [sys.executable, str(script), str(old_path), str(new_path), *extra],
            capture_output=True,
        ).returncode

    def test_scale_mismatch_is_refused(self, tmp_path):
        quick = {"scale": "quick", "phases_seconds": {"execute": 0.4}, "total_seconds": 0.4}
        full = {"scale": "full", "phases_seconds": {"execute": 9.0}, "total_seconds": 9.0}
        assert self._compare(tmp_path, quick, full) == 2

    def test_scale_mismatch_override(self, tmp_path):
        quick = {"scale": "quick", "phases_seconds": {"execute": 0.4}, "total_seconds": 0.4}
        full = {"scale": "full", "phases_seconds": {"execute": 0.4}, "total_seconds": 0.4}
        assert self._compare(tmp_path, quick, full, "--allow-scale-mismatch") == 0

    def test_matching_scales_compare(self, tmp_path):
        old = {"scale": "quick", "phases_seconds": {"execute": 0.4}, "total_seconds": 0.4}
        new = {"scale": "quick", "phases_seconds": {"execute": 0.41}, "total_seconds": 0.41}
        assert self._compare(tmp_path, old, new) == 0

    def test_regression_still_fails_at_matching_scale(self, tmp_path):
        old = {"scale": "quick", "phases_seconds": {"execute": 0.4}, "total_seconds": 0.4}
        new = {"scale": "quick", "phases_seconds": {"execute": 0.9}, "total_seconds": 0.9}
        assert self._compare(tmp_path, old, new) == 1


class TestBenchCompareSchemaFlag:
    """ISSUE 5 CI satellite: a sample comparison across a synthesis schema
    bump measures *different kernels*, so `bench_compare` FLAGs it instead
    of failing — while the other phases still gate normally."""

    @staticmethod
    def _compare(tmp_path, old: dict, new: dict, *extra: str):
        import json
        import subprocess
        import sys
        from pathlib import Path

        script = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        return subprocess.run(
            [sys.executable, str(script), str(old_path), str(new_path), *extra],
            capture_output=True,
            text=True,
        )

    def test_sample_regression_across_bump_is_flagged_not_failed(self, tmp_path):
        old = {"scale": "quick", "phases_seconds": {"sample": 0.4, "execute": 0.4}}
        new = {"scale": "quick", "sample_schema": 2,
               "phases_seconds": {"sample": 0.9, "execute": 0.4}}
        completed = self._compare(tmp_path, old, new)
        assert completed.returncode == 0
        assert "FLAG" in completed.stderr
        assert "re-baselined" in completed.stderr
        assert "REGRESSION" not in completed.stderr

    def test_other_phases_still_gate_across_bump(self, tmp_path):
        old = {"scale": "quick", "phases_seconds": {"sample": 0.4, "execute": 0.4}}
        new = {"scale": "quick", "sample_schema": 2,
               "phases_seconds": {"sample": 0.9, "execute": 0.9}}
        completed = self._compare(tmp_path, old, new)
        assert completed.returncode == 1
        assert "REGRESSION" in completed.stderr
        assert "'execute'" in completed.stderr

    def test_same_schema_sample_regression_still_fails(self, tmp_path):
        old = {"scale": "quick", "sample_schema": 2,
               "phases_seconds": {"sample": 0.4}}
        new = {"scale": "quick", "sample_schema": 2,
               "phases_seconds": {"sample": 0.9}}
        completed = self._compare(tmp_path, old, new)
        assert completed.returncode == 1
        assert "REGRESSION" in completed.stderr

    def test_missing_field_reads_as_chain_schema_v1(self, tmp_path):
        # Two pre-bump snapshots (no field) compare as the same schema.
        old = {"scale": "quick", "phases_seconds": {"sample": 0.4}}
        new = {"scale": "quick", "phases_seconds": {"sample": 0.9}}
        completed = self._compare(tmp_path, old, new)
        assert completed.returncode == 1
        assert "REGRESSION" in completed.stderr


class TestBenchCompareAllowRegression:
    """PR 10's specialization moves per-candidate frontend + analysis work
    from execute into sample-time seeding — a deliberate cost shift.
    ``--allow-regression PHASE`` acknowledges it: the slowdown still prints
    as a FLAG, but only unlisted phases fail the comparison."""

    _compare = staticmethod(TestBenchCompareSchemaFlag._compare)

    def test_allowed_phase_regression_is_flagged_not_failed(self, tmp_path):
        old = {"scale": "full", "phases_seconds": {"sample": 2.29, "execute": 2.69}}
        new = {"scale": "full", "phases_seconds": {"sample": 2.61, "execute": 1.34}}
        completed = self._compare(tmp_path, old, new, "--allow-regression", "sample")
        assert completed.returncode == 0
        assert "FLAG" in completed.stderr
        assert "'sample'" in completed.stderr
        assert "REGRESSION" not in completed.stderr

    def test_unlisted_phase_still_fails(self, tmp_path):
        old = {"scale": "full", "phases_seconds": {"sample": 2.29, "execute": 2.69}}
        new = {"scale": "full", "phases_seconds": {"sample": 2.61, "execute": 3.40}}
        completed = self._compare(tmp_path, old, new, "--allow-regression", "sample")
        assert completed.returncode == 1
        assert "'execute'" in completed.stderr

    def test_flag_is_repeatable(self, tmp_path):
        old = {"scale": "full", "phases_seconds": {"sample": 2.29, "train": 0.38}}
        new = {"scale": "full", "phases_seconds": {"sample": 2.61, "train": 0.50}}
        completed = self._compare(
            tmp_path, old, new,
            "--allow-regression", "sample", "--allow-regression", "train",
        )
        assert completed.returncode == 0
        assert "REGRESSION" not in completed.stderr
