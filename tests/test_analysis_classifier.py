"""Per-bailout-cause fixtures for the classifier.

One fixture kernel per predicted cause class, asserting both the
classification and the concrete cause string (phrased to match what
``vectorizer.py`` / ``memory.py`` raise).
"""

import pytest

from repro.analysis import Classification, analyze_source


def _verdict(source, kernel_name=None):
    verdict = analyze_source(source, kernel_name)
    assert verdict is not None
    return verdict


class TestSafeClass:
    def test_straight_line_map(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, global float* b, global float* out) {
                int gid = get_global_id(0);
                out[gid] = a[gid] + b[gid];
            }
            """
        )
        assert verdict.classification is Classification.SAFE
        assert verdict.lockstep_safe
        assert not verdict.skip_vectorization
        assert verdict.bailout_class == 0

    def test_guarded_map_is_safe(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, global float* out, const int n) {
                int gid = get_global_id(0);
                if (gid < n) { out[gid] = a[gid] * 2.0f; }
            }
            """
        )
        assert verdict.classification is Classification.SAFE

    def test_bounded_loop_is_safe(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, global float* out) {
                int gid = get_global_id(0);
                float acc = 0.0f;
                for (int i = 0; i < 8; i++) { acc += a[gid] * i; }
                out[gid] = acc;
            }
            """
        )
        assert verdict.classification is Classification.SAFE

    def test_local_memory_never_safe(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, local float* tmp) {
                int lid = get_local_id(0);
                tmp[lid] = a[lid];
                a[lid] = tmp[lid] * 2.0f;
            }
            """
        )
        assert verdict.classification is not Classification.SAFE

    def test_uniform_barrier_never_safe(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, local float* tmp) {
                int lid = get_local_id(0);
                tmp[lid] = a[lid];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[lid] = tmp[lid];
            }
            """
        )
        assert verdict.classification is not Classification.SAFE


class TestBailoutCauses:
    def test_divergent_barrier_is_certain_bailout(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, local float* tmp) {
                int gid = get_global_id(0);
                if (gid % 2 == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[gid] = 1.0f;
            }
            """
        )
        assert verdict.classification is Classification.BAILOUT
        assert verdict.skip_vectorization
        assert "divergent work-group barrier" in verdict.cause_strings()

    def test_uniform_write_race_is_certain_bailout(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, global float* out) {
                int gid = get_global_id(0);
                out[0] = out[0] + a[gid];
            }
            """
        )
        assert verdict.classification is Classification.BAILOUT
        assert "cross-lane read-after-write hazard" in verdict.cause_strings()

    def test_step_budget_cause(self):
        verdict = _verdict(
            """
            kernel void k(global float* a, const int n) {
                int gid = get_global_id(0);
                int i = 0;
                while (i < n) { a[gid] += 1.0f; }
            }
            """
        )
        assert verdict.classification is Classification.UNKNOWN
        assert "step budget exceeded (possible timeout)" in verdict.cause_strings()

    def test_divergent_scatter_is_possible_not_certain(self):
        verdict = _verdict(
            """
            kernel void k(global int* idx, global float* out) {
                int gid = get_global_id(0);
                out[idx[gid]] = 1.0f;
            }
            """
        )
        # Collision depends on the data; must not be routed away.
        assert verdict.classification is Classification.UNKNOWN
        assert "cross-lane write-after-write hazard" in verdict.cause_strings()
        assert not verdict.skip_vectorization


class TestRejectionCauses:
    @pytest.mark.parametrize(
        "source,cause",
        [
            (
                """
                kernel void k(global float* a, global int* out) {
                    int gid = get_global_id(0);
                    float x = a[gid];
                    float* p = &x;
                    out[gid] = (int)(*p);
                }
                """,
                "address-of operator",
            ),
            (
                """
                kernel void k(global float* a, global float* out) {
                    int gid = get_global_id(0);
                    float4 v = vload4(gid, a);
                    vstore4(v, gid, out);
                }
                """,
                "vector load/store",
            ),
            (
                """
                int spin(int value) { return value <= 0 ? 0 : spin(value - 1); }
                kernel void k(global int* out) {
                    int gid = get_global_id(0);
                    out[gid] = spin(gid);
                }
                """,
                "recursive helper function",
            ),
            (
                """
                kernel void k(global int* out) {
                    int gid = get_global_id(0);
                    int old = atomic_add(&out[0], gid);
                    out[gid] = old;
                }
                """,
                "atomic operation with a used result",
            ),
        ],
    )
    def test_rejection_cause(self, source, cause):
        verdict = _verdict(source)
        assert verdict.classification is Classification.REJECTED
        assert cause in verdict.cause_strings()
        # Rejections are informational: try_vectorize refuses these anyway,
        # so they must not drive the skip decision.
        assert not verdict.skip_vectorization


class TestVerdictApi:
    def test_to_dict_round_trips_json(self):
        import json

        verdict = _verdict(
            """
            kernel void k(global float* a, local float* tmp) {
                int gid = get_global_id(0);
                if (gid % 2 == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[gid] = 1.0f;
            }
            """
        )
        payload = json.loads(json.dumps(verdict.to_dict()))
        assert payload["classification"] == "bailout"
        assert payload["divergent_barriers"] == 1
        assert any(
            cause["cause"] == "divergent work-group barrier" and cause["certain"]
            for cause in payload["causes"]
        )

    def test_bailout_class_codes_cover_all_classes(self):
        from repro.analysis import BAILOUT_CLASS_CODES

        assert set(BAILOUT_CLASS_CODES) == set(Classification)
        assert len(set(BAILOUT_CLASS_CODES.values())) == len(Classification)
