"""Unit tests for the dataflow passes: lattice, divergence, barriers, races."""

from repro.analysis import (
    Div,
    DivergenceAnalysis,
    analyze_source,
    barrier_divergence,
    race_hazards,
)
from repro.analysis.lattice import env_le, join, join_env
from repro.clc import compile_source
from repro.preprocess.shim import shim_include_resolver, with_shim


def _facts(source, kernel_name=None):
    compilation = compile_source(
        with_shim(source), include_resolver=shim_include_resolver, strict=False
    )
    return DivergenceAnalysis(compilation.unit, kernel_name).run()


class TestLattice:
    def test_join_is_max(self):
        assert join() is Div.BOTTOM
        assert join(Div.UNIFORM, Div.AFFINE) is Div.AFFINE
        assert join(Div.DIVERGENT, Div.BOTTOM, Div.UNIFORM) is Div.DIVERGENT

    def test_join_env_pointwise(self):
        left = {"a": Div.UNIFORM, "b": Div.AFFINE}
        right = {"b": Div.UNIFORM, "c": Div.DIVERGENT}
        merged = join_env(left, right)
        assert merged == {"a": Div.UNIFORM, "b": Div.AFFINE, "c": Div.DIVERGENT}

    def test_env_le(self):
        assert env_le({}, {"a": Div.UNIFORM})
        assert env_le({"a": Div.UNIFORM}, {"a": Div.AFFINE})
        assert not env_le({"a": Div.DIVERGENT}, {"a": Div.AFFINE})


class TestDivergence:
    def test_global_id_is_affine(self):
        facts = _facts(
            """
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                a[gid] = 1.0f;
            }
            """
        )
        (write,) = facts.accesses_for("a")
        assert write.kind == "write"
        assert write.index_div is Div.AFFINE
        assert write.index_form == "g0"

    def test_scaled_gid_stays_affine_modulo_degrades(self):
        facts = _facts(
            """
            kernel void k(global float* a, global float* b, const int n) {
                int gid = get_global_id(0);
                a[2 * gid + n] = 1.0f;
                b[gid % 4] = 1.0f;
            }
            """
        )
        (a_write,) = facts.accesses_for("a")
        assert a_write.index_div is Div.AFFINE
        (b_write,) = facts.accesses_for("b")
        assert b_write.index_div is Div.DIVERGENT

    def test_local_id_is_divergent_sizes_uniform(self):
        facts = _facts(
            """
            kernel void k(global float* a, global float* b) {
                int lid = get_local_id(0);
                int n = get_global_size(0);
                a[lid] = 1.0f;
                b[n - 1] = 2.0f;
            }
            """
        )
        (a_write,) = facts.accesses_for("a")
        assert a_write.index_div is Div.DIVERGENT
        (b_write,) = facts.accesses_for("b")
        assert b_write.index_div is Div.UNIFORM

    def test_divergent_data_taints_loads(self):
        facts = _facts(
            """
            kernel void k(global int* idx, global float* a) {
                int gid = get_global_id(0);
                int j = idx[gid];
                a[j] = 1.0f;
            }
            """
        )
        (write,) = facts.accesses_for("a")
        assert write.index_div is Div.DIVERGENT

    def test_control_divergence_marks_guarded_accesses(self):
        facts = _facts(
            """
            kernel void k(global float* a, const int n) {
                int gid = get_global_id(0);
                if (gid < n) { a[gid] = 1.0f; }
            }
            """
        )
        (write,) = facts.accesses_for("a")
        assert write.control_div > Div.UNIFORM

    def test_uniform_guard_stays_uniform(self):
        facts = _facts(
            """
            kernel void k(global float* a, const int n) {
                int gid = get_global_id(0);
                if (n > 4) { a[gid] = 1.0f; }
            }
            """
        )
        (write,) = facts.accesses_for("a")
        assert write.control_div <= Div.UNIFORM

    def test_divergent_early_return_taints_later_code(self):
        facts = _facts(
            """
            kernel void k(global float* a, local float* tmp, const int n) {
                int gid = get_global_id(0);
                if (gid >= n) { return; }
                barrier(CLK_LOCAL_MEM_FENCE);
                a[gid] = 1.0f;
            }
            """
        )
        (site,) = facts.barriers
        assert site.control_div > Div.UNIFORM

    def test_bounded_loop_step_estimate(self):
        facts = _facts(
            """
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                for (int i = 0; i < 4; i++) { a[gid] = a[gid] + 1.0f; }
            }
            """
        )
        assert 8 < facts.step_estimate < 100

    def test_while_loop_is_unbounded(self):
        facts = _facts(
            """
            kernel void k(global float* a, const int n) {
                int gid = get_global_id(0);
                int i = 0;
                while (i < n) { a[gid] += 1.0f; }
            }
            """
        )
        assert facts.step_estimate == float("inf")

    def test_helper_calls_are_analyzed_through(self):
        facts = _facts(
            """
            int pick(int value) { return value * 3; }
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                a[pick(gid)] = 1.0f;
            }
            """
        )
        (write,) = facts.accesses_for("a")
        assert write.index_div is Div.AFFINE


class TestBarrierPass:
    def test_uniform_barrier_not_divergent(self):
        facts = _facts(
            """
            kernel void k(global float* a, local float* tmp) {
                int lid = get_local_id(0);
                tmp[lid] = a[lid];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[lid] = tmp[lid];
            }
            """
        )
        report = barrier_divergence(facts)
        assert report.total == 1
        assert report.divergent_count == 0

    def test_divergent_barrier_detected(self):
        facts = _facts(
            """
            kernel void k(global float* a, local float* tmp) {
                int gid = get_global_id(0);
                if (gid % 2 == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[gid] = 1.0f;
            }
            """
        )
        report = barrier_divergence(facts)
        assert report.divergent_count == 1

    def test_helper_barrier_reported_separately(self):
        facts = _facts(
            """
            void sync_step(local float* tmp) { barrier(CLK_LOCAL_MEM_FENCE); }
            kernel void k(global float* a, local float* tmp) {
                int gid = get_global_id(0);
                sync_step(tmp);
                a[gid] = 1.0f;
            }
            """
        )
        report = barrier_divergence(facts)
        assert report.helper_sites == 1
        assert report.divergent_count == 0


class TestRacePass:
    def test_disjoint_affine_writes_are_race_free(self):
        facts = _facts(
            """
            kernel void k(global float* a, global float* out) {
                int gid = get_global_id(0);
                out[gid] = a[gid] * 2.0f;
            }
            """
        )
        assert race_hazards(facts) == []

    def test_uniform_write_with_read_is_certain_race(self):
        facts = _facts(
            """
            kernel void k(global float* a, global float* out) {
                int gid = get_global_id(0);
                out[0] = out[0] + a[gid];
            }
            """
        )
        sites = [site for site in race_hazards(facts) if site.buffer == "out"]
        assert sites and sites[0].certain

    def test_distinct_uniform_cells_not_certain(self):
        facts = _facts(
            """
            kernel void k(global float* out, const int n) {
                out[0] = 1.0f;
                out[1] = out[1] + 1.0f;
            }
            """
        )
        # out[0] write vs out[1] read/write: provably different fixed cells
        # must not produce a *certain* hazard (out[1]'s own read-modify-write
        # is a uniform-write race of its own, but against itself).
        for site in race_hazards(facts):
            if site.buffer == "out" and site.certain:
                detail = site.detail
                assert "uniform-subscript write" in detail

    def test_mismatched_affine_forms_flagged(self):
        facts = _facts(
            """
            kernel void k(global float* a, global float* out) {
                int gid = get_global_id(0);
                out[gid] = a[gid];
                out[gid + 1] = a[gid];
            }
            """
        )
        sites = [site for site in race_hazards(facts) if site.buffer == "out"]
        assert sites

    def test_barrier_downgrades_certainty(self):
        facts = _facts(
            """
            kernel void k(global float* a, global float* out, local float* tmp) {
                int gid = get_global_id(0);
                out[0] = 1.0f;
                barrier(CLK_GLOBAL_MEM_FENCE);
                a[gid] = out[0];
            }
            """
        )
        sites = [site for site in race_hazards(facts) if site.buffer == "out"]
        assert sites
        assert not any(site.certain for site in sites)

    def test_atomic_mixed_with_plain_access(self):
        facts = _facts(
            """
            kernel void k(global int* bins) {
                int gid = get_global_id(0);
                atomic_add(&bins[0], 1);
                bins[1] = gid;
            }
            """
        )
        hazards = {site.hazard for site in race_hazards(facts) if site.buffer == "bins"}
        assert "atomic-mix" in hazards


class TestAnalyzeSource:
    def test_uncompilable_returns_none(self):
        assert analyze_source("kernel void k(") is None

    def test_no_kernel_returns_none(self):
        assert analyze_source("float helper(float x) { return x; }") is None

    def test_named_kernel_selected(self):
        verdict = analyze_source(
            """
            kernel void first(global float* a) {
                int gid = get_global_id(0);
                a[gid] = 1.0f;
            }
            kernel void second(global float* a, local float* tmp) {
                int gid = get_global_id(0);
                if (gid % 2 == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[gid] = 2.0f;
            }
            """,
            kernel_name="second",
        )
        assert verdict.kernel_name == "second"
        assert verdict.divergent_barriers == 1
