"""SemanticChecker edge cases: shadowing, call arity, for-init scoping."""

from repro.clc import parse
from repro.clc.semantics import check
from repro.preprocess.rejection import RejectionFilter, RejectionReason


def _issues(source, require_kernel=False):
    return check(parse(source), require_kernel=require_kernel).issues


class TestNestedScopeShadowing:
    def test_inner_declaration_shadows_outer(self):
        issues = _issues(
            """
            kernel void k(global float* a, const int n) {
                int value = n;
                {
                    float value = 1.0f;
                    a[0] = value;
                }
                a[1] = value;
            }
            """
        )
        assert issues == []

    def test_shadowed_name_not_visible_after_block(self):
        issues = _issues(
            """
            kernel void k(global float* a) {
                {
                    int inner = 3;
                    a[0] = inner;
                }
                a[1] = inner;
            }
            """
        )
        assert [issue.kind for issue in issues] == ["undeclared-identifier"]
        assert issues[0].name == "inner"

    def test_parameter_shadowed_by_local(self):
        issues = _issues(
            """
            kernel void k(global float* a, const int n) {
                float n = 2.0f;
                a[0] = n;
            }
            """
        )
        assert issues == []

    def test_for_loop_variable_shadows_outer(self):
        issues = _issues(
            """
            kernel void k(global float* a, const int n) {
                int i = 100;
                for (int i = 0; i < n; i++) { a[i] = i; }
                a[0] = i;
            }
            """
        )
        assert issues == []


class TestForInitScoping:
    def test_for_init_declaration_scoped_to_loop(self):
        issues = _issues(
            """
            kernel void k(global float* a, const int n) {
                for (int i = 0; i < n; i++) { a[i] = 1.0f; }
                a[0] = i;
            }
            """
        )
        assert [issue.name for issue in issues] == ["i"]

    def test_undeclared_identifier_in_for_init(self):
        issues = _issues(
            """
            kernel void k(global float* a, const int n) {
                for (int i = start; i < n; i++) { a[i] = 1.0f; }
            }
            """
        )
        assert [issue.name for issue in issues] == ["start"]

    def test_undeclared_bound_in_for_condition(self):
        issues = _issues(
            """
            kernel void k(global float* a) {
                for (int i = 0; i < limit; i++) { a[i] = 1.0f; }
            }
            """
        )
        assert [issue.name for issue in issues] == ["limit"]


class TestHelperCallArity:
    def test_correct_arity_accepted(self):
        issues = _issues(
            """
            float scale(float value, float factor) { return value * factor; }
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                a[gid] = scale(a[gid], 2.0f);
            }
            """
        )
        assert issues == []

    def test_too_few_arguments_rejected(self):
        issues = _issues(
            """
            float scale(float value, float factor) { return value * factor; }
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                a[gid] = scale(a[gid]);
            }
            """
        )
        assert [issue.kind for issue in issues] == ["wrong-arity"]
        assert "takes 2" in issues[0].message

    def test_too_many_arguments_rejected(self):
        issues = _issues(
            """
            float one(void) { return 1.0f; }
            kernel void k(global float* a) {
                a[0] = one(2.0f);
            }
            """
        )
        assert [issue.kind for issue in issues] == ["wrong-arity"]

    def test_builtins_not_arity_checked(self):
        # Builtins are genuinely overloaded (min/max/clamp across types);
        # the arity check only covers user-defined functions.
        issues = _issues(
            """
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                a[gid] = max(a[gid], 0.0f);
            }
            """
        )
        assert issues == []

    def test_rejection_filter_maps_wrong_arity(self):
        result = RejectionFilter().check(
            """
            float scale(float value, float factor) { return value * factor; }
            kernel void k(global float* a) {
                int gid = get_global_id(0);
                a[gid] = scale(a[gid]);
            }
            """
        )
        assert not result.accepted
        assert result.reason is RejectionReason.WRONG_ARITY
