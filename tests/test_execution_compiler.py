"""Differential tests: all three execution engines against each other.

The closure compiler must be a perfect stand-in for the legacy interpreter,
and the vectorized lockstep tier a perfect stand-in for both: identical
buffer contents and identical :class:`ExecutionStats` on every kernel of
every benchmark suite, plus equivalent behaviour on the edge cases
(barriers, timeouts, helper functions, atomics).  The lockstep tier is
exercised through the engine router, so kernels it rejects or bails out of
exercise the closure fallback — which must still agree, making the
invariant hold for every kernel regardless of which tier actually ran it.
The compilation cache must hand back the same compiled object for repeated
executions.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.clc import compile_source, parse
from repro.driver.harness import HostDriver
from repro.driver.payload import PayloadConfig, PayloadGenerator
from repro.errors import KernelTimeoutError, LockstepBailout
from repro.execution import (
    CompilationCache,
    CompiledKernel,
    KernelInterpreter,
    MemoryPool,
    NDRange,
    compiled_kernel_for,
    run_kernel,
    run_kernel_interpreted,
    try_vectorize,
)
from repro.preprocess.shim import shim_include_resolver, with_shim
from repro.suites.registry import all_suites


def _suite_benchmarks():
    for suite in all_suites():
        for benchmark in suite.benchmarks:
            yield pytest.param(benchmark, id=benchmark.qualified_name)


def _compile_unit(source: str):
    compilation = compile_source(
        with_shim(source), include_resolver=shim_include_resolver, strict=False
    )
    return compilation.unit


def _execute(engine, payload):
    result = engine.execute(payload.pool, payload.scalar_args, payload.ndrange)
    buffers = {name: buffer.to_list() for name, buffer in payload.pool.buffers.items()}
    return buffers, dataclasses.asdict(result.stats)


def _assert_same(reference, candidate, label: str) -> None:
    buffers_reference, stats_reference = reference
    buffers_candidate, stats_candidate = candidate
    assert stats_candidate == stats_reference, label
    assert buffers_candidate.keys() == buffers_reference.keys(), label
    for name in buffers_reference:
        reference_values = buffers_reference[name]
        candidate_values = buffers_candidate[name]
        assert len(candidate_values) == len(reference_values), (label, name)
        for index, (a, b) in enumerate(zip(candidate_values, reference_values)):
            assert _bit_identical(a, b), (label, name, index, a, b)


class TestDifferentialSuites:
    """Every suite kernel, executed by all three engines, must agree exactly."""

    @pytest.mark.parametrize("suite_benchmark", _suite_benchmarks())
    def test_identical_buffers_and_stats(self, suite_benchmark):
        unit = _compile_unit(suite_benchmark.source)
        kernel = (
            unit.kernel(suite_benchmark.kernel_name)
            if suite_benchmark.kernel_name
            else unit.kernels[0]
        )
        work_dim = HostDriver._kernel_work_dim(kernel)
        generator = PayloadGenerator(PayloadConfig(global_size=32, local_size=8, seed=3))
        payload = generator.generate(kernel, work_dim=work_dim)
        payload_interpreted = payload.clone()
        payload_lockstep = payload.clone()
        payload_specialized = payload.clone()

        compiled = CompiledKernel(unit, kernel.name)
        results_compiled = _execute(compiled, payload)
        legacy = KernelInterpreter(unit, kernel.name)
        results_legacy = _execute(legacy, payload_interpreted)
        _assert_same(results_legacy, results_compiled, "closure-vs-interpreter")

        # Third way: the lockstep tier, exactly as the router would run it —
        # vectorize if possible, fall back to the closure engine on rejection
        # or mid-flight bailout (the pool must be untouched at bailout).
        vectorized = try_vectorize(unit, kernel.name)
        if vectorized is None:
            # Statically outside the lockstep subset: the router would use
            # the closure engine, which is already asserted above.
            return
        try:
            results_lockstep = _execute(vectorized, payload_lockstep)
        except LockstepBailout:
            fallback = CompiledKernel(unit, kernel.name)
            results_lockstep = _execute(fallback, payload_lockstep)
        _assert_same(results_legacy, results_lockstep, "lockstep-vs-interpreter")

        # Fourth way: the analyzer-specialized lockstep tier, for kernels
        # the analyzer proves eligible (SAFE + uniform control).  Eligible
        # kernels carry the never-bails promise, so a bailout here is a
        # soundness failure, not a fallback.
        from repro.analysis import analyze_kernel
        from repro.execution.vectorizer import NotVectorizable, VectorizedKernel

        facts = analyze_kernel(unit, kernel.name).specialization
        if facts is None or not facts.eligible:
            return
        try:
            specialized = VectorizedKernel(unit, kernel.name, specialization=facts)
        except NotVectorizable:
            return
        results_specialized = _execute(specialized, payload_specialized)
        _assert_same(results_legacy, results_specialized, "specialized-vs-interpreter")


class TestLockstepCoverage:
    """The lockstep tier must actually run most of the suite inventory —
    otherwise a regression could silently fall everything back to closures
    while the differential suite stays green."""

    def test_most_suite_kernels_vectorize_without_bailout(self):
        clean = 0
        total = 0
        for suite in all_suites():
            for benchmark in suite.benchmarks:
                total += 1
                unit = _compile_unit(benchmark.source)
                kernel = (
                    unit.kernel(benchmark.kernel_name)
                    if benchmark.kernel_name
                    else unit.kernels[0]
                )
                vectorized = try_vectorize(unit, kernel.name)
                if vectorized is None:
                    continue
                work_dim = HostDriver._kernel_work_dim(kernel)
                generator = PayloadGenerator(
                    PayloadConfig(global_size=32, local_size=8, seed=3)
                )
                payload = generator.generate(kernel, work_dim=work_dim)
                try:
                    vectorized.execute(payload.pool, payload.scalar_args, payload.ndrange)
                except LockstepBailout:
                    continue
                clean += 1
        # 62 of 71 at the time of writing; the floor leaves headroom for new
        # benchmarks without letting coverage quietly collapse.
        assert clean >= int(0.75 * total), (clean, total)


def _bit_identical(a, b) -> bool:
    from repro.execution import VectorValue

    if isinstance(a, VectorValue) and isinstance(b, VectorValue):
        return a.element_kind == b.element_kind and all(
            _bit_identical(x, y) for x, y in zip(a.values, b.values)
        )
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # NaN-tolerant exact compare
    return type(a) is type(b) and a == b


class TestCompiledEngineSemantics:
    def _run_both(self, source, buffers, scalars, ndrange, max_steps=50_000):
        outputs = []
        for engine in ("compiled", "interpreter"):
            unit = parse(source)
            pool = MemoryPool()
            for name, (size, values, space) in buffers.items():
                buffer = pool.allocate(name, size, address_space=space)
                if values is not None:
                    buffer.copy_from(values)
            runner = run_kernel if engine == "compiled" else run_kernel_interpreted
            result = runner(
                unit, pool, scalars, ndrange, max_steps_per_item=max_steps
            )
            outputs.append(
                ({name: b.to_list() for name, b in pool.buffers.items()},
                 dataclasses.asdict(result.stats))
            )
        return outputs

    def test_barrier_reduction_matches(self):
        source = (
            "__kernel void R(__global float* in, __global float* out, __local float* tmp,\n"
            "                const int n) {\n"
            "  int lid = get_local_id(0); int gid = get_global_id(0);\n"
            "  tmp[lid] = in[gid];\n"
            "  barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {\n"
            "    if (lid < s) { tmp[lid] += tmp[lid + s]; }\n"
            "    barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  }\n"
            "  if (lid == 0) { out[get_group_id(0)] = tmp[0]; }\n}"
        )
        n, wg = 64, 16
        compiled, interpreted = self._run_both(
            source,
            {"in": (n, [1.0] * n, "global"), "out": (n // wg, None, "global"),
             "tmp": (wg, None, "local")},
            {"n": n},
            NDRange.linear(n, wg),
        )
        assert compiled == interpreted
        assert compiled[0]["out"] == [float(wg)] * (n // wg)
        assert compiled[1]["barriers_hit"] > 0

    def test_timeout_raises_like_interpreter(self):
        source = ("__kernel void L(__global float* a, const int n) {\n"
                  "  while (1) { a[0] = a[0] + 1.0f; }\n}")
        unit = parse(source)
        pool = MemoryPool()
        pool.allocate("a", 4)
        with pytest.raises(KernelTimeoutError):
            CompiledKernel(unit, max_steps_per_item=500).execute(
                pool, {"n": 4}, NDRange.linear(4, 4)
            )

    def test_divergence_and_helper_stats_match(self):
        source = (
            "int helper(int v) { if (v > 4) { return v * 2; } return v; }\n"
            "__kernel void D(__global int* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i % 2 == 0) { a[i] = helper(i); } else { a[i] = i - 1; }\n}"
        )
        compiled, interpreted = self._run_both(
            source, {"a": (16, None, "global")}, {"n": 16}, NDRange.linear(16, 8)
        )
        assert compiled == interpreted
        assert compiled[1]["helper_calls"] == 8
        assert compiled[1]["divergent_branch_sites"] > 0

    def test_switch_and_do_while_match(self):
        source = (
            "__kernel void S(__global int* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  int acc = 0; int j = 0;\n"
            "  do { acc += j; j++; } while (j < i);\n"
            "  switch (i % 3) {\n"
            "    case 0: acc += 100; break;\n"
            "    case 1: acc += 200;\n"
            "    default: acc += 1;\n"
            "  }\n"
            "  a[i] = acc;\n}"
        )
        compiled, interpreted = self._run_both(
            source, {"a": (12, None, "global")}, {"n": 12}, NDRange.linear(12, 4)
        )
        assert compiled == interpreted

    def test_atomics_and_globals_match(self):
        source = (
            "__constant int OFFSET = 3;\n"
            "__kernel void A(__global int* bins, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  atomic_add(&bins[0], OFFSET);\n"
            "  atomic_max(&bins[1], i);\n}"
        )
        compiled, interpreted = self._run_both(
            source, {"bins": (4, [0, 0, 0, 0], "global")}, {"n": 16}, NDRange.linear(16, 4)
        )
        assert compiled == interpreted
        assert compiled[0]["bins"][0] == 16 * 3


class TestCompilationCache:
    def test_same_unit_compiles_once(self):
        source = "__kernel void A(__global float* a, const int n) { a[get_global_id(0)] = n; }"
        unit = parse(source)
        first = compiled_kernel_for(unit)
        second = compiled_kernel_for(unit)
        assert first is second

    def test_structurally_identical_units_share_compilation(self):
        cache = CompilationCache(max_entries=8)
        source = "__kernel void A(__global float* a, const int n) { a[get_global_id(0)] = n; }"
        first = cache.get(parse(source))
        second = cache.get(parse(source))
        assert first is second
        assert cache.hits >= 1

    def test_distinct_kernels_do_not_collide(self):
        cache = CompilationCache(max_entries=8)
        a = cache.get(parse("__kernel void A(__global float* a, const int n) { a[0] = 1; }"))
        b = cache.get(parse("__kernel void A(__global float* a, const int n) { a[0] = 2; }"))
        assert a is not b

    def test_max_steps_keys_separate_entries(self):
        unit = parse("__kernel void A(__global float* a, const int n) { a[0] = 1; }")
        fast = compiled_kernel_for(unit, max_steps_per_item=100)
        slow = compiled_kernel_for(unit, max_steps_per_item=50_000)
        assert fast is not slow
        assert fast.max_steps_per_item == 100
