"""Analyzer-guided lockstep specialization: bit-identity and arena tests.

The specialized tier (mask elision, hazard-tracking elision, affine
strided access — see ``repro.analysis.specialize``) must be bit-identical
to the generic lockstep tier on every kernel it accepts: identical buffer
contents and identical :class:`ExecutionStats`.  These tests check the
invariant property-style over uniform-control and affine-subscript kernel
families, over the archetype generator's realistic corpus, and through
the engine router (including the ``REPRO_SPECIALIZE`` opt-out and the
lane-arena reuse contract).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_kernel
from repro.corpus import ContentFileGenerator
from repro.execution.cache import (
    GLOBAL_COMPILATION_CACHE,
    cached_compile_source,
    run_kernel,
    specialized_kernel_for,
)
from repro.execution.memory import LaneArena, LockstepBuffer
from repro.execution.vectorizer import VECTORIZER_STATS, VectorizedKernel, try_vectorize
from repro.preprocess.shim import shim_include_resolver, with_shim


def _unit_of(source: str):
    return cached_compile_source(
        with_shim(source), include_resolver=shim_include_resolver, strict=False
    ).unit


def _payload_for(unit, kernel_name=None, global_size=32, local_size=8, seed=3):
    from repro.driver.harness import kernel_work_dim
    from repro.driver.payload import PayloadConfig, PayloadGenerator

    kernel = unit.kernel(kernel_name) if kernel_name else unit.kernels[0]
    generator = PayloadGenerator(
        PayloadConfig(global_size=global_size, local_size=local_size, seed=seed)
    )
    return generator.generate(kernel, work_dim=kernel_work_dim(kernel))


def _run(engine, payload, arena=None):
    if arena is not None:
        result = engine.execute(payload.pool, payload.scalar_args, payload.ndrange, arena)
    else:
        result = engine.execute(payload.pool, payload.scalar_args, payload.ndrange)
    buffers = {name: buf.to_list() for name, buf in payload.pool.buffers.items()}
    return buffers, dataclasses.asdict(result.stats)


def _assert_specialized_matches_generic(source: str, **payload_kwargs):
    """Run the specialized and generic lockstep tiers; demand bit-identity."""
    unit = _unit_of(source)
    facts = analyze_kernel(unit, unit.kernels[0].name).specialization
    assert facts is not None and facts.eligible, facts
    generic = try_vectorize(unit)
    assert generic is not None
    specialized = VectorizedKernel(unit, specialization=facts)

    payload = _payload_for(unit, **payload_kwargs)
    payload_specialized = payload.clone()
    reference = _run(generic, payload)
    candidate = _run(specialized, payload_specialized)
    assert candidate[1] == reference[1], "ExecutionStats diverged"
    assert candidate[0] == reference[0], "buffer contents diverged"
    return facts


class TestUniformControlBitIdentity:
    """Mask-elided kernels (proven-uniform control) match the generic tier."""

    @settings(max_examples=25, deadline=None)
    @given(
        iterations=st.integers(min_value=0, max_value=6),
        threshold=st.integers(min_value=-4, max_value=40),
        use_else=st.booleans(),
        global_size=st.sampled_from([1, 7, 32, 64]),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_uniform_loops_and_branches(
        self, iterations, threshold, use_else, global_size, seed
    ):
        else_clause = "else { acc = acc + b[gid]; }" if use_else else ""
        source = f"""
        __kernel void k(__global float* a, __global float* b, const int n) {{
          int gid = get_global_id(0);
          float acc = a[gid];
          for (int i = 0; i < {iterations}; i++) {{
            acc = acc * 0.5f + b[gid];
          }}
          if (n > {threshold}) {{ acc = acc - 3.0f; }} {else_clause}
          a[gid] = acc;
        }}
        """
        facts = _assert_specialized_matches_generic(
            source, global_size=global_size, seed=seed
        )
        assert facts.uniform_control

    def test_uniform_for_and_switch(self):
        # (A ``while`` variant would not be SAFE — the analyzer cannot bound
        # its trip count — so no specialized kernel ever reaches the
        # while/do-while uniform guards; they are a defensive net only.)
        source = """
        __kernel void k(__global int* a, const int n) {
          int gid = get_global_id(0);
          int acc = a[gid];
          for (int i = 0; i < 5; i++) { acc = acc + i; }
          switch (n % 3) {
            case 0: acc = acc + 1; break;
            case 1: acc = acc + 2; break;
            default: acc = acc + 3; break;
          }
          a[gid] = acc;
        }
        """
        facts = _assert_specialized_matches_generic(source)
        assert facts.uniform_control

    def test_divergent_guard_still_eligible_not_uniform(self):
        """The ubiquitous bounds guard: SAFE, hence eligible, but divergent —
        the specialized tier keeps generic masking and still matches."""
        source = """
        __kernel void k(__global float* a, __global float* b, const int n) {
          int gid = get_global_id(0);
          if (gid < n) { a[gid] = b[gid] * 2.0f; }
        }
        """
        facts = _assert_specialized_matches_generic(source)
        assert not facts.uniform_control


class TestAffineStreamBitIdentity:
    """Affine strided loads/stores match the generic gather/scatter."""

    @settings(max_examples=25, deadline=None)
    @given(
        coefficient=st.sampled_from(["1.0f", "0.5f", "-2.0f", "3.25f"]),
        offset=st.sampled_from(["0.0f", "1.0f", "-4.5f"]),
        global_size=st.sampled_from([1, 2, 31, 64]),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_direct_streams(self, coefficient, offset, global_size, seed):
        source = f"""
        __kernel void k(__global float* a, __global float* b) {{
          int gid = get_global_id(0);
          b[gid] = a[gid] * {coefficient} + {offset};
        }}
        """
        facts = _assert_specialized_matches_generic(
            source, global_size=global_size, seed=seed
        )
        assert "a" in facts.affine_streams and "b" in facts.affine_streams

    def test_negative_stride_falls_back_to_gather(self):
        """An affine-but-descending subscript is outside the strided-slice
        window; the specialized buffer must quietly use the generic path
        (with its out-of-bounds clamp accounting) and still match."""
        source = """
        __kernel void k(__global float* a, __global float* b, const int n) {
          int gid = get_global_id(0);
          b[gid] = a[n - gid];
        }
        """
        _assert_specialized_matches_generic(source, global_size=16, local_size=8)

    def test_strided_cells_rejects_non_strided_and_out_of_range(self):
        buffer = LockstepBuffer.__new__(LockstepBuffer)
        buffer.data = np.arange(8, dtype=np.float64)
        buffer.name = "a"
        buffer.size = 8
        lanes = np.arange(4)
        assert LockstepBuffer._strided_cells(
            buffer, np.array([0, 1, 2, 3]), lanes, 4
        ) is not None
        # Descending, repeated and overflowing index vectors: generic path.
        assert LockstepBuffer._strided_cells(buffer, np.array([3, 2, 1, 0]), lanes, 4) is None
        assert LockstepBuffer._strided_cells(buffer, np.array([2, 2, 2, 2]), lanes, 4) is None
        assert LockstepBuffer._strided_cells(buffer, np.array([0, 3, 6, 9]), lanes, 4) is None


class TestArchetypeDifferential:
    """Realistic generated kernels: every eligible one must match exactly."""

    _ARCHETYPES = [
        "add", "saxpy", "scale", "map", "zip", "stencil", "reduce", "dot",
        "matmul", "transpose", "activation", "threshold", "triad", "heavy", "copy",
    ]

    @settings(max_examples=40, deadline=None)
    @given(
        archetype=st.sampled_from(_ARCHETYPES),
        seed=st.integers(min_value=0, max_value=400),
    )
    def test_eligible_archetypes_match(self, archetype, seed):
        generated = ContentFileGenerator(seed=seed).generate_archetype(archetype)
        try:
            unit = _unit_of(generated.text)
        except Exception:
            return
        if not unit.kernels:
            return
        facts = analyze_kernel(unit, unit.kernels[0].name).specialization
        if facts is None or not facts.eligible:
            return
        generic = try_vectorize(unit)
        if generic is None:
            return
        _assert_specialized_matches_generic(generated.text)


class TestRouterAndOptOut:
    """run_kernel's specialized → generic → closure lattice and the knob."""

    SOURCE = """
    __kernel void k(__global float* a, __global float* b) {
      int gid = get_global_id(0);
      b[gid] = a[gid] + 1.0f;
    }
    """

    def _payloads(self):
        unit = _unit_of(self.SOURCE)
        return unit, _payload_for(unit)

    def test_auto_engine_uses_specialized_tier(self):
        unit, payload = self._payloads()
        before = VECTORIZER_STATS.executions
        specialized = specialized_kernel_for(unit)
        assert specialized is not None
        run_kernel(unit, payload.pool, payload.scalar_args, payload.ndrange)
        assert VECTORIZER_STATS.executions > before

    def test_specialized_and_generic_artifacts_coexist(self):
        unit, _ = self._payloads()
        specialized = specialized_kernel_for(unit)
        generic = GLOBAL_COMPILATION_CACHE.get(unit, None, artifact="vectorized")
        assert specialized is not None
        assert generic is not None
        assert specialized is not generic
        assert specialized._spec is not None and generic._spec is None

    def test_repro_specialize_opt_out(self, monkeypatch):
        unit, payload = self._payloads()
        payload_off = payload.clone()
        result_on = run_kernel(unit, payload.pool, payload.scalar_args, payload.ndrange)

        monkeypatch.setenv("REPRO_SPECIALIZE", "0")
        built_before = VECTORIZER_STATS.kernels_specialized
        result_off = run_kernel(
            unit, payload_off.pool, payload_off.scalar_args, payload_off.ndrange
        )
        # The opt-out must reproduce generic behaviour exactly and must not
        # build (or run) any new specialized artifact.
        assert VECTORIZER_STATS.kernels_specialized == built_before
        assert dataclasses.asdict(result_off.stats) == dataclasses.asdict(result_on.stats)
        for name, buffer in payload.pool.buffers.items():
            assert payload_off.pool.buffers[name].to_list() == buffer.to_list()

    def test_forced_vectorized_engine_stays_generic(self):
        """engine="vectorized" is the differential tests' probe of the
        generic tier; it must never silently swap in the specialized one."""
        unit, payload = self._payloads()
        payload_generic = payload.clone()
        generic = try_vectorize(unit)
        reference = _run(generic, payload_generic)
        result = run_kernel(
            unit, payload.pool, payload.scalar_args, payload.ndrange, engine="vectorized"
        )
        assert dataclasses.asdict(result.stats) == reference[1]


class TestLaneArena:
    def test_take_release_recycles_exact_shape(self):
        arena = LaneArena()
        first = arena.take(16, np.float64)
        assert first.shape == (16,) and first.dtype == np.float64
        arena.release(first)
        again = arena.take(16, np.float64)
        assert again is first
        # Different shape or dtype never shares a free list.
        assert arena.take(8, np.float64) is not first
        assert arena.take(16, np.int64).dtype == np.int64

    def test_release_rejects_views_and_caps(self):
        arena = LaneArena(max_entries_per_key=1)
        backing = np.zeros(8)
        arena.release(backing[2:6])  # a view: must not be pooled
        assert arena.take(4, np.float64).base is None
        one, two = np.zeros(4), np.zeros(4)
        arena.release(one)
        arena.release(two)  # over the cap: dropped
        assert arena.take(4, np.float64) is one
        fresh = arena.take(4, np.float64)
        assert fresh is not two

    def test_arena_reuse_leaks_no_state(self):
        """Interleaved executions through one shared arena must be
        bit-identical to fresh-arena executions (the take()-returns-
        uninitialised contract: every consumer fully overwrites)."""
        source_x = """
        __kernel void k(__global float* a, __global float* b) {
          int gid = get_global_id(0);
          b[gid] = a[gid] * 2.0f;
        }
        """
        source_y = """
        __kernel void k(__global float* a, __global float* b) {
          int gid = get_global_id(0);
          b[gid] = a[gid] - 7.5f;
        }
        """
        unit_x, unit_y = _unit_of(source_x), _unit_of(source_y)
        payload_x = _payload_for(unit_x)
        reference = _run(try_vectorize(unit_x), payload_x.clone())

        shared = LaneArena()
        first = _run(specialized_kernel_for(unit_x), payload_x.clone(), arena=shared)
        _run(specialized_kernel_for(unit_y), _payload_for(unit_y), arena=shared)
        second = _run(specialized_kernel_for(unit_x), payload_x.clone(), arena=shared)
        assert first == reference
        assert second == reference


#: Archetype candidates for the seed-fidelity tests below: the shapes the
#: synthesizer's parsed-rewrite path accepts (no directives, no shim macro
#: or typedef names in the body — see ``generator._REWRITE_TEXT_PATH``).
_SEED_ARCHETYPES = [
    """
    __kernel void scale(__global float* a, __global float* b, const int n) {
      int gid = get_global_id(0);
      if (gid < n) { b[gid] = a[gid] * 2.5f + 1.0f; }
    }
    """,
    """
    __kernel void stencil(__global int* src, __global int* dst) {
      int gid = get_global_id(0);
      int acc = 0;
      for (int i = 0; i < 4; ++i) { acc += src[gid] >> i; }
      dst[gid] = acc;
    }
    """,
    """
    __kernel void saxpy(__global float* x, __global float* y, const float alpha) {
      int gid = get_global_id(0);
      y[gid] = alpha * x[gid] + y[gid];
    }
    """,
]


def _rewrite_like_synthesis(text: str):
    """Replay the synthesizer's parsed-rewrite path for one candidate.

    Returns ``(normalized_text, renamed_body_unit)`` exactly as
    ``CLgen._normalize_candidate`` produces them before seeding.
    """
    from repro.preprocess.rejection import RejectionFilter
    from repro.preprocess.rewriter import CodeRewriter

    verdict = RejectionFilter().check(text)
    assert verdict.accepted, verdict.detail
    body_unit = verdict.compilation.body_unit
    assert body_unit is not None
    normalized = CodeRewriter(rename_identifiers=True).rewrite_parsed(
        text, body_unit
    ).text
    return normalized, body_unit


class TestCompileSeedFidelity:
    """The sample-time compile seeding must be interchangeable with a fresh
    compile: ``compile_parsed_body`` on the rewriter's renamed AST and
    ``compile_source`` on the text it printed must agree on everything the
    execute phase can observe (the ``compile_parsed_body`` docstring's
    "covered by the seed-fidelity tests" claim)."""

    @pytest.mark.parametrize("text", _SEED_ARCHETYPES)
    def test_seeded_compile_matches_fresh(self, text):
        import pickle

        from repro.clc import compile_parsed_body, compile_source
        from repro.clc.printer import SourcePrinter
        from repro.execution import CompiledKernel

        normalized, body_unit = _rewrite_like_synthesis(text)
        source = with_shim(normalized)
        seeded = compile_parsed_body(
            source, body_unit, include_resolver=shim_include_resolver,
            require_kernel=True, strict=False,
        )
        assert seeded is not None
        fresh = compile_source(
            source, include_resolver=shim_include_resolver, strict=False
        )

        printer = SourcePrinter()
        assert printer.print_translation_unit(seeded.unit) == (
            printer.print_translation_unit(fresh.unit)
        )
        assert seeded.preprocessed == fresh.preprocessed
        assert seeded.static_instruction_count == fresh.static_instruction_count
        assert pickle.dumps(seeded.ir) == pickle.dumps(fresh.ir)
        assert pickle.dumps(seeded.semantics) == pickle.dumps(fresh.semantics)

        kernel_name = seeded.unit.kernels[0].name
        payload = _payload_for(seeded.unit, kernel_name)
        payload_fresh = payload.clone()
        result_seeded = _run(CompiledKernel(seeded.unit, kernel_name), payload)
        result_fresh = _run(CompiledKernel(fresh.unit, kernel_name), payload_fresh)
        assert result_seeded == result_fresh

    def test_preprocess_nonidentity_refuses_seed(self):
        """A body whose preprocessing is not the identity must be refused —
        a fresh compile would parse different text than the reused AST."""
        from repro.clc import compile_parsed_body

        normalized, body_unit = _rewrite_like_synthesis(_SEED_ARCHETYPES[0])
        directive_body = "#define TWO 2\n" + normalized
        assert compile_parsed_body(
            with_shim(directive_body), body_unit,
            include_resolver=shim_include_resolver, strict=False,
        ) is None

    def test_missing_prelude_refuses_seed(self):
        """Without a registered prelude prefix there is no known parse
        environment for the body, so the fast path must decline."""
        from repro.clc import compile_parsed_body

        normalized, body_unit = _rewrite_like_synthesis(_SEED_ARCHETYPES[0])
        assert compile_parsed_body(
            normalized, body_unit,
            include_resolver=shim_include_resolver, strict=False,
        ) is None

    def test_generator_seed_lands_under_harness_key(self):
        """``CLgen._seed_measure_compilation`` must put the seeded result
        under the exact key the measurement harness compiles with, so the
        execute phase's lookup is an identity hit on the renamed AST."""
        from repro.synthesis.generator import CLgen

        normalized, body_unit = _rewrite_like_synthesis(_SEED_ARCHETYPES[2])
        CLgen._seed_measure_compilation(normalized, body_unit)
        compilation = cached_compile_source(
            with_shim(normalized), include_resolver=shim_include_resolver, strict=False
        )
        assert compilation.body_unit is body_unit
