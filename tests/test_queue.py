"""Tests for the work-stealing shard scheduler (``repro.store.queue``) and
the independently-seeded parallel sample shards (ISSUE 5).

The headline invariants:

* the claim protocol admits exactly one winner per claim lifetime — across
  racing threads, expired-lease stealers, and crashed workers;
* queue-drained runs (one worker, several in-process workers, a pooled
  drain, and two separate ``repro worker`` processes) leave store entries
  byte-identical to an unsharded run, for every stage kind including the
  newly parallel sample stage.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.store.artifact_store import ArtifactStore
from repro.store.queue import (
    ShardQueue,
    drain_plan,
    load_plans,
    plan_fingerprint,
    plan_priority,
    publish_plan,
)
from repro.store.shards import _SAMPLE, _SUITE_EXEC, ShardPlan, shard_ranges
from repro.store.stages import PipelineConfig, PipelineRunner

SHARDS = 3

#: Every whole-pipeline artifact kind a fully drained plan must contain.
WHOLE_KINDS = (
    "mine",
    "corpus",
    "model",
    "synthesis",
    "suite-measurements",
    "synthetic-measurements",
)


def canonical_bytes(value) -> bytes:
    return pickle.dumps(pickle.loads(pickle.dumps(value)))


def tiny_config() -> PipelineConfig:
    return PipelineConfig(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=5,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=("NPB",),
    )


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    """An unsharded on-disk resolution of :func:`tiny_config` — the byte
    ground truth every queue-drained store is compared against."""
    directory = tmp_path_factory.mktemp("reference") / "store"
    runner = PipelineRunner(store=ArtifactStore(directory=directory))
    cfg = tiny_config()
    runner.content_files(cfg)
    runner.synthesis(cfg)
    runner.suite_measurements(cfg)
    runner.synthetic_measurements(cfg)
    return directory


def assert_stores_byte_identical(reference: Path, candidate: Path) -> None:
    for kind in WHOLE_KINDS:
        entries = sorted((reference / kind).glob("*/*.pkl"))
        assert entries, f"reference store is missing {kind} entries"
        for entry in entries:
            twin = candidate / kind / entry.parent.name / entry.name
            assert twin.exists(), f"{kind}: drained run missed key {entry.name}"
            assert entry.read_bytes() == twin.read_bytes(), kind


class TestClaimProtocol:
    def test_claim_admits_exactly_one_winner(self, tmp_path):
        queue = ShardQueue(tmp_path, lease_seconds=60)
        barrier = threading.Barrier(8)
        outcomes = []

        def contender():
            barrier.wait()
            outcomes.append(queue.try_claim("task"))

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 1

    def test_unexpired_claim_is_not_stealable(self, tmp_path):
        first = ShardQueue(tmp_path, lease_seconds=60)
        second = ShardQueue(tmp_path, lease_seconds=60)
        assert first.try_claim("task")
        assert not second.try_claim("task")
        assert second.holder("task")["worker"] == first.worker_id

    def test_expired_claim_is_stolen_by_exactly_one(self, tmp_path):
        holder = ShardQueue(tmp_path, lease_seconds=0.01)
        assert holder.try_claim("task")
        time.sleep(0.05)
        barrier = threading.Barrier(8)
        outcomes = []

        def stealer():
            queue = ShardQueue(tmp_path, lease_seconds=0.01)
            barrier.wait()
            outcomes.append(queue.try_claim("task"))

        threads = [threading.Thread(target=stealer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 1
        # The steal left no .stale litter behind.
        assert list(tmp_path.glob("queue/claims/*.stale.*")) == []

    def test_complete_releases_the_claim(self, tmp_path):
        queue = ShardQueue(tmp_path, lease_seconds=60)
        assert queue.try_claim("task")
        queue.complete("task")
        assert queue.try_claim("task")

    def test_refresh_extends_the_lease(self, tmp_path):
        holder = ShardQueue(tmp_path, lease_seconds=0.2)
        thief = ShardQueue(tmp_path, lease_seconds=0.2)
        assert holder.try_claim("task")
        time.sleep(0.15)
        holder.refresh("task")
        time.sleep(0.1)
        # 0.25s after the claim but only 0.1s after the refresh: not stealable.
        assert not thief.try_claim("task")

    def test_lease_default_comes_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_QUEUE_LEASE", "12.5")
        assert ShardQueue(tmp_path).lease_seconds == 12.5
        monkeypatch.setenv("REPRO_QUEUE_LEASE", "soon")
        with pytest.warns(RuntimeWarning, match="REPRO_QUEUE_LEASE"):
            queue = ShardQueue(tmp_path)
        from repro.store.queue import DEFAULT_LEASE_SECONDS

        assert queue.lease_seconds == DEFAULT_LEASE_SECONDS


class TestPlans:
    def test_publish_and_load_round_trip(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        cfg = tiny_config()
        key = publish_plan(store, cfg, SHARDS)
        assert key == plan_fingerprint(cfg, SHARDS)
        plans = load_plans(store)
        assert [k for k, _ in plans] == [key]
        assert plans[0][1] == {"config": cfg, "shards": SHARDS, "priority": 0}

    def test_republishing_is_idempotent(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        cfg = tiny_config()
        key = publish_plan(store, cfg, SHARDS)
        path = store.entry_path("plan", key)
        first = path.read_bytes()
        publish_plan(store, cfg, SHARDS)
        assert path.read_bytes() == first
        assert len(load_plans(store)) == 1

    def test_different_configs_publish_different_plans(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        publish_plan(store, tiny_config(), SHARDS)
        publish_plan(store, tiny_config().with_count(7), SHARDS)
        assert len(load_plans(store)) == 2

    def test_load_plans_orders_by_priority_then_key(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        low = publish_plan(store, tiny_config(), SHARDS, priority=-1)
        mid_a = publish_plan(store, tiny_config().with_count(7), SHARDS)
        mid_b = publish_plan(store, tiny_config().with_count(8), SHARDS)
        high = publish_plan(store, tiny_config().with_count(9), SHARDS, priority=10)
        keys = [key for key, _value in load_plans(store)]
        assert keys[0] == high
        assert keys[-1] == low
        assert keys[1:3] == sorted([mid_a, mid_b])  # ties break on key

    def test_republish_reprioritizes_in_place(self, tmp_path):
        """Priority is deliberately outside the fingerprint: posting the
        same (config, shards) with a new priority updates the one plan."""
        store = ArtifactStore(directory=tmp_path / "store")
        key = publish_plan(store, tiny_config(), SHARDS, priority=0)
        assert publish_plan(store, tiny_config(), SHARDS, priority=5) == key
        plans = load_plans(store)
        assert len(plans) == 1
        assert plan_priority(plans[0][1]) == 5

    def test_plan_priority_tolerates_legacy_values(self):
        assert plan_priority({"config": None, "shards": 3}) == 0
        assert plan_priority({"priority": "7"}) == 0  # malformed, not trusted
        assert plan_priority({"priority": True}) == 0
        assert plan_priority({"priority": -3}) == -3
        assert plan_priority("not even a dict") == 0


class TestQueueDrainedBitIdentity:
    """Acceptance: queue-drained runs leave byte-equal store entries."""

    def test_single_worker_drain_matches_unsharded(self, tmp_path, reference_store):
        directory = tmp_path / "store"
        runner = PipelineRunner(
            store=ArtifactStore(directory=directory), shards=SHARDS, steal=True
        )
        drain_plan(runner, tiny_config())
        assert_stores_byte_identical(reference_store, directory)
        # The drain left no claims behind.
        assert list(directory.glob("queue/claims/*.claim")) == []

    def test_three_inprocess_workers_drain_one_plan(self, tmp_path, reference_store):
        """Several steal-mode runners in one process (threads) race over one
        store; the union of their work must equal the unsharded run."""
        directory = tmp_path / "store"
        directory.mkdir()
        cfg = tiny_config()
        errors = []

        def work():
            try:
                runner = PipelineRunner(
                    store=ArtifactStore(directory=directory),
                    shards=SHARDS,
                    steal=True,
                    poll_seconds=0.01,
                )
                drain_plan(runner, cfg)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=work) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert_stores_byte_identical(reference_store, directory)

    def test_pooled_drain_matches_unsharded(self, tmp_path, reference_store):
        directory = tmp_path / "store"
        runner = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            workers=2,
            steal=True,
        )
        drain_plan(runner, tiny_config())
        assert_stores_byte_identical(reference_store, directory)

    def test_two_worker_processes_join_via_cli(self, tmp_path, reference_store):
        """The end-to-end story: publish a plan, point two separate
        ``repro worker`` processes at the store, and get an unsharded-
        identical store out."""
        directory = tmp_path / "store"
        store = ArtifactStore(directory=directory)
        publish_plan(store, tiny_config(), SHARDS)

        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_STORE_DIR", None)
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--store", str(directory)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=300)
            assert worker.returncode == 0, stderr
            assert "drained 1 plan(s)" in stdout
        assert_stores_byte_identical(reference_store, directory)
        assert list(directory.glob("queue/claims/*.claim")) == []

    def test_worker_cli_without_store_errors(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["worker"]) == 2
        assert "on-disk store" in capsys.readouterr().err

    def test_worker_cli_with_no_plans_is_a_noop(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["worker", "--store", str(tmp_path / "store")]) == 0
        assert "no published plans" in capsys.readouterr().err


class TestStragglerRecovery:
    def test_expired_shard_claim_is_stolen_back(self, tmp_path, reference_store):
        """A straggler (crashed or wedged) holds a shard claim past its
        lease; a live drain steals it back and completes the stage."""
        cfg = tiny_config()
        directory = tmp_path / "store"
        straggler = ShardQueue(directory, lease_seconds=0.05)
        key = _SUITE_EXEC.keys(cfg, SHARDS)[1]
        assert straggler.try_claim(key)
        time.sleep(0.1)  # the lease expires; the straggler never completes

        runner = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            lease_seconds=0.05,
            poll_seconds=0.01,
        )
        runner.suite_measurements(cfg)
        reference = PipelineRunner(
            store=ArtifactStore(directory=reference_store)
        ).suite_measurements(cfg)
        assert canonical_bytes(runner.suite_measurements(cfg)) == canonical_bytes(
            reference
        )

    def test_live_claim_makes_drain_wait_not_duplicate(self, tmp_path):
        """While a claim is live, other workers poll instead of computing;
        when the holder completes, the waiter serves the stored artifact."""
        cfg = tiny_config()
        directory = tmp_path / "store"
        store = ArtifactStore(directory=directory)
        holder = ShardQueue(directory, lease_seconds=60)
        key = _SAMPLE.keys(cfg, SHARDS)[0]
        assert holder.try_claim(key)

        computed = {}

        def complete_later():
            time.sleep(0.3)
            worker = PipelineRunner(
                store=ArtifactStore(directory=directory), shards=SHARDS
            )
            computed["value"] = _SAMPLE.resolve(worker, cfg, 0, SHARDS)
            holder.complete(key)

        thread = threading.Thread(target=complete_later)
        thread.start()
        waiter = PipelineRunner(
            store=store, shards=SHARDS, steal=True, poll_seconds=0.01
        )
        value = waiter.synthesis(cfg)
        thread.join()
        # The waiter's shard-0 resolution was a hit on the holder's entry,
        # not a duplicate compute.
        shard_events = [
            event for event in waiter.events if event.fingerprint == key
        ]
        assert shard_events and shard_events[0].hit
        assert value.kernels  # and the merge still produced the batch

    def test_crashed_writer_leaves_reclaimable_state(self, tmp_path, reference_store):
        """A worker that died mid-shard leaves a held claim and a partial
        ``.tmp.`` spill in the store.  The claim expires and is stolen, the
        recompute lands the real entry, and gc sweeps the stale spill."""
        cfg = tiny_config()
        directory = tmp_path / "store"
        store = ArtifactStore(directory=directory)
        crashed = ShardQueue(directory, lease_seconds=0.05)
        key = _SUITE_EXEC.keys(cfg, SHARDS)[0]
        assert crashed.try_claim(key)
        # Simulate the crash: a half-written temp file beside the entry slot.
        entry_path = store.entry_path("suite-measurements-shard", key)
        entry_path.parent.mkdir(parents=True, exist_ok=True)
        spill = entry_path.with_suffix(".tmp.99999.1")
        spill.write_bytes(b"partial write from a dead worker")
        time.sleep(0.1)

        runner = PipelineRunner(
            store=store,
            shards=SHARDS,
            steal=True,
            lease_seconds=0.05,
            poll_seconds=0.01,
        )
        merged = runner.suite_measurements(cfg)
        assert entry_path.exists()
        reference = PipelineRunner(
            store=ArtifactStore(directory=reference_store)
        ).suite_measurements(cfg)
        assert canonical_bytes(merged) == canonical_bytes(reference)
        # The spill was never read as an entry, and a dated gc pass sweeps it.
        assert spill.exists()
        store.gc(now=time.time() + 3601.0)
        assert not spill.exists()


class TestSampleFanout:
    """The sample stage now fans out: any shard is computable in isolation."""

    def test_middle_sample_shard_computable_alone(self, tmp_path):
        """Under the old chain, shard 2 needed shards 0 and 1 first.  Now it
        is a pure function of (config, range): computing only shard 2 must
        reproduce exactly the unsharded batch's kernels at those indices."""
        cfg = tiny_config()
        runner = PipelineRunner(store=ArtifactStore(directory=tmp_path / "store"), shards=SHARDS)
        start, stop = shard_ranges(cfg.synthetic_kernel_count, SHARDS)[2]
        entries = _SAMPLE.resolve(runner, cfg, 2, SHARDS)
        assert [entry.index for entry in entries] == list(range(start, stop))
        # No other sample shard was computed on the way.
        counts = runner.stage_counts()
        assert counts["sample"] == {"hit": 0, "miss": 1}

        plain = PipelineRunner(store=ArtifactStore(directory=None))
        whole = plain.clgen(cfg).generate_kernel_range(
            0,
            cfg.synthetic_kernel_count,
            seed=cfg.sample_seed,
            max_attempts_per_kernel=cfg.max_attempts_per_kernel,
        )
        assert canonical_bytes(entries) == canonical_bytes(whole[start:stop])

    def test_stream_seeds_are_stable_and_distinct(self):
        from repro.synthesis.sampler import stream_seed

        # Cross-session stability (these are content addresses of a sort:
        # changing the derivation re-baselines every sampled kernel).
        assert stream_seed(0, 0) == stream_seed(0, 0)
        seeds = {stream_seed(0, index) for index in range(100)}
        assert len(seeds) == 100
        assert stream_seed(0, 1) != stream_seed(1, 0)

    def test_merge_reclassifies_cross_stream_duplicates(self):
        from repro.synthesis.generator import (
            KernelStreamResult,
            SyntheticKernel,
            SynthesisStatistics,
            merge_stream_results,
        )

        def kernel(source):
            from repro.synthesis.argspec import ArgumentSpec

            return SyntheticKernel(
                source=source,
                raw_sample=source,
                argument_spec=ArgumentSpec.paper_default(),
                attempt_index=0,
            )

        entries = [
            KernelStreamResult(0, kernel("__kernel void A() {}"),
                               SynthesisStatistics(requested=1, generated=1, attempts=1)),
            KernelStreamResult(1, kernel("__kernel void A() {}"),
                               SynthesisStatistics(requested=1, generated=1, attempts=2,
                                                   rejected=1)),
            KernelStreamResult(2, None,
                               SynthesisStatistics(requested=1, attempts=3, rejected=3)),
            KernelStreamResult(3, kernel("__kernel void B() {}"),
                               SynthesisStatistics(requested=1, generated=1, attempts=1)),
        ]
        result = merge_stream_results(entries, requested=4)
        assert [k.source for k in result.kernels] == [
            "__kernel void A() {}", "__kernel void B() {}",
        ]
        stats = result.statistics
        assert stats.requested == 4
        assert stats.generated == 2
        assert stats.duplicates == 1
        assert stats.attempts == 7
        assert stats.generated + stats.rejected == stats.attempts
        assert stats.rejection_reasons["duplicate"] == 1

    def test_batched_per_stream_sampling_matches_sequential(self):
        """With one RNG per candidate, the n-gram batch sampler must yield
        candidates bit-identical to sampling each stream alone — the
        property that lets batched samplers serve the parallel shards."""
        import random

        from repro.synthesis.sampler import KernelSampler, SamplerConfig, stream_rng

        runner = PipelineRunner(store=ArtifactStore(directory=None))
        cfg = tiny_config()
        model = runner.trained_model(cfg).model
        sampler = KernelSampler(
            model, SamplerConfig(temperature=0.6, max_kernel_length=512)
        )
        seed_text = "__kernel void A(__global float* a) {"
        batched = sampler.sample_many(
            seed_text, 4, rngs=[stream_rng(9, index) for index in range(4)]
        )
        sequential = [
            sampler.sample(seed_text, stream_rng(9, index)) for index in range(4)
        ]
        assert [c.text for c in batched] == [c.text for c in sequential]
        assert [c.completed for c in batched] == [c.completed for c in sequential]

        with pytest.raises(ValueError, match="exactly one of"):
            sampler.sample_many(seed_text, 2)
        with pytest.raises(ValueError, match="exactly one of"):
            sampler.sample_many(
                seed_text, 2, rng=random.Random(0), rngs=[random.Random(0)] * 2
            )
        with pytest.raises(ValueError, match="per-candidate"):
            sampler.sample_many(seed_text, 2, rngs=[random.Random(0)])


class TestTrainCliRoundTrip:
    """ISSUE 5 satellite: `repro train --backend lstm --lstm-epochs/--lstm-size`."""

    def test_flags_thread_into_pipeline_config_and_fingerprint(self):
        from repro.cli import _train_config, build_parser
        from repro.model.lstm import LSTMConfig
        from repro.store.stages import model_fingerprint

        args = build_parser().parse_args(
            ["train", "--backend", "lstm", "--lstm-epochs", "2", "--lstm-size", "24"]
        )
        cfg = _train_config(args)
        assert cfg.backend == "lstm"
        assert cfg.lstm == LSTMConfig(epochs=2, hidden_size=24)
        # The knobs readdress the checkpoint: no collision with defaults.
        default = _train_config(
            build_parser().parse_args(["train", "--backend", "lstm"])
        )
        assert model_fingerprint(cfg) != model_fingerprint(default)

    def test_partial_flags_keep_other_defaults(self):
        from repro.cli import _train_config, build_parser
        from repro.model.lstm import LSTMConfig

        args = build_parser().parse_args(
            ["train", "--backend", "lstm", "--lstm-epochs", "5"]
        )
        assert _train_config(args).lstm == LSTMConfig(epochs=5)

    def test_lstm_flags_without_lstm_backend_are_refused(self):
        from repro.cli import _train_config, build_parser

        args = build_parser().parse_args(["train", "--lstm-size", "64"])
        with pytest.raises(SystemExit, match="--backend lstm"):
            _train_config(args)

    def test_flags_reach_a_real_training(self, tmp_path):
        """End-to-end round trip: the flags produce a checkpoint whose model
        carries them (tiny corpus + 1 epoch keeps this fast)."""
        from repro.cli import main

        checkpoint = tmp_path / "model.json"
        assert main([
            "train", "--backend", "lstm", "--repositories", "4",
            "--lstm-epochs", "1", "--lstm-size", "12",
            "--checkpoint", str(checkpoint),
        ]) == 0
        from repro.model import load_model

        model = load_model(str(checkpoint))
        assert model.config.epochs == 1
        assert model.config.hidden_size == 12


class TestEnvKnobs:
    """ISSUE 5: new env parsing (size watermark, lease, steal flag)."""

    def test_env_size_parses_suffixes_and_hardens(self, monkeypatch):
        from repro.envutil import env_size

        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "500M")
        assert env_size("REPRO_STORE_MAX_BYTES") == 500 * (1 << 20)
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "2G")
        assert env_size("REPRO_STORE_MAX_BYTES") == 2 * (1 << 30)
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "a lot")
        with pytest.warns(RuntimeWarning, match="REPRO_STORE_MAX_BYTES"):
            assert env_size("REPRO_STORE_MAX_BYTES") is None
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "-5M")
        with pytest.warns(RuntimeWarning, match="REPRO_STORE_MAX_BYTES"):
            assert env_size("REPRO_STORE_MAX_BYTES") is None

    def test_env_flag_parses_and_hardens(self, monkeypatch):
        from repro.envutil import env_flag

        for raw, expected in (("1", True), ("true", True), ("ON", True),
                              ("0", False), ("off", False)):
            monkeypatch.setenv("REPRO_STEAL", raw)
            assert env_flag("REPRO_STEAL") is expected
        monkeypatch.setenv("REPRO_STEAL", "sure")
        with pytest.warns(RuntimeWarning, match="REPRO_STEAL"):
            assert env_flag("REPRO_STEAL") is False

    def test_steal_env_reaches_the_plan(self, monkeypatch):
        from repro.store.shards import plan_from_env

        monkeypatch.setenv("REPRO_STEAL", "1")
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert plan_from_env() == ShardPlan(shards=1, workers=0, steal=True)

    def test_steal_without_disk_store_degrades_with_warning(self):
        with pytest.warns(RuntimeWarning, match="on-disk store"):
            runner = PipelineRunner(store=ArtifactStore(directory=None), steal=True)
        assert not runner.stealing
        assert runner.plan.steal is False


class TestAutoGcWatermark:
    """ISSUE 5 satellite: REPRO_STORE_MAX_BYTES bounds the store after put."""

    def test_watermark_evicts_least_recently_written(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store", max_bytes=4096)
        for index in range(40):
            store.put("mine", f"{index:02d}" * 32, "x" * 512)
            time.sleep(0.002)  # distinct mtimes for deterministic LRW order
        stats = store.stats()
        assert 0 < stats.bytes <= 4096 + 1024  # bounded (one put of slack)
        survivors = store.keys("mine")
        # The most recent write always survives; the earliest were evicted.
        assert f"{39:02d}" * 32 in survivors
        assert f"{0:02d}" * 32 not in survivors

    def test_watermark_defaults_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "2K")
        store = ArtifactStore(directory=tmp_path / "store")
        assert store._max_bytes == 2048
        monkeypatch.delenv("REPRO_STORE_MAX_BYTES")
        assert ArtifactStore(directory=tmp_path / "other")._max_bytes is None

    def test_no_watermark_means_no_eviction(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "store")
        for index in range(20):
            store.put("mine", f"{index:02d}" * 32, "x" * 512)
        assert store.stats().entries == 20

    def test_memory_only_store_ignores_watermark(self):
        store = ArtifactStore(directory=None, max_bytes=16)
        store.put("mine", "ab" * 32, "x" * 512)
        assert store.get("mine", "ab" * 32) == "x" * 512


class TestAttemptBudget:
    """ISSUE 6: bounded retries with poison-shard quarantine."""

    def test_quarantine_after_exactly_max_attempts(self, tmp_path):
        queue = ShardQueue(tmp_path, lease_seconds=60, max_attempts=3)
        task = "ab" * 32
        assert not queue.record_failure(task, ValueError("boom 1"))
        assert not queue.record_failure(task, ValueError("boom 2"))
        assert len(queue.attempts(task)) == 2
        assert queue.record_failure(task, ValueError("boom 3"))  # the last straw
        record = queue.failure(task)
        assert record is not None
        assert len(record["attempts"]) == 3
        assert record["max_attempts"] == 3
        # The structured artifact names workers, errors and tracebacks.
        assert record["attempts"][0]["worker"] == queue.worker_id
        assert "boom 1" in record["attempts"][0]["error"]
        assert "ValueError" in record["attempts"][2]["traceback"] or record[
            "attempts"
        ][2]["traceback"] is None

    def test_quarantined_task_is_never_claimable(self, tmp_path):
        queue = ShardQueue(tmp_path, lease_seconds=60, max_attempts=1)
        task = "cd" * 32
        assert queue.record_failure(task, RuntimeError("poison"))
        assert not queue.try_claim(task)
        from repro.errors import PlanFailed

        with pytest.raises(PlanFailed, match="quarantined after 1 failed"):
            queue.raise_if_failed(task)

    def test_complete_clears_the_attempt_history(self, tmp_path):
        """A success after transient failures resets the budget: the next
        bad day starts from zero, not from the brink of quarantine."""
        queue = ShardQueue(tmp_path, lease_seconds=60, max_attempts=3)
        task = "ef" * 32
        queue.record_failure(task, OSError("transient"))
        assert queue.try_claim(task)
        assert queue.holder(task)["attempt"] == 2  # history shows one failure
        queue.complete(task)
        assert queue.attempts(task) == []

    def test_steal_back_charges_the_dead_holder_an_attempt(self, tmp_path):
        """A worker death is a failed attempt: the lease-expiry stealer
        records it against the budget, so a shard that kills every worker
        quarantines instead of livelocking the fleet."""
        dead = ShardQueue(tmp_path, lease_seconds=0.01, max_attempts=3)
        task = "12" * 32
        assert dead.try_claim(task)
        time.sleep(0.05)  # the holder "crashed": lease expires, no heartbeat
        stealer = ShardQueue(tmp_path, lease_seconds=0.01, max_attempts=3)
        assert stealer.try_claim(task)
        history = stealer.attempts(task)
        assert len(history) == 1
        assert history[0]["worker"] == dead.worker_id
        assert "lease expired" in history[0]["error"]
        assert stealer.holder(task)["attempt"] == 2

    def test_repeated_deaths_exhaust_the_budget(self, tmp_path):
        task = "34" * 32
        for death in range(2):
            holder = ShardQueue(tmp_path, lease_seconds=0.01, max_attempts=2)
            assert holder.try_claim(task)
            time.sleep(0.05)
        # The second steal was the second death: quarantined, unclaimable.
        final = ShardQueue(tmp_path, lease_seconds=0.01, max_attempts=2)
        assert not final.try_claim(task)
        assert final.failure(task) is not None

    def test_max_attempts_default_comes_from_env(self, monkeypatch, tmp_path):
        from repro.store.queue import DEFAULT_MAX_ATTEMPTS, default_max_attempts

        monkeypatch.setenv("REPRO_QUEUE_MAX_ATTEMPTS", "5")
        assert ShardQueue(tmp_path).max_attempts == 5
        monkeypatch.setenv("REPRO_QUEUE_MAX_ATTEMPTS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_QUEUE_MAX_ATTEMPTS"):
            assert default_max_attempts() == DEFAULT_MAX_ATTEMPTS
        monkeypatch.setenv("REPRO_QUEUE_MAX_ATTEMPTS", "0")
        with pytest.warns(RuntimeWarning, match="REPRO_QUEUE_MAX_ATTEMPTS"):
            assert default_max_attempts() == 1  # floor: 0 would ban all work


class TestHeartbeat:
    def test_heartbeat_keeps_a_slow_claim_unstolen(self, tmp_path):
        """ISSUE 6 acceptance: a compute running past 2x the lease keeps
        its claim as long as the heartbeat beats; it only becomes stealable
        once the holder (and its heartbeat) actually stops."""
        holder = ShardQueue(tmp_path, lease_seconds=0.15)
        thief = ShardQueue(tmp_path, lease_seconds=0.15)
        task = "56" * 32
        assert holder.try_claim(task)
        with holder.heartbeat(task):
            time.sleep(0.4)  # well past 2x the lease
            assert not thief.try_claim(task)
        # The "compute" ended without completing (a hang, say) and the
        # heartbeat stopped with it: now the lease runs out for real.
        time.sleep(0.3)
        assert thief.try_claim(task)

    def test_sweep_offset_is_deterministic_and_in_range(self, tmp_path):
        queue = ShardQueue(tmp_path)
        assert queue.sweep_offset(0) == 0
        offsets = {queue.sweep_offset(7) for _ in range(5)}
        assert len(offsets) == 1  # stable for one worker
        assert 0 <= offsets.pop() < 7
        # Different workers spread across the range (statistically: 32
        # distinct ids into 1000 slots colliding on one offset is ~nil).
        distinct = {
            ShardQueue(tmp_path).sweep_offset(1000)
            for _ in range(1)
        }
        other = ShardQueue(tmp_path)
        other.worker_id = "somewhere-else.424242.1"
        distinct.add(other.sweep_offset(1000))
        assert len(distinct) == 2

    def test_sweep_order_without_priorities_is_a_rotation(self, tmp_path):
        queue = ShardQueue(tmp_path)
        tasks = [f"{index:02d}" for index in range(7)]
        order = queue.sweep_order(tasks)
        assert sorted(order) == tasks
        offset = queue.sweep_offset(len(tasks))
        assert order == tasks[offset:] + tasks[:offset]

    def test_sweep_order_visits_priority_classes_descending(self, tmp_path):
        queue = ShardQueue(tmp_path)
        tasks = [f"{index:02d}" for index in range(9)]
        priorities = {task: int(task) % 3 for task in tasks}
        order = queue.sweep_order(tasks, priorities)
        assert sorted(order) == tasks
        seen_classes = [priorities[task] for task in order]
        assert seen_classes == sorted(seen_classes, reverse=True)
        # Within one class the worker's rotation still applies.
        bucket = [task for task in tasks if priorities[task] == 2]
        offset = queue.sweep_offset(len(bucket))
        assert order[: len(bucket)] == bucket[offset:] + bucket[:offset]

    def test_sweep_order_missing_priority_reads_zero(self, tmp_path):
        queue = ShardQueue(tmp_path)
        order = queue.sweep_order(["aa", "bb", "cc"], {"bb": 1})
        assert order[0] == "bb"
        assert sorted(order[1:]) == ["aa", "cc"]


class TestPoisonShards:
    """End-to-end quarantine through the runner and the worker CLI."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self, monkeypatch):
        from repro.store import faults

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.reset()
        yield
        faults.reset()

    def test_poison_shard_quarantines_and_raises_plan_failed(
        self, tmp_path, monkeypatch
    ):
        from repro.errors import PlanFailed
        from repro.store import faults

        monkeypatch.setenv(
            "REPRO_FAULTS", "fail_shard:kind=synthesis-shard:shard=1:p=1"
        )
        faults.reset()
        cfg = tiny_config()
        runner = PipelineRunner(
            store=ArtifactStore(directory=tmp_path / "store"),
            shards=SHARDS,
            steal=True,
            poll_seconds=0.01,
        )
        with pytest.raises(PlanFailed, match="quarantined after 3 failed") as info:
            runner.synthesis(cfg)
        record = info.value.record
        assert len(record["attempts"]) == 3
        assert all(
            "InjectedFault" in attempt["error"] for attempt in record["attempts"]
        )
        # The poison shard's failure artifact is on disk for every other
        # worker (and the operator) to find.
        failures = list((tmp_path / "store" / "queue" / "failures").glob("*.json"))
        assert len(failures) == 1

    def test_transient_failure_is_retried_to_success(self, tmp_path, monkeypatch):
        """One injected failure (times=1) costs one attempt; the immediate
        retry succeeds and clears the history — no quarantine, identical
        artifacts."""
        from repro.store import faults

        monkeypatch.setenv("REPRO_FAULTS", "fail_shard:kind=synthesis-shard:shard=1")
        faults.reset()
        cfg = tiny_config()
        directory = tmp_path / "store"
        runner = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            poll_seconds=0.01,
        )
        value = runner.synthesis(cfg)
        assert value.kernels
        assert list(directory.glob("queue/failures/*.json")) == []
        assert list(directory.glob("queue/attempts/*.json")) == []

    def test_waiters_surface_a_pre_quarantined_task(self, tmp_path):
        """A worker joining a plan whose shard was already quarantined gets
        PlanFailed on its first sweep — no claim, no compute, no spin."""
        from repro.errors import PlanFailed
        from repro.store.shards import _SAMPLE

        cfg = tiny_config()
        directory = tmp_path / "store"
        poison_key = _SAMPLE.keys(cfg, SHARDS)[1]
        queue = ShardQueue(directory, max_attempts=1)
        assert queue.record_failure(poison_key, RuntimeError("known poison"))
        runner = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            poll_seconds=0.01,
        )
        with pytest.raises(PlanFailed, match=poison_key[:12]):
            runner.synthesis(cfg)

    def test_worker_cli_exits_nonzero_with_failure_summary(
        self, tmp_path, monkeypatch, capsys
    ):
        """ISSUE 6 satellite: a drained plan that ended in quarantine makes
        `repro worker` print the failure artifact and exit non-zero."""
        from repro.cli import main
        from repro.store import faults

        monkeypatch.setenv(
            "REPRO_FAULTS", "fail_shard:kind=synthesis-shard:shard=0:p=1"
        )
        faults.reset()
        directory = tmp_path / "store"
        publish_plan(ArtifactStore(directory=directory), tiny_config(), SHARDS)
        assert main(["worker", "--store", str(directory)]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "quarantined" in err
        assert "attempt 3" in err
        assert "full record" in err


class TestCrashRecovery:
    """ISSUE 6 satellite: crash-mid-merge (and mid-shard) steal-back."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self, monkeypatch):
        from repro.store import faults

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.reset()
        yield
        faults.reset()

    def test_crash_between_last_shard_and_merge_put(
        self, tmp_path, monkeypatch, reference_store
    ):
        """The narrowest window: every shard landed, the merge value was
        computed, and the worker dies before the merged entry's put.  The
        claim stays held (a crash runs no cleanup), the lease expires, and
        the steal-back winner re-runs the merge to a byte-identical entry."""
        from repro.store import faults
        from repro.store.faults import InjectedCrash

        monkeypatch.setenv("REPRO_FAULTS", "crash_pre_merge:kind=synthesis:mode=raise")
        faults.reset()
        cfg = tiny_config()
        directory = tmp_path / "store"
        crashed = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            lease_seconds=0.15,
            poll_seconds=0.01,
        )
        with pytest.raises(InjectedCrash):
            crashed.synthesis(cfg)
        # The crash left the merge claim held — exactly like a real death.
        from repro.store.stages import synthesis_fingerprint

        merge_key = synthesis_fingerprint(cfg)
        assert ShardQueue(directory).holder(merge_key) is not None
        assert ArtifactStore(directory=directory).get("synthesis", merge_key) is None

        time.sleep(0.2)  # no heartbeat from the dead worker: lease expires
        survivor = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            lease_seconds=0.15,
            poll_seconds=0.01,
        )
        merged = survivor.synthesis(cfg)
        reference = PipelineRunner(
            store=ArtifactStore(directory=reference_store)
        ).synthesis(cfg)
        assert canonical_bytes(merged) == canonical_bytes(reference)
        # The steal charged the death to the budget, then success cleared it.
        assert ShardQueue(directory).attempts(merge_key) == []

    def test_crash_mid_shard_recovery_is_byte_identical(
        self, tmp_path, monkeypatch, reference_store
    ):
        from repro.store import faults
        from repro.store.faults import InjectedCrash

        monkeypatch.setenv(
            "REPRO_FAULTS", "crash_mid_shard:kind=suite-measurements-shard:shard=1:mode=raise"
        )
        faults.reset()
        cfg = tiny_config()
        directory = tmp_path / "store"
        crashed = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            lease_seconds=0.15,
            poll_seconds=0.01,
        )
        with pytest.raises(InjectedCrash):
            crashed.suite_measurements(cfg)
        time.sleep(0.2)
        survivor = PipelineRunner(
            store=ArtifactStore(directory=directory),
            shards=SHARDS,
            steal=True,
            lease_seconds=0.15,
            poll_seconds=0.01,
        )
        merged = survivor.suite_measurements(cfg)
        reference = PipelineRunner(
            store=ArtifactStore(directory=reference_store)
        ).suite_measurements(cfg)
        assert canonical_bytes(merged) == canonical_bytes(reference)


class TestQueueStatusCli:
    def test_status_reports_claims_and_failures(self, tmp_path, capsys):
        from repro.cli import main

        directory = tmp_path / "store"
        queue = ShardQueue(directory, lease_seconds=60, max_attempts=1)
        assert queue.try_claim("ab" * 32)
        queue.record_failure("cd" * 32, RuntimeError("poison kernel"))
        assert main(["queue", "status", "--store", str(directory)]) == 1
        out = capsys.readouterr().out
        assert "claims: 1 live" in out
        assert "abababab" in out and "live" in out
        assert "failures: 1 quarantined" in out
        assert "poison kernel" in out

    def test_status_is_clean_and_zero_on_an_idle_queue(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["queue", "status", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "claims: 0 live" in out
        assert "failures: 0 quarantined" in out


class TestWorkerWatch:
    def test_watch_worker_drains_late_plans_and_honors_sigterm(
        self, tmp_path, reference_store
    ):
        """A resident worker (`--watch`) picks up a plan published *after*
        it started, and a SIGTERM ends it cleanly with exit 0."""
        import signal

        directory = tmp_path / "store"
        directory.mkdir(parents=True)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_STORE_DIR", None)
        env.pop("REPRO_FAULTS", None)
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--store", str(directory), "--watch", "--poll", "0.2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            time.sleep(1.0)  # the worker is up and polling an empty store
            publish_plan(ArtifactStore(directory=directory), tiny_config(), SHARDS)
            deadline = time.time() + 120
            synthesis = directory / "synthesis"
            while time.time() < deadline and not list(synthesis.glob("*/*.pkl")):
                time.sleep(0.2)
            assert list(synthesis.glob("*/*.pkl")), "watch worker never drained"
            worker.send_signal(signal.SIGTERM)
            stdout, stderr = worker.communicate(timeout=60)
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.communicate()
        assert worker.returncode == 0, stderr
        assert "stop requested" in stderr
        assert_stores_byte_identical(reference_store, directory)
