"""Tests for the sharded stage graph (``repro.store.shards``) and the PR-4
bugfixes (LSTM fingerprint collision, env-knob hardening, store gc).

The headline invariant (ISSUE 4 acceptance): a sharded run produces
artifacts and measurements bit-identical to the unsharded pipeline — for
every stage kind, under any shard completion order, and with shards filled
by separate processes sharing one store.
"""

from __future__ import annotations

import dataclasses
import pickle
import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.model.lstm import LSTMConfig
from repro.store.artifact_store import ArtifactStore
from repro.store.shards import (
    ShardPlan,
    _CORPUS,
    _MINE,
    _SAMPLE,
    _SUITE_EXEC,
    _SYNTH_EXEC,
    _shard_worker,
    plan_from_env,
    shard_ranges,
)
from repro.store.stages import (
    PipelineConfig,
    PipelineRunner,
    model_fingerprint,
    synthesis_fingerprint,
    warm_phases,
)


def canonical_bytes(value) -> bytes:
    """Pickle fixpoint: byte equality ⇒ identical values *and* identical
    internal object-sharing structure (see tests/test_stage_graph.py)."""
    return pickle.dumps(pickle.loads(pickle.dumps(value)))


def tiny_config() -> PipelineConfig:
    return PipelineConfig(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=5,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=("NPB",),
    )


SHARDS = 3


@pytest.fixture(scope="module")
def reference():
    """Unsharded artifacts for :func:`tiny_config`, computed once."""
    runner = PipelineRunner(store=ArtifactStore(directory=None))
    cfg = tiny_config()
    return {
        "mine": runner.content_files(cfg),
        "corpus": runner.corpus(cfg),
        "synthesis": runner.synthesis(cfg),
        "suites": runner.suite_measurements(cfg),
        "measurements": runner.synthetic_measurements(cfg),
    }


def assert_matches_reference(runner: PipelineRunner, reference) -> None:
    cfg = tiny_config()
    assert runner.content_files(cfg) == reference["mine"]
    assert canonical_bytes(runner.corpus(cfg)) == canonical_bytes(reference["corpus"])
    assert canonical_bytes(runner.synthesis(cfg)) == canonical_bytes(
        reference["synthesis"]
    )
    assert canonical_bytes(runner.suite_measurements(cfg)) == canonical_bytes(
        reference["suites"]
    )
    assert canonical_bytes(runner.synthetic_measurements(cfg)) == canonical_bytes(
        reference["measurements"]
    )


class TestShardRanges:
    def test_covers_disjoint_in_order(self):
        for total in (1, 2, 5, 7, 100):
            for shards in (1, 2, 3, 5, 8, 200):
                ranges = shard_ranges(total, shards)
                assert len(ranges) == min(shards, total)
                flat = [i for lo, hi in ranges for i in range(lo, hi)]
                assert flat == list(range(total))
                assert all(hi > lo for lo, hi in ranges)

    def test_deterministic_split(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_ranges(0, 4) == []

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(shards=0)
        with pytest.raises(ValueError):
            ShardPlan(workers=-1)
        assert not ShardPlan().sharded
        assert ShardPlan(shards=2).sharded

    def test_workers_without_shards_imply_shards(self, tmp_path, monkeypatch):
        # `--workers 8` alone must not be a silent no-op: it implies one
        # shard per worker.  (Disk-backed store: a memory-only runner
        # degrades its pool at construction.)
        assert PipelineRunner(
            store=ArtifactStore(directory=tmp_path / "store"), workers=3
        ).plan == ShardPlan(shards=3, workers=3)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert plan_from_env() == ShardPlan(shards=2, workers=2)

    def test_explicit_shard_count_beats_worker_implication(self, monkeypatch):
        # An explicit shard count (flag or env) is never expanded by
        # REPRO_WORKERS — asking for 1 shard means 1 shard.
        monkeypatch.setenv("REPRO_WORKERS", "8")
        monkeypatch.setenv("REPRO_SHARDS", "1")
        with pytest.warns(RuntimeWarning, match="no effect with a single shard"):
            assert plan_from_env() == ShardPlan(shards=1, workers=8)

        from repro.cli import _make_runner

        class Args:
            cache_dir = None
            shards = 1
            workers = None

        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        with pytest.warns(RuntimeWarning, match="no effect with a single shard"):
            plan = _make_runner(Args()).plan
        assert plan == ShardPlan(shards=1, workers=8)
        assert not plan.pooled  # one shard -> the pool can never engage
        Args.shards, Args.workers = None, 0
        assert _make_runner(Args()).plan == ShardPlan(shards=1, workers=0)

    def test_malformed_env_shards_do_not_disable_worker_implication(self, monkeypatch):
        # A typo'd REPRO_SHARDS must not silently sequentialize a run that
        # asked for workers: the count falls back to "undecided" and the
        # implication still fires.
        monkeypatch.setenv("REPRO_SHARDS", "4x")
        monkeypatch.setenv("REPRO_WORKERS", "8")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARDS"):
            plan = plan_from_env()
        assert plan == ShardPlan(shards=8, workers=8)
        assert plan.pooled


class TestShardedBitIdentity:
    """Acceptance: every stage kind, sharded vs unsharded, bit-identical."""

    def test_every_stage_kind_matches_unsharded(self, reference):
        runner = PipelineRunner(store=ArtifactStore(directory=None), shards=SHARDS)
        assert_matches_reference(runner, reference)

    def test_more_shards_than_items_degrade_gracefully(self, reference):
        # 64 shards over 12 repositories / 5 kernels: ranges clamp to the
        # item counts and the merge still reproduces the whole artifacts.
        runner = PipelineRunner(store=ArtifactStore(directory=None), shards=64)
        assert_matches_reference(runner, reference)

    def test_disk_entries_byte_identical_to_unsharded(self, tmp_path, reference):
        cfg = tiny_config()
        plain_dir, sharded_dir = tmp_path / "plain", tmp_path / "sharded"
        for directory, shards in ((plain_dir, 1), (sharded_dir, SHARDS)):
            runner = PipelineRunner(store=ArtifactStore(directory=directory), shards=shards)
            runner.content_files(cfg)
            runner.corpus(cfg)
            runner.synthesis(cfg)
            runner.suite_measurements(cfg)
            runner.synthetic_measurements(cfg)
        for kind in (
            "mine", "corpus", "model", "synthesis",
            "suite-measurements", "synthetic-measurements",
        ):
            entries = sorted((plain_dir / kind).glob("*/*.pkl"))
            assert entries, kind
            for entry in entries:
                twin = sharded_dir / kind / entry.parent.name / entry.name
                assert twin.exists(), f"{kind}: sharded run missed key {entry.name}"
                assert entry.read_bytes() == twin.read_bytes(), kind

    def test_batched_sharded_entries_match_unbatched_unsharded(self, tmp_path):
        """The wavefront knob is pure execution shape: a batched sharded run
        must leave byte-identical store entries (same keys, same bytes) to an
        unbatched unsharded run — including the sample artifacts, because
        ``sample_batch`` is never fingerprinted."""
        plain_dir, batched_dir = tmp_path / "plain", tmp_path / "batched"
        for directory, shards, batch in ((plain_dir, 1, 1), (batched_dir, SHARDS, 16)):
            cfg = dataclasses.replace(tiny_config(), sample_batch=batch)
            runner = PipelineRunner(store=ArtifactStore(directory=directory), shards=shards)
            runner.synthesis(cfg)
            runner.synthetic_measurements(cfg)
        for kind in ("synthesis", "synthetic-measurements"):
            entries = sorted((plain_dir / kind).glob("*/*.pkl"))
            assert entries, kind
            for entry in entries:
                twin = batched_dir / kind / entry.parent.name / entry.name
                assert twin.exists(), f"{kind}: batched run stored a different key"
                assert twin.read_bytes() == entry.read_bytes(), (
                    f"{kind}/{entry.name}: batched-sharded entry diverges"
                )

    def test_sample_batch_never_fingerprints(self):
        cfg = tiny_config()
        for batch in (None, 1, 16, 128):
            tweaked = dataclasses.replace(cfg, sample_batch=batch)
            assert synthesis_fingerprint(tweaked) == synthesis_fingerprint(cfg)

    def test_non_default_min_static_instructions_matches_unsharded(self):
        # Regression: the unsharded corpus compute used to drop
        # cfg.min_static_instructions (always filtering at the pipeline
        # default of 3) while the sharded path honored it — divergent
        # corpora under one fingerprint.
        cfg = PipelineConfig(
            repository_count=12, seed=3, min_static_instructions=20, suites=("NPB",)
        )
        plain = PipelineRunner(store=ArtifactStore(directory=None)).corpus(cfg)
        sharded = PipelineRunner(store=ArtifactStore(directory=None), shards=3).corpus(cfg)
        assert canonical_bytes(plain) == canonical_bytes(sharded)
        default = PipelineRunner(store=ArtifactStore(directory=None)).corpus(
            PipelineConfig(repository_count=12, seed=3, suites=("NPB",))
        )
        # The knob actually filters: a stricter floor keeps fewer kernels.
        assert plain.size < default.size

    def test_nonpositive_kernel_count_raises_like_unsharded(self):
        from repro.errors import SynthesisError

        cfg = PipelineConfig(repository_count=12, seed=3, synthetic_kernel_count=0)
        runner = PipelineRunner(store=ArtifactStore(directory=None), shards=3)
        with pytest.raises(SynthesisError, match="positive"):
            runner.synthesis(cfg)
        # The execute side must surface the same config error, not cache an
        # empty measurement artifact.
        with pytest.raises(SynthesisError, match="positive"):
            runner.synthetic_measurements(cfg)

    def test_corpus_shard_bytes_independent_of_file_cache_state(self, tmp_path):
        # The first compute runs the per-file preprocess cache cold (duplicate
        # fork files share one outcome object); the second is served from the
        # warm cache (fresh copies).  The stored shard entry must be
        # byte-identical either way.
        cfg = tiny_config()
        store = ArtifactStore(directory=tmp_path / "store")
        runner = PipelineRunner(store=store, shards=SHARDS)
        key = _CORPUS.key(cfg, 0, SHARDS)
        _CORPUS.resolve(runner, cfg, 0, SHARDS)
        path = store.entry_path("corpus-shard", key)
        first = path.read_bytes()
        path.unlink()
        store.clear_memory()
        _CORPUS.resolve(runner, cfg, 0, SHARDS)
        assert path.read_bytes() == first

    def test_sample_attempt_exhaustion_matches_unsharded(self):
        # An attempt budget of 1 at a hot temperature exhausts some streams.
        # Under independent seeding an exhausted stream yields None for its
        # index without stopping later streams (unlike the old sequential
        # chain's early stop); sharded and unsharded runs must agree on
        # exactly which indices produced kernels and on the statistics.
        cfg = PipelineConfig(
            repository_count=12,
            seed=3,
            synthetic_kernel_count=8,
            max_attempts_per_kernel=1,
            sampler_temperature=1.5,
            suites=("NPB",),
        )
        plain = PipelineRunner(store=ArtifactStore(directory=None)).synthesis(cfg)
        sharded = PipelineRunner(store=ArtifactStore(directory=None), shards=4).synthesis(cfg)
        assert canonical_bytes(sharded) == canonical_bytes(plain)
        assert sharded.statistics.generated == plain.statistics.generated
        assert plain.statistics.requested == 8
        # Streams are independent: exhaustion shows up as missing positions,
        # not as a truncated batch (generated + failed streams + merge
        # duplicates account for every position).
        assert plain.statistics.attempts == 8  # one attempt per stream


class TestMergeDeterminism:
    """The merge consumes shard artifacts from the store; it cannot depend
    on the order the shards were produced in."""

    @pytest.mark.parametrize("completion_seed", [0, 1, 2])
    def test_shuffled_shard_completion_order(self, tmp_path, reference, completion_seed):
        cfg = tiny_config()
        directory = tmp_path / f"store{completion_seed}"
        filler = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)

        tasks = []
        for spec in (_MINE, _CORPUS, _SAMPLE, _SUITE_EXEC, _SYNTH_EXEC):
            count = len(shard_ranges(spec.total(cfg), SHARDS))
            tasks.extend((spec, index, count) for index in range(count))
        random.Random(completion_seed).shuffle(tasks)
        for spec, index, count in tasks:
            spec.resolve(filler, cfg, index, count)

        # Drop every whole-pipeline artifact the filler produced as a side
        # effect (the synth-exec shards resolve their upstream chain), so
        # the merges below can only be built from the stored shards.
        from repro.store.stages import (
            corpus_fingerprint,
            mine_fingerprint,
            suite_execution_fingerprint,
            synthetic_execution_fingerprint,
        )

        for kind, fingerprint in (
            ("mine", mine_fingerprint(cfg)),
            ("corpus", corpus_fingerprint(cfg)),
            ("synthesis", synthesis_fingerprint(cfg)),
            ("suite-measurements", suite_execution_fingerprint(cfg)),
            ("synthetic-measurements", synthetic_execution_fingerprint(cfg)),
        ):
            path = filler.store.entry_path(kind, fingerprint)
            if path.exists():
                path.unlink()

        merger = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)
        assert_matches_reference(merger, reference)
        # Every fan-out shard (and sample-chain link) was served warm; only
        # the five merges recomputed.
        counts = merger.stage_counts()
        assert counts["mine"] == {"hit": SHARDS, "miss": 1}
        assert counts["preprocess"]["hit"] >= SHARDS
        assert counts["preprocess"]["miss"] == 1
        # SHARDS sample-shard hits plus the structural whole-batch hit the
        # synthetic-execute merge records when it pre-resolves synthesis.
        assert counts["sample"] == {"hit": SHARDS + 1, "miss": 1}
        assert counts["execute"] == {"hit": 2 * SHARDS, "miss": 2}

    def test_synthesis_shards_resolve_from_store(self, tmp_path, reference):
        cfg = tiny_config()
        directory = tmp_path / "store"
        first = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)
        first.synthesis(cfg)

        # Drop the merged artifact but keep the shards: the merge must
        # rebuild bit-identically from warm shards alone.
        first.store.entry_path("synthesis", synthesis_fingerprint(cfg)).unlink()
        second = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)
        result = second.synthesis(cfg)
        assert canonical_bytes(result) == canonical_bytes(reference["synthesis"])
        counts = second.stage_counts()
        assert counts["sample"]["hit"] == SHARDS
        assert counts["sample"]["miss"] == 1  # the merge itself


class TestConcurrentShardFill:
    def test_two_processes_fill_disjoint_shards_of_one_store(self, tmp_path, reference):
        """Two worker processes, each resolving a disjoint half of the
        corpus shards against the same directory, then a parent merge."""
        cfg = tiny_config()
        directory = tmp_path / "store"
        directory.mkdir()
        tasks = [
            (str(directory), cfg, "corpus", index, SHARDS) for index in range(SHARDS)
        ]
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(_shard_worker, tasks))
        assert sorted(index for index, _, _ in results) == list(range(SHARDS))
        # Every shard landed in the shared store (mine + corpus per range).
        assert len(list((directory / "corpus-shard").glob("*/*.pkl"))) == SHARDS
        assert len(list((directory / "mine-shard").glob("*/*.pkl"))) == SHARDS

        merger = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)
        merged = merger.corpus(cfg)
        assert canonical_bytes(merged) == canonical_bytes(reference["corpus"])
        counts = merger.stage_counts()
        assert counts["preprocess"]["hit"] == SHARDS

    def test_pool_dispatch_matches_unsharded(self, tmp_path, reference):
        runner = PipelineRunner(
            store=ArtifactStore(directory=tmp_path / "store"), shards=SHARDS, workers=2
        )
        assert_matches_reference(runner, reference)

    def test_pool_over_memory_store_warns_and_resolves_in_process(self, reference):
        # Workers cannot see a memory-only store; each would privately
        # recompute the whole upstream chain, so the pool is refused once,
        # at construction, and the plan degrades to in-process shards.
        with pytest.warns(RuntimeWarning, match="on-disk store"):
            runner = PipelineRunner(
                store=ArtifactStore(directory=None), shards=SHARDS, workers=2
            )
        assert runner.plan == ShardPlan(shards=SHARDS, workers=0)
        suites = runner.suite_measurements(tiny_config())
        assert canonical_bytes(suites) == canonical_bytes(reference["suites"])


class TestWarmAwareness:
    def test_merge_fed_by_warm_shards_is_warm(self, tmp_path):
        """A merge whose shards all came from a previous session replaced
        real work with lookups: its phase must be refused as a cold timing
        source, exactly like a direct warm hit."""
        cfg = tiny_config()
        directory = tmp_path / "store"
        cold = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)
        cold.suite_measurements(cfg)
        assert warm_phases(cold.events) == []

        # New session, whole artifact gone, shards still present.
        from repro.store.stages import suite_execution_fingerprint

        cold.store.entry_path(
            "suite-measurements", suite_execution_fingerprint(cfg)
        ).unlink()
        warm = PipelineRunner(store=ArtifactStore(directory=directory), shards=SHARDS)
        warm.suite_measurements(cfg)
        assert warm_phases(warm.events) == ["execute"]

    def test_fully_cold_sharded_run_is_not_warm(self):
        cfg = tiny_config()
        runner = PipelineRunner(store=ArtifactStore(directory=None), shards=SHARDS)
        runner.suite_measurements(cfg)
        runner.synthetic_measurements(cfg)
        assert warm_phases(runner.events) == []


class TestLSTMFingerprintRegression:
    """ISSUE 4 bugfix: ``backend="lstm"`` used to fingerprint identically
    regardless of ``LSTMConfig``, so differently-configured trainings
    collided on one store key and served each other's checkpoints."""

    def test_different_lstm_configs_do_not_collide(self):
        small = PipelineConfig(backend="lstm", lstm=LSTMConfig(hidden_size=24))
        large = PipelineConfig(backend="lstm", lstm=LSTMConfig(hidden_size=512))
        assert model_fingerprint(small) != model_fingerprint(large)

    @pytest.mark.parametrize(
        "knob, value",
        [
            ("num_layers", 3),
            ("sequence_length", 48),
            ("batch_size", 32),
            ("epochs", 4),
            ("optimizer", "sgd"),
            ("learning_rate", 0.01),
            ("gradient_clip", 1.0),
            ("seed", 7),
        ],
    )
    def test_every_knob_readdresses_the_checkpoint(self, knob, value):
        base = PipelineConfig(backend="lstm")
        tweaked = PipelineConfig(backend="lstm", lstm=LSTMConfig(**{knob: value}))
        assert model_fingerprint(base) != model_fingerprint(tweaked)

    def test_default_none_equals_explicit_defaults(self):
        assert model_fingerprint(
            PipelineConfig(backend="lstm")
        ) == model_fingerprint(PipelineConfig(backend="lstm", lstm=LSTMConfig()))

    def test_ngram_fingerprints_ignore_lstm_knobs(self):
        # The n-gram payload is unchanged, so stored n-gram models stay valid.
        assert model_fingerprint(PipelineConfig()) == model_fingerprint(
            PipelineConfig(lstm=LSTMConfig(hidden_size=999))
        )

    def test_lstm_knobs_reach_the_trainer(self):
        from repro.model.trainer import ModelTrainer, TrainerConfig

        lstm = LSTMConfig(hidden_size=24, num_layers=1, epochs=1)
        trainer = ModelTrainer(
            TrainerConfig(backend="lstm", lstm=lstm)
        )
        model = trainer.build_model()
        assert model.config.hidden_size == 24

        # And through the stage graph: the runner's TrainerConfig carries
        # cfg.lstm (this is the second half of the bugfix — the knobs used
        # to be dropped on the floor, not just un-fingerprinted).
        cfg = PipelineConfig(
            repository_count=6, seed=3, backend="lstm", lstm=lstm, suites=("NPB",)
        )
        runner = PipelineRunner(store=ArtifactStore(directory=None))
        trained = runner.trained_model(cfg)
        assert trained.model.config.hidden_size == 24
        assert trained.model.config.epochs == 1


class TestEnvHardeningRegression:
    """ISSUE 4 bugfix: malformed ``REPRO_*`` env knobs must degrade with a
    warning, never crash or be silently misread."""

    def test_malformed_measure_workers_falls_back_to_sequential(self, monkeypatch):
        from repro.driver.harness import HostDriver

        monkeypatch.setenv("REPRO_MEASURE_WORKERS", "banana")
        driver = HostDriver()
        with pytest.warns(RuntimeWarning, match="REPRO_MEASURE_WORKERS"):
            assert driver._resolve_workers(None) == 0

    def test_negative_measure_workers_clamp_to_zero(self, monkeypatch):
        from repro.driver.harness import HostDriver

        monkeypatch.setenv("REPRO_MEASURE_WORKERS", "-3")
        with pytest.warns(RuntimeWarning, match="clamping"):
            assert HostDriver()._resolve_workers(None) == 0

    def test_malformed_bench_scale_falls_back_to_quick(self, monkeypatch):
        from repro.envutil import env_choice

        monkeypatch.setenv("REPRO_BENCH_SCALE", "fulll")
        with pytest.warns(RuntimeWarning, match="REPRO_BENCH_SCALE"):
            assert env_choice("REPRO_BENCH_SCALE", ("quick", "full"), "quick") == "quick"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert env_choice("REPRO_BENCH_SCALE", ("quick", "full"), "quick") == "full"

    def test_store_dir_pointing_at_a_file_is_ignored(self, tmp_path, monkeypatch):
        from repro.store.artifact_store import default_store_directory

        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        monkeypatch.setenv("REPRO_STORE_DIR", str(not_a_dir))
        with pytest.warns(RuntimeWarning, match="REPRO_STORE_DIR"):
            assert default_store_directory() is None
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "fresh"))
        assert default_store_directory() == str(tmp_path / "fresh")

    def test_preprocess_cache_dir_pointing_at_a_file_is_ignored(self, tmp_path, monkeypatch):
        from repro.preprocess.cache import default_cache_directory

        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        monkeypatch.delenv("REPRO_PREPROCESS_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_STORE_DIR", str(not_a_dir))
        with pytest.warns(RuntimeWarning, match="REPRO_STORE_DIR"):
            assert default_cache_directory() is None

    def test_malformed_shard_plan_env_is_unsharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        monkeypatch.setenv("REPRO_WORKERS", "0x4")
        with pytest.warns(RuntimeWarning):
            assert plan_from_env() == ShardPlan(shards=1, workers=0)

    def test_malformed_preprocess_jobs_fall_back_to_one(self, monkeypatch):
        from repro.preprocess.pipeline import _default_jobs

        monkeypatch.setenv("REPRO_PREPROCESS_JOBS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_PREPROCESS_JOBS"):
            assert _default_jobs() == 1
