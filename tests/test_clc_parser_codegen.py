"""Unit tests for the parser, semantic checker, code generator and printer."""

from __future__ import annotations

import pytest

from repro.clc import ast_nodes as ast
from repro.clc import check, compile_source, lower, parse, parse_kernel
from repro.clc.printer import print_source
from repro.clc.types import AddressSpace, PointerType, VectorType
from repro.errors import ParseError, SemanticError


class TestParser:
    def test_kernel_signature(self, vecadd_source):
        unit = parse(vecadd_source)
        kernel = unit.kernels[0]
        assert kernel.name == "A" and kernel.is_kernel
        assert len(kernel.parameters) == 4
        pointer = kernel.parameters[0].declared_type
        assert isinstance(pointer, PointerType)
        assert pointer.address_space is AddressSpace.GLOBAL

    def test_helper_function_and_kernel(self):
        unit = parse("inline float f(float a) { return a * 2.0f; }\n"
                     "__kernel void K(__global float* x) { x[0] = f(x[0]); }")
        assert [fn.name for fn in unit.helper_functions] == ["f"]
        assert [fn.name for fn in unit.kernels] == ["K"]

    def test_vector_literal_and_member_access(self):
        kernel = parse_kernel(
            "__kernel void V(__global float4* a) {\n"
            "  float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);\n"
            "  a[0] = v;\n  float s = v.x + v.s3;\n}"
        )
        declaration = kernel.body.statements[0]
        assert isinstance(declaration, ast.DeclStmt)
        assert isinstance(declaration.declarators[0].initializer, ast.VectorLiteral)

    def test_control_flow_statements(self):
        kernel = parse_kernel(
            "__kernel void C(__global int* a, const int n) {\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < n; i++) { s += i; }\n"
            "  while (s > 100) { s -= 10; }\n"
            "  do { s++; } while (s < 0);\n"
            "  switch (s % 3) { case 0: s = 1; break; default: s = 2; }\n"
            "  if (s > 0) { a[0] = s; } else { a[0] = -s; }\n}"
        )
        kinds = {type(statement).__name__ for statement in ast.walk(kernel.body)}
        assert {"ForStmt", "WhileStmt", "DoWhileStmt", "SwitchStmt", "IfStmt"} <= kinds

    def test_ternary_and_compound_assignment(self):
        kernel = parse_kernel(
            "__kernel void T(__global float* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  a[i] += (i < n) ? 1.0f : 0.0f;\n}"
        )
        assignments = [n for n in ast.walk(kernel.body) if isinstance(n, ast.Assignment)]
        assert assignments[0].op == "+="

    def test_typedef_resolution(self):
        unit = parse("typedef float real;\n__kernel void K(__global real* x) { x[0] = 1.0f; }")
        parameter = unit.kernels[0].parameters[0]
        assert "float" in str(parameter.declared_type)

    def test_struct_typedef(self):
        unit = parse("typedef struct { float x; float y; } vec2;\n"
                     "__kernel void K(__global float* a) { a[0] = 1.0f; }")
        assert unit.typedefs[0].name == "vec2"

    def test_local_array_declaration(self):
        kernel = parse_kernel(
            "__kernel void L(__global float* a) {\n"
            "  __local float tile[64];\n"
            "  tile[get_local_id(0)] = a[get_global_id(0)];\n}"
        )
        declaration = kernel.body.statements[0]
        assert declaration.declarators[0].address_space is AddressSpace.LOCAL

    def test_attribute_is_parsed_and_recorded(self):
        unit = parse("__kernel __attribute__((reqd_work_group_size(64, 1, 1)))\n"
                     "void K(__global float* a) { a[0] = 1.0f; }")
        assert unit.kernels[0].attributes

    def test_parse_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse("__kernel void K(__global float* a) { a[0] = ; }")

    def test_parse_error_on_unknown_type(self):
        with pytest.raises(ParseError):
            parse("__kernel void K(__global mystery_t* a) { a[0] = 1; }")

    def test_missing_kernel_raises_in_parse_kernel(self):
        with pytest.raises(ParseError):
            parse_kernel("float f(float a) { return a; }")

    def test_unsigned_spellings(self):
        kernel = parse_kernel(
            "__kernel void U(__global unsigned int* a, const unsigned int n) {\n"
            "  unsigned int i = get_global_id(0);\n  if (i < n) a[i] = i;\n}"
        )
        assert kernel.parameters[1].declared_type.kind == "uint"


class TestSemantics:
    def test_accepts_well_formed_kernel(self, vecadd_source):
        report = check(parse(vecadd_source))
        assert report.ok

    def test_flags_undeclared_identifier(self):
        report = check(parse("__kernel void K(__global float* a) { a[0] = missing; }"))
        assert not report.ok
        assert "missing" in report.undeclared_identifiers

    def test_flags_undeclared_function(self):
        report = check(parse("__kernel void K(__global float* a) { a[0] = mystery(1.0f); }"))
        assert any(issue.kind == "undeclared-function" for issue in report.issues)

    def test_flags_missing_kernel(self):
        report = check(parse("float f(float a) { return a; }"))
        assert any(issue.kind == "no-kernel" for issue in report.issues)

    def test_builtins_are_not_flagged(self):
        source = ("__kernel void K(__global float* a) {\n"
                  "  a[get_global_id(0)] = fmax(sin(1.0f), M_PI_F);\n"
                  "  barrier(CLK_LOCAL_MEM_FENCE);\n}")
        assert check(parse(source)).ok

    def test_raise_if_failed(self):
        report = check(parse("__kernel void K(__global float* a) { a[0] = oops; }"))
        with pytest.raises(SemanticError):
            report.raise_if_failed()


class TestCodegen:
    def test_static_counts_for_vecadd(self, vecadd_source):
        module = lower(parse(vecadd_source))
        kernel = module.function("A")
        assert kernel.static_instruction_count >= 3
        assert kernel.global_memory_accesses == 3
        assert kernel.coalesced_memory_accesses == 3
        assert kernel.branch_operations == 1
        assert kernel.compute_operations >= 2

    def test_local_memory_accesses_counted(self, reduction_source):
        kernel = lower(parse(reduction_source)).function("reduce")
        assert kernel.local_memory_accesses >= 3
        assert kernel.branch_operations >= 2

    def test_strided_access_not_coalesced(self):
        source = ("__kernel void S(__global float* a, const int n) {\n"
                  "  int i = get_global_id(0);\n  a[i * 2] = 1.0f;\n}")
        kernel = lower(parse(source)).function("S")
        assert kernel.global_memory_accesses == 1
        assert kernel.coalesced_memory_accesses == 0

    def test_gid_alias_plus_offset_is_coalesced(self):
        source = ("__kernel void C(__global float* a, const int n) {\n"
                  "  int i = get_global_id(0);\n  a[i + 4] = a[i] + 1.0f;\n}")
        kernel = lower(parse(source)).function("C")
        assert kernel.coalesced_memory_accesses == 2

    def test_ir_renders_as_ptx_like_text(self, vecadd_source):
        module = lower(parse(vecadd_source))
        text = module.render()
        assert ".entry A" in text
        assert "ld.global" in text and "st.global" in text

    def test_compile_source_end_to_end(self, vecadd_source):
        result = compile_source(vecadd_source)
        assert result.static_instruction_count > 0
        assert [k.name for k in result.kernels] == ["A"]


class TestPrinter:
    def test_round_trip_parses_again(self, reduction_source):
        text = print_source(parse(reduction_source))
        reparsed = parse(text)
        assert [k.name for k in reparsed.kernels] == ["reduce"]

    def test_printer_normalizes_braces(self):
        source = "__kernel void K(__global float* a) { if (a[0] > 0.0f) a[0] = 1.0f; }"
        text = print_source(parse(source))
        assert "{" in text.split("if")[1]  # mandatory braces around the branch

    def test_printer_preserves_counts(self, vecadd_source):
        original = lower(parse(vecadd_source)).function("A")
        printed = lower(parse(print_source(parse(vecadd_source)))).function("A")
        assert printed.global_memory_accesses == original.global_memory_accesses
        assert printed.branch_operations == original.branch_operations
