"""Tests for the benchmark-suite registry and the baseline generators."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CLSmithGenerator,
    GenesisGenerator,
    generate_clsmith_kernels,
    generate_genesis_kernels,
)
from repro.errors import BenchmarkError
from repro.features import extract_static_features
from repro.preprocess import RejectionFilter
from repro.suites import NPB_CLASSES, all_benchmarks, all_suites, suite, suite_summary


class TestSuiteRegistry:
    def test_table3_has_seven_suites(self):
        suites = all_suites()
        assert [s.name for s in suites] == [
            "NPB", "Rodinia", "NVIDIA SDK", "AMD SDK", "Parboil", "PolyBench", "SHOC",
        ]

    def test_table3_totals_are_close_to_paper(self):
        rows = suite_summary()
        total = rows[-1]
        assert total["benchmarks"] == 71  # paper: 71 programs
        assert 200 <= total["kernels"] <= 300  # paper: 256 kernels

    def test_npb_ships_problem_classes(self):
        npb = suite("NPB")
        cg = npb.benchmark("CG")
        assert [dataset.name for dataset in cg.datasets] == ["S", "W", "A", "B", "C"]
        scales = [dataset.scale for dataset in NPB_CLASSES]
        assert scales == sorted(scales)

    def test_parboil_has_multiple_datasets(self):
        parboil = suite("Parboil")
        assert all(1 <= len(benchmark.datasets) <= 4 for benchmark in parboil.benchmarks)

    def test_unknown_suite_and_benchmark_raise(self):
        with pytest.raises(BenchmarkError):
            suite("SPEC")
        with pytest.raises(BenchmarkError):
            suite("NPB").benchmark("missing")
        with pytest.raises(BenchmarkError):
            suite("NPB").benchmark("CG").dataset("Z")

    def test_every_benchmark_passes_the_rejection_filter(self):
        rejection = RejectionFilter()
        failures = [b.qualified_name for b in all_benchmarks() if not rejection.accepts(b.source)]
        assert failures == []

    def test_every_benchmark_executes_and_produces_a_measurement(self, driver):
        failures = []
        for benchmark in all_benchmarks():
            measurement = driver.measure_source(benchmark.source, name=benchmark.qualified_name,
                                                dataset_scale=benchmark.datasets[0].scale)
            if measurement is None:
                failures.append(benchmark.qualified_name)
        assert failures == []

    def test_suites_occupy_distinct_feature_regions(self):
        """NPB should be the local-memory-heavy suite; PolyBench loop-heavy."""
        def mean_localmem(suite_name):
            values = []
            for benchmark in suite(suite_name).benchmarks:
                features = extract_static_features(benchmark.source)
                if features is not None and features.mem:
                    values.append(features.localmem / features.mem)
            return sum(values) / len(values)

        assert mean_localmem("NPB") > mean_localmem("PolyBench")


class TestCLSmithBaseline:
    def test_kernels_compile(self):
        kernels = generate_clsmith_kernels(5, seed=3)
        rejection = RejectionFilter()
        assert all(rejection.accepts(kernel) for kernel in kernels)

    def test_characteristic_tells(self):
        kernel = CLSmithGenerator().generate_kernel()
        assert "__global ulong* result" in kernel
        assert "safe_" in kernel
        assert "0x" in kernel

    def test_deterministic_for_seed(self):
        assert generate_clsmith_kernels(3, seed=5) == generate_clsmith_kernels(3, seed=5)

    def test_feature_profile_is_unnatural(self):
        """CLSmith kernels: lots of compute, almost no memory accesses."""
        features = extract_static_features(CLSmithGenerator().generate_kernel())
        assert features is not None
        assert features.comp > 20
        assert features.mem <= 2


class TestGenesisBaseline:
    def test_kernels_compile(self):
        kernels = generate_genesis_kernels(6, seed=1)
        rejection = RejectionFilter()
        assert all(rejection.accepts(kernel) for kernel in kernels)

    def test_constrained_to_stencil_and_map_templates(self):
        kernels = GenesisGenerator().generate_kernels(10)
        assert all("genesis_stencil" in k or "genesis_map" in k for k in kernels)

    def test_deterministic_for_seed(self):
        assert generate_genesis_kernels(4, seed=2) == generate_genesis_kernels(4, seed=2)
