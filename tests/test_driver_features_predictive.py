"""Tests for the host driver, dynamic checker, features and predictive models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.driver import (
    CheckOutcome,
    DriverConfig,
    DynamicChecker,
    HostDriver,
    PayloadConfig,
    PayloadGenerator,
)
from repro.features import (
    EXTENDED_FEATURE_NAMES,
    GREWE_FEATURE_NAMES,
    PCA,
    GreweFeatures,
    StaticFeatures,
    extended_feature_vector,
    extract_static_features,
    grewe_feature_vector,
)
from repro.features.dynamic_features import DynamicFeatures
from repro.predictive import (
    DecisionTreeClassifier,
    ExtendedModel,
    GreweModel,
    PredictionOutcome,
    best_static_device,
    geometric_mean,
    group_by_benchmark,
    leave_one_benchmark_out,
    mean_speedup,
    performance_relative_to_oracle,
)
import numpy as np


class TestPayloadGenerator:
    def test_paper_rules(self, reduction_source):
        payload = PayloadGenerator(PayloadConfig(global_size=128, local_size=32)).generate_for_source(
            reduction_source
        )
        # Global pointers get Sg elements; local pointers get work-group size.
        assert payload.pool.get("in").size == 128
        assert payload.pool.get("tmp").size == 32
        assert payload.pool.get("tmp").address_space == "local"
        # Integral arguments are given the value Sg.
        assert payload.scalar_args["n"] == 128

    def test_transfer_accounting(self, vecadd_source):
        payload = PayloadGenerator(PayloadConfig(global_size=64)).generate_for_source(vecadd_source)
        assert payload.transfer_to_device_bytes == 3 * 64 * 4
        assert payload.transfer_from_device_bytes > 0
        assert payload.transfer_bytes == payload.transfer_to_device_bytes + payload.transfer_from_device_bytes

    def test_clone_has_equal_values_but_independent_buffers(self, vecadd_source):
        payload = PayloadGenerator(PayloadConfig(global_size=16)).generate_for_source(vecadd_source)
        clone = payload.clone()
        assert clone.pool.get("a").equals(payload.pool.get("a"))
        clone.pool.get("a").store(0, 123.0)
        assert not clone.pool.get("a").equals(payload.pool.get("a"))

    def test_payloads_differ_across_seeds(self, vecadd_source):
        a = PayloadGenerator(PayloadConfig(global_size=16, seed=1)).generate_for_source(vecadd_source)
        b = PayloadGenerator(PayloadConfig(global_size=16, seed=2)).generate_for_source(vecadd_source)
        assert not a.pool.get("a").equals(b.pool.get("a"))


class TestDynamicChecker:
    def setup_method(self):
        self.checker = DynamicChecker(PayloadConfig(global_size=32, local_size=16))

    def test_useful_kernel(self, vecadd_source):
        assert self.checker.check_source(vecadd_source).outcome is CheckOutcome.USEFUL

    def test_no_output_kernel(self):
        source = ("__kernel void A(__global float* a, const int n) {\n"
                  "  float x = a[get_global_id(0)] * 2.0f;\n}")
        assert self.checker.check_source(source).outcome is CheckOutcome.NO_OUTPUT

    def test_input_insensitive_kernel(self):
        source = ("__kernel void A(__global float* a, const int n) {\n"
                  "  a[get_global_id(0)] = 1.0f;\n}")
        assert self.checker.check_source(source).outcome is CheckOutcome.INPUT_INSENSITIVE

    def test_timeout_kernel(self):
        checker = DynamicChecker(PayloadConfig(global_size=8, local_size=8),
                                 max_steps_per_item=200)
        source = ("__kernel void A(__global float* a, const int n) {\n"
                  "  while (1) { a[0] += 1.0f; }\n}")
        assert checker.check_source(source).outcome is CheckOutcome.TIMEOUT

    def test_scalar_only_kernel_has_no_output_buffers(self):
        source = "__kernel void A(const int n) { int x = n * 2; }"
        assert self.checker.check_source(source).outcome is CheckOutcome.NO_GLOBAL_OUTPUT_BUFFERS

    def test_four_executions_for_useful_kernel(self, vecadd_source):
        result = self.checker.check_source(vecadd_source)
        assert result.executions == 4


class TestHostDriver:
    def test_measurement_fields(self, driver, vecadd_source):
        measurement = driver.measure_source(vecadd_source, name="vecadd", dataset_scale=16.0)
        assert measurement is not None
        assert set(measurement.runtimes) == {"AMD", "NVIDIA"}
        assert measurement.oracle("AMD") in ("cpu", "gpu")
        assert measurement.transfer_bytes > 0
        assert measurement.stats.work_items > 0

    def test_uncompilable_source_returns_none(self, driver):
        assert driver.measure_source("this is not OpenCL") is None

    def test_dataset_scale_changes_runtimes(self, driver, compute_heavy_source):
        small = driver.measure_source(compute_heavy_source, dataset_scale=1.0)
        large = driver.measure_source(compute_heavy_source, dataset_scale=1000.0)
        assert large.runtime("AMD", "cpu") > small.runtime("AMD", "cpu")

    def test_compute_heavy_kernel_maps_to_gpu_at_scale(self, driver, compute_heavy_source):
        large = driver.measure_source(compute_heavy_source, dataset_scale=20000.0)
        assert large.oracle("AMD") == "gpu"

    def test_measurement_noise_is_deterministic(self, vecadd_source):
        config = DriverConfig(executed_global_size=32, local_size=16, measurement_noise=0.3)
        a = HostDriver(config=config).measure_source(vecadd_source, name="x", dataset_scale=4.0)
        b = HostDriver(config=config).measure_source(vecadd_source, name="x", dataset_scale=4.0)
        assert a.runtime("AMD", "cpu") == b.runtime("AMD", "cpu")

    def test_measure_many_skips_failures(self, driver, vecadd_source):
        measurements = driver.measure_many([vecadd_source, "garbage ("], names=["ok", "bad"])
        assert [m.name for m in measurements] == ["ok"]


class TestFeatures:
    def test_table2a_static_features(self, vecadd_source):
        features = extract_static_features(vecadd_source)
        assert features is not None
        assert features.mem == 3 and features.coalesced == 3
        assert features.localmem == 0 and features.branches == 1
        assert features.as_tuple() == (features.comp, features.mem, features.localmem,
                                       features.coalesced)

    def test_local_memory_feature(self, reduction_source):
        features = extract_static_features(reduction_source)
        assert features.localmem > 0

    def test_uncompilable_source_gives_none(self):
        assert extract_static_features("not opencl") is None

    def test_table2b_combined_features(self):
        static = StaticFeatures(comp=10, mem=5, localmem=5, coalesced=4, branches=2)
        dynamic = DynamicFeatures(transfer=300.0, wgsize=64)
        combined = GreweFeatures.from_raw(static, dynamic)
        assert combined.f1_communication_computation == pytest.approx(300.0 / 15.0)
        assert combined.f2_coalesced_fraction == pytest.approx(0.8)
        assert combined.f3_local_work == pytest.approx(64.0)
        assert combined.f4_computation_memory == pytest.approx(2.0)

    def test_zero_memory_accesses_do_not_divide_by_zero(self):
        static = StaticFeatures(comp=10, mem=0, localmem=0, coalesced=0, branches=0)
        dynamic = DynamicFeatures(transfer=100.0, wgsize=32)
        combined = GreweFeatures.from_raw(static, dynamic)
        assert combined.f2_coalesced_fraction == 0.0 and combined.f4_computation_memory == 0.0

    def test_feature_vectors_from_measurement(self, driver, vecadd_source):
        measurement = driver.measure_source(vecadd_source, dataset_scale=8.0)
        grewe = grewe_feature_vector(measurement)
        extended = extended_feature_vector(measurement)
        assert grewe.names == GREWE_FEATURE_NAMES and len(grewe) == 4
        assert extended.names == EXTENDED_FEATURE_NAMES and len(extended) == 11
        # The extended vector embeds the combined features as its tail.
        assert extended.values[-4:] == grewe.values

    def test_pca_projects_to_two_components(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(30, 5))
        projected, result = PCA(n_components=2).fit_transform(data)
        assert projected.shape == (30, 2)
        assert len(result.explained_variance_ratio) == 2

    def test_pca_requires_two_rows(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros((1, 3)))


class TestDecisionTree:
    def test_learns_simple_threshold(self):
        features = [[float(i)] for i in range(20)]
        labels = ["cpu" if i < 10 else "gpu" for i in range(20)]
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert tree.predict_one([2.0]) == "cpu"
        assert tree.predict_one([15.0]) == "gpu"
        assert tree.accuracy(features, labels) == 1.0

    def test_single_class_training(self):
        tree = DecisionTreeClassifier().fit([[1.0], [2.0]], ["gpu", "gpu"])
        assert tree.predict_one([5.0]) == "gpu"

    def test_max_depth_is_respected(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(200, 4)).tolist()
        labels = ["a" if sum(row) > 0 else "b" for row in features]
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.depth <= 2

    def test_feature_importances_sum_to_one(self):
        features = [[float(i), float(i % 3)] for i in range(30)]
        labels = ["cpu" if i < 15 else "gpu" for i in range(30)]
        tree = DecisionTreeClassifier().fit(features, labels)
        importances = tree.feature_importances()
        assert sum(importances) == pytest.approx(1.0)
        assert importances[0] > importances[1]

    def test_empty_training_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([], [])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.floats(-10, 10), st.sampled_from(["cpu", "gpu"])),
                    min_size=4, max_size=40))
    def test_training_accuracy_at_least_majority(self, rows):
        features = [[value] for value, _ in rows]
        labels = [label for _, label in rows]
        tree = DecisionTreeClassifier(max_depth=8, min_samples_leaf=1, min_samples_split=2)
        tree.fit(features, labels)
        majority = max(labels.count("cpu"), labels.count("gpu")) / len(labels)
        assert tree.accuracy(features, labels) >= majority - 1e-9


class TestPredictiveModels:
    @pytest.fixture(scope="class")
    def measurements(self, driver):
        from repro.suites import suite

        out = []
        for benchmark in suite("Parboil").benchmarks + suite("NVIDIA SDK").benchmarks:
            for dataset in benchmark.datasets:
                measurement = driver.measure_source(
                    benchmark.source,
                    name=f"{benchmark.qualified_name}.{dataset.name}",
                    dataset_scale=dataset.scale,
                )
                if measurement is not None:
                    out.append(measurement)
        return out

    def test_grewe_model_beats_chance_on_training_set(self, measurements):
        model = GreweModel("AMD").fit(measurements)
        assert model.accuracy(measurements) >= 0.6

    def test_extended_model_uses_eleven_features(self, measurements):
        model = ExtendedModel("NVIDIA").fit(measurements)
        assert len(model.features_of(measurements[0])) == 11
        assert model.predict(measurements[0]) in ("cpu", "gpu")

    def test_leave_one_benchmark_out_excludes_held_out_program(self, measurements):
        groups = group_by_benchmark(measurements, lambda m: ".".join(m.name.split(".")[:2]))
        result = leave_one_benchmark_out(groups, GreweModel, "AMD")
        assert result.folds == len(groups)
        assert len(result.outcomes) == len(measurements)

    def test_metrics(self, measurements):
        model = GreweModel("AMD").fit(measurements)
        outcomes = [
            PredictionOutcome(measurement=m, predicted_device=model.predict(m), platform="AMD")
            for m in measurements
        ]
        oracle_fraction = performance_relative_to_oracle(outcomes)
        assert 0.0 < oracle_fraction <= 1.0 + 1e-9
        static = best_static_device(measurements, "AMD")
        assert static in ("cpu", "gpu")
        assert mean_speedup(outcomes, static) > 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
