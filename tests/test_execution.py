"""Tests for the simulated OpenCL runtime: values, memory, NDRange, interpreter, devices."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.clc import parse
from repro.errors import ExecutionError, KernelTimeoutError
from repro.execution import (
    Buffer,
    KernelProfile,
    MemoryPool,
    NDRange,
    VectorValue,
    amd_platform,
    amd_tahiti_7970,
    intel_core_i7_3820,
    nvidia_gtx_970,
    nvidia_platform,
    run_kernel,
    values_equal,
)


class TestVectorValue:
    def test_component_access_xyzw_and_sN(self):
        v = VectorValue("float", [1.0, 2.0, 3.0, 4.0])
        assert v.get_member("x") == 1.0
        assert v.get_member("s3") == 4.0
        assert v.get_member("lo").values == [1.0, 2.0]
        assert v.get_member("odd").values == [2.0, 4.0]

    def test_with_member_replaces_components(self):
        v = VectorValue("float", [0.0] * 4).with_member("y", 5.0)
        assert v.values == [0.0, 5.0, 0.0, 0.0]

    def test_broadcast_arithmetic(self):
        v = VectorValue("float", [1.0, 2.0, 3.0, 4.0])
        assert (v * 2).values == [2.0, 4.0, 6.0, 8.0]
        assert (1 + v).values == [2.0, 3.0, 4.0, 5.0]

    def test_elementwise_arithmetic(self):
        a = VectorValue("int", [1, 2, 3, 4])
        b = VectorValue("int", [4, 3, 2, 1])
        assert (a + b).values == [5, 5, 5, 5]

    def test_division_by_zero_does_not_raise(self):
        v = VectorValue("float", [1.0, -1.0])
        result = v / 0
        assert result.values[0] == float("inf")

    def test_invalid_selector_raises(self):
        with pytest.raises(ValueError):
            VectorValue("float", [1.0, 2.0]).get_member("q")

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32),
                    min_size=2, max_size=8))
    def test_values_equal_is_reflexive(self, values):
        v = VectorValue("float", list(values))
        assert values_equal(v, VectorValue("float", list(values)))


class TestBuffer:
    def test_load_store_round_trip(self):
        buffer = Buffer("b", 8, "float")
        buffer.store(3, 2.5)
        assert buffer.load(3) == 2.5
        assert buffer.stats.reads == 1 and buffer.stats.writes == 1

    def test_out_of_bounds_is_clamped_and_counted(self):
        buffer = Buffer("b", 4, "int")
        buffer.store(99, 7)
        assert buffer.load(99) == 7
        assert buffer.stats.out_of_bounds == 2

    def test_strict_mode_raises(self):
        from repro.errors import KernelRuntimeError

        buffer = Buffer("b", 4, "int", strict=True)
        with pytest.raises(KernelRuntimeError):
            buffer.load(10)

    def test_clone_is_independent(self):
        buffer = Buffer("b", 4, "float")
        buffer.copy_from([1.0, 2.0, 3.0, 4.0])
        clone = buffer.clone()
        clone.store(0, 9.0)
        assert buffer.load(0) == 1.0

    def test_equals_with_epsilon(self):
        a = Buffer("a", 2, "float")
        b = Buffer("b", 2, "float")
        a.copy_from([1.0, 2.0])
        b.copy_from([1.0 + 1e-7, 2.0])
        assert a.equals(b)

    def test_integer_coercion(self):
        buffer = Buffer("b", 2, "int")
        buffer.store(0, 3.9)
        assert buffer.load(0) == 3

    def test_size_in_bytes(self):
        assert Buffer("b", 10, "float").size_in_bytes == 40
        assert Buffer("b", 10, "double").size_in_bytes == 80
        assert Buffer("b", 10, "float", vector_width=4).size_in_bytes == 160


class TestNDRange:
    def test_linear_properties(self):
        ndrange = NDRange.linear(128, 32)
        assert ndrange.total_work_items == 128
        assert ndrange.work_group_size == 32
        assert ndrange.total_groups == 4

    def test_default_local_size(self):
        assert NDRange.linear(16).work_group_size == 16
        assert NDRange.linear(1000).work_group_size == 64

    def test_two_dimensional_ids(self):
        ndrange = NDRange((4, 4), (2, 2))
        groups = list(ndrange.group_ids())
        assert len(groups) == 4
        assert ndrange.global_id((1, 1), (1, 1)) == (3, 3)

    def test_invalid_configuration_raises(self):
        with pytest.raises(ExecutionError):
            NDRange((0,))
        with pytest.raises(ExecutionError):
            NDRange((8,), (8, 8))

    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=1, max_value=64))
    def test_group_iteration_covers_global_range(self, global_size, local_size):
        ndrange = NDRange.linear(global_size, local_size)
        covered = set()
        for group in ndrange.group_ids():
            for local in ndrange.local_ids():
                gid = ndrange.global_id(group, local)
                if ndrange.in_range(gid):
                    covered.add(gid[0])
        assert covered == set(range(global_size))


class TestInterpreter:
    def _run(self, source, kernel, buffers, scalars, ndrange):
        unit = parse(source)
        pool = MemoryPool()
        for name, (size, values, space) in buffers.items():
            buffer = pool.allocate(name, size, address_space=space)
            if values is not None:
                buffer.copy_from(values)
        return pool, run_kernel(unit, pool, scalars, ndrange, kernel_name=kernel)

    def test_vecadd_computes_expected_values(self, vecadd_source):
        n = 32
        pool, result = self._run(
            vecadd_source,
            "A",
            {"a": (n, [float(i) for i in range(n)], "global"),
             "b": (n, [2.0 * i for i in range(n)], "global"),
             "c": (n, None, "global")},
            {"d": n},
            NDRange.linear(n, 8),
        )
        assert pool.get("c").to_list() == [3.0 * i for i in range(n)]
        assert result.stats.work_items == n

    def test_local_memory_reduction(self, reduction_source):
        n, wg = 64, 16
        pool, result = self._run(
            reduction_source,
            "reduce",
            {"in": (n, [1.0] * n, "global"),
             "out": (n // wg, None, "global"),
             "tmp": (wg, None, "local")},
            {"n": n},
            NDRange.linear(n, wg),
        )
        assert pool.get("out").to_list() == [float(wg)] * (n // wg)
        assert result.stats.barriers_hit > 0
        assert result.stats.local_accesses > 0

    def test_branch_divergence_detected(self):
        source = ("__kernel void D(__global float* a, const int n) {\n"
                  "  int i = get_global_id(0);\n"
                  "  if (i % 2 == 0) { a[i] = 1.0f; } else { a[i] = 2.0f; }\n}")
        pool, result = self._run(source, "D", {"a": (16, None, "global")}, {"n": 16},
                                 NDRange.linear(16, 8))
        assert result.stats.divergence_fraction > 0.0

    def test_uniform_branch_is_not_divergent(self, vecadd_source):
        pool, result = self._run(
            vecadd_source, "A",
            {"a": (16, [1.0] * 16, "global"), "b": (16, [1.0] * 16, "global"),
             "c": (16, None, "global")},
            {"d": 16}, NDRange.linear(16, 8))
        assert result.stats.divergence_fraction == 0.0

    def test_atomic_add_accumulates(self):
        source = ("__kernel void H(__global int* bins, const int n) {\n"
                  "  atomic_add(&bins[0], 1);\n}")
        pool, _ = self._run(source, "H", {"bins": (4, [0, 0, 0, 0], "global")}, {"n": 16},
                            NDRange.linear(16, 4))
        assert pool.get("bins").load(0) == 16

    def test_vector_kernel(self):
        source = ("__kernel void V(__global float4* a, __global float4* b, const int n) {\n"
                  "  int i = get_global_id(0);\n"
                  "  float4 v = a[i];\n"
                  "  b[i] = v * 2.0f + (float4)(1.0f);\n}")
        unit = parse(source)
        pool = MemoryPool()
        a = pool.allocate("a", 4, vector_width=4)
        pool.allocate("b", 4, vector_width=4)
        a.copy_from([VectorValue("float", [1.0, 2.0, 3.0, 4.0])] * 4)
        run_kernel(unit, pool, {"n": 4}, NDRange.linear(4, 4))
        assert pool.get("b").load(0).values == [3.0, 5.0, 7.0, 9.0]

    def test_helper_function_call(self):
        source = ("float square(float x) { return x * x; }\n"
                  "__kernel void S(__global float* a, const int n) {\n"
                  "  int i = get_global_id(0);\n  a[i] = square(a[i]);\n}")
        pool, result = self._run(source, "S", {"a": (8, [2.0] * 8, "global")}, {"n": 8},
                                 NDRange.linear(8, 8))
        assert pool.get("a").to_list() == [4.0] * 8
        assert result.stats.helper_calls == 8

    def test_infinite_loop_hits_timeout(self):
        source = ("__kernel void L(__global float* a, const int n) {\n"
                  "  while (1) { a[0] = a[0] + 1.0f; }\n}")
        unit = parse(source)
        pool = MemoryPool()
        pool.allocate("a", 4)
        with pytest.raises(KernelTimeoutError):
            run_kernel(unit, pool, {"n": 4}, NDRange.linear(4, 4), max_steps_per_item=500)

    def test_missing_buffer_raises(self, vecadd_source):
        unit = parse(vecadd_source)
        with pytest.raises(ExecutionError):
            run_kernel(unit, MemoryPool(), {"d": 4}, NDRange.linear(4))


class TestDeviceModels:
    def _profile(self, ops, bytes_traffic, transfer, items=1 << 16, coalesced=1.0, divergence=0.0):
        return KernelProfile(
            work_items=items,
            work_group_size=64,
            total_operations=ops,
            global_traffic_bytes=bytes_traffic,
            local_traffic_bytes=0.0,
            coalesced_fraction=coalesced,
            divergence_fraction=divergence,
            transfer_bytes=transfer,
        )

    def test_table4_devices(self):
        cpu, amd, nvidia = intel_core_i7_3820(), amd_tahiti_7970(), nvidia_gtx_970()
        assert cpu.cores == 4 and not cpu.is_gpu
        assert amd.cores == 2048 and amd.peak_gflops == 3790
        assert nvidia.cores == 1664 and nvidia.peak_gflops == 3900

    def test_compute_heavy_kernel_prefers_gpu(self):
        profile = self._profile(ops=5e9, bytes_traffic=1e7, transfer=1e7)
        assert amd_platform().oracle_device(profile) == "gpu"
        assert nvidia_platform().oracle_device(profile) == "gpu"

    def test_transfer_bound_kernel_prefers_cpu(self):
        profile = self._profile(ops=1e6, bytes_traffic=1e6, transfer=5e8)
        assert amd_platform().oracle_device(profile) == "cpu"

    def test_uncoalesced_access_slows_gpu(self):
        coalesced = self._profile(ops=1e8, bytes_traffic=5e8, transfer=1e6, coalesced=1.0)
        scattered = self._profile(ops=1e8, bytes_traffic=5e8, transfer=1e6, coalesced=0.0)
        gpu = amd_tahiti_7970()
        assert gpu.estimate_runtime(scattered) > gpu.estimate_runtime(coalesced)

    def test_divergence_slows_gpu_only(self):
        uniform = self._profile(ops=1e9, bytes_traffic=1e6, transfer=1e6, divergence=0.0)
        divergent = self._profile(ops=1e9, bytes_traffic=1e6, transfer=1e6, divergence=1.0)
        assert amd_tahiti_7970().estimate_runtime(divergent) > amd_tahiti_7970().estimate_runtime(uniform)
        cpu = intel_core_i7_3820()
        assert cpu.estimate_runtime(divergent) == pytest.approx(cpu.estimate_runtime(uniform))

    def test_scaled_profile_scales_linearly(self):
        profile = self._profile(ops=1e6, bytes_traffic=1e6, transfer=1e6)
        scaled = profile.scaled(10)
        assert scaled.total_operations == pytest.approx(1e7)
        assert scaled.transfer_bytes == pytest.approx(1e7)

    @settings(max_examples=25)
    @given(st.floats(min_value=1e3, max_value=1e10), st.floats(min_value=1e3, max_value=1e9),
           st.floats(min_value=0.0, max_value=1.0))
    def test_runtimes_are_positive_and_finite(self, ops, traffic, coalesced):
        profile = self._profile(ops=ops, bytes_traffic=traffic, transfer=traffic,
                                coalesced=coalesced)
        for platform in (amd_platform(), nvidia_platform()):
            times = platform.runtimes(profile)
            assert times["cpu"] > 0 and times["gpu"] > 0
            assert times["cpu"] < 1e6 and times["gpu"] < 1e6


class TestRecursiveKernelGuard:
    """A self-recursive kernel (invalid OpenCL C, but the lenient frontend
    accepts it — full-scale synthesis produces them) must raise a catchable
    ExecutionError at the same call depth on every engine, not blow the
    Python stack mid-measurement (PR 4 regression)."""

    # Shape synthesized at full scale (the condition is taken, so the
    # self-call really recurses).
    RECURSIVE = """
    __kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
      int e = get_global_id(0);
      if (d >= c) {
        b[d] = 0.0f;
        for (int f = 0; f < 16; f++) {
          a = A(a);
        }
        b[d] = tanh(a[d]);
      }
    }
    """

    @pytest.mark.parametrize("engine", ["compiled", "interpreter", "auto"])
    def test_every_engine_raises_execution_error(self, engine):
        from repro.driver.payload import PayloadConfig, PayloadGenerator
        from repro.execution.cache import cached_compile_source, run_kernel
        from repro.preprocess.shim import shim_include_resolver, with_shim

        compilation = cached_compile_source(
            with_shim(self.RECURSIVE),
            include_resolver=shim_include_resolver,
            strict=False,
        )
        kernel = compilation.unit.kernels[0]
        payload = PayloadGenerator(
            PayloadConfig(global_size=32, local_size=16, seed=0)
        ).generate(kernel, work_dim=1)
        with pytest.raises(ExecutionError, match="call depth"):
            run_kernel(
                compilation.unit,
                payload.pool,
                payload.scalar_args,
                payload.ndrange,
                kernel_name=kernel.name,
                engine=engine,
            )

    def test_driver_excludes_the_kernel(self):
        from repro.driver.harness import DriverConfig, HostDriver

        driver = HostDriver(
            config=DriverConfig(executed_global_size=32, local_size=16)
        )
        assert driver.measure_source(self.RECURSIVE) is None

    def test_bounded_helper_chains_still_run(self):
        from repro.driver.harness import DriverConfig, HostDriver

        source = """
        float f(float x) { return x + 1.0f; }
        float g(float x) { return f(x) * 2.0f; }
        __kernel void A(__global float* a, const int d) {
          int e = get_global_id(0);
          if (e < d) {
            a[e] = g(a[e]);
          }
        }
        """
        driver = HostDriver(
            config=DriverConfig(executed_global_size=32, local_size=16)
        )
        assert driver.measure_source(source) is not None
