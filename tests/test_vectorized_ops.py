"""Property tests: lockstep operators agree element-wise with ops.py.

Every scalar operation of :mod:`repro.execution.ops` must agree with its
vectorized counterpart in :mod:`repro.execution.vec_ops` on every lane — or
refuse via :class:`~repro.errors.LockstepBailout`, in which case the engine
router re-runs the kernel on the scalar engines and no wrong answer can
escape.  The properties therefore assert "equal or bailed", including the
overflow/wraparound and division/modulo edge cases, across int/float kind
combinations, uniform/array operand shapes and full/partial masks.

Within the documented exact envelope (|ints| < 2**53, any float64) the
operators must *not* bail for +, comparisons, bitwise ops and shifts of
in-range results — that is the envelope the execute tier relies on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LockstepBailout
from repro.execution import vec_ops
from repro.execution.ops import apply_binary
from repro.execution.values import convert_scalar

_BINARY_OPS = ("+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=",
               "&", "|", "^", "<<", ">>")

#: Scalars that exercise the edge cases: zeros (division/modulo), sign
#: boundaries, values beyond int64 and beyond the 2**53 exact-float window,
#: plus non-finite floats.
_EDGE_INTS = [0, 1, -1, 2, -2, 63, 64, 127, 128, 255, 2**31 - 1, -(2**31),
              2**53 - 1, 2**53 + 1, 2**62, -(2**62), 2**63 - 1, -(2**63), 2**70]
_EDGE_FLOATS = [0.0, -0.0, 1.0, -1.0, 0.5, -2.5, 1e-300, 1e300,
                float("inf"), float("-inf"), float("nan")]

_ints = st.one_of(st.sampled_from(_EDGE_INTS), st.integers(-(2**64), 2**64))
_floats = st.one_of(
    st.sampled_from(_EDGE_FLOATS), st.floats(allow_nan=True, allow_infinity=True)
)
_scalars = st.one_of(_ints, _floats)


def _lane_value(values):
    """Lift Python scalars to a (kind, data) lane array.

    Raises OverflowError when the values do not fit the lane dtype — the
    same condition under which the engine itself would have bailed.
    """
    if all(isinstance(v, int) for v in values):
        return ("i", np.array(values, dtype=np.int64)), values
    if not all(isinstance(v, float) for v in values):
        # A lane vector holds one kind; per-lane kind mixtures are exactly
        # what the engine refuses (kind-divergence bailouts), so there is no
        # engine configuration to compare against.
        raise OverflowError("mixed-kind lanes are not representable")
    return ("f", np.array(values, dtype=np.float64)), values


def _representable(originals, exact) -> bool:
    """Whether lifting to a lane array preserved every value (NaN == NaN)."""
    for a, b in zip(originals, exact):
        if isinstance(a, float) and isinstance(b, float) and a != a and b != b:
            continue
        if a != b:
            return False
    return True


def _expected(op, lhs, rhs):
    try:
        return [apply_binary(op, a, b) for a, b in zip(lhs, rhs)]
    except Exception as error:  # e.g. int(nan) in as-yet-unreachable paths
        return error


def _assert_lane_equal(result, expected, where: str):
    kind, data = result
    values = data.tolist() if isinstance(data, np.ndarray) else [data] * len(expected)
    assert len(values) == len(expected), where
    for got, want in zip(values, expected):
        if isinstance(want, float) and isinstance(got, float):
            assert got == want or (got != got and want != want), (where, got, want)
        else:
            assert got == want, (where, got, want)
            # The per-lane int/float flavour is semantically significant
            # (division truncation, slot coercion) — it must match too.
            assert isinstance(got, bool) or (
                isinstance(got, float) == isinstance(want, float)
            ), (where, got, want)


@settings(max_examples=300, deadline=None)
@given(
    op=st.sampled_from(_BINARY_OPS),
    lhs=st.lists(_scalars, min_size=1, max_size=4),
    rhs_scalar=_scalars,
    rhs_is_uniform=st.booleans(),
)
def test_binary_matches_apply_binary_or_bails(op, lhs, rhs_scalar, rhs_is_uniform):
    """Lane-wise binary results equal apply_binary exactly, or bail."""
    rhs = [rhs_scalar] * len(lhs)
    try:
        left, lhs_exact = _lane_value(lhs)
    except OverflowError:
        return  # not representable as a lane array at all
    if rhs_is_uniform:
        right = (("f" if isinstance(rhs_scalar, float) else "i"), rhs_scalar)
        rhs_exact = rhs
    else:
        try:
            right, rhs_exact = _lane_value(rhs)
        except OverflowError:
            return
    # int64/float64 materialisation may change out-of-range values — the
    # engine would have bailed converting them; mirror that here.
    if not _representable(lhs, lhs_exact) or not _representable(rhs, rhs_exact):
        return

    try:
        with np.errstate(all="ignore"):
            result = vec_ops.binary(op, left, right, None)
    except LockstepBailout:
        return  # refusal is always safe: the router re-runs on scalars
    expected = _expected(op, lhs, rhs)
    assert not isinstance(expected, Exception), "engine produced a value where scalars raise"
    _assert_lane_equal(result, expected, f"{op} over {lhs} x {rhs_scalar}")


@settings(max_examples=200, deadline=None)
@given(
    op=st.sampled_from(("+", "==", "<", "&", "|", "^", ">>")),
    lhs=st.lists(st.integers(-(2**52), 2**52), min_size=1, max_size=4),
    rhs=st.integers(-(2**52), 2**52),
)
def test_exact_envelope_never_bails(op, lhs, rhs):
    """Inside the documented envelope the hot operators must not bail."""
    left, _ = _lane_value(lhs)
    result = vec_ops.binary(op, left, ("i", rhs), None)
    _assert_lane_equal(result, _expected(op, lhs, [rhs] * len(lhs)), f"{op} {lhs} {rhs}")


@settings(max_examples=200, deadline=None)
@given(
    lhs=st.lists(st.one_of(_ints, _floats), min_size=1, max_size=4),
    rhs=st.one_of(_ints, _floats),
    op=st.sampled_from(("/", "%")),
)
def test_division_and_modulo_by_zero(lhs, rhs, op):
    """Zero divisors follow ops.py (0 for ints, signed inf/nan for floats)."""
    try:
        left, exact = _lane_value(lhs)
    except OverflowError:
        return
    if not _representable(lhs, exact):
        return
    zero = 0 if isinstance(rhs, int) else 0.0
    try:
        with np.errstate(all="ignore"):
            result = vec_ops.binary(op, left, ("i" if isinstance(zero, int) else "f", zero), None)
    except LockstepBailout:
        return
    expected = _expected(op, lhs, [zero] * len(lhs))
    assert not isinstance(expected, Exception)
    _assert_lane_equal(result, expected, f"{op} by zero over {lhs}")


@settings(max_examples=150, deadline=None)
@given(
    kind=st.sampled_from(["bool", "char", "uchar", "short", "ushort", "int",
                          "uint", "long", "ulong", "size_t", "float", "double", "half"]),
    value=st.one_of(_ints, st.integers(-(2**70), 2**70)),
)
def test_convert_wraps_uniform_bignums_or_bails(kind, value):
    """Uniform Python ints beyond int64 must wrap exactly (or bail)."""
    try:
        with np.errstate(all="ignore"):
            result = vec_ops.convert(kind, ("i", value), None)
    except LockstepBailout:
        return
    _assert_lane_equal(result, [convert_scalar(kind, value)], f"uniform convert {kind} of {value}")


@settings(max_examples=200, deadline=None)
@given(
    kind=st.sampled_from(["bool", "char", "uchar", "short", "ushort", "int",
                          "uint", "long", "ulong", "size_t", "float", "double", "half"]),
    values=st.lists(st.one_of(_ints, _floats), min_size=1, max_size=4),
)
def test_convert_matches_convert_scalar_or_bails(kind, values):
    """Type casts wrap exactly like values.convert_scalar, or bail."""
    try:
        lane, exact = _lane_value(values)
    except OverflowError:
        return
    if not _representable(values, exact):
        return
    try:
        with np.errstate(all="ignore"):
            result = vec_ops.convert(kind, lane, None)
    except LockstepBailout:
        return
    expected = []
    for value in values:
        try:
            expected.append(convert_scalar(kind, value))
        except (ValueError, OverflowError):
            pytest.fail("engine produced a value where convert_scalar raises")
    _assert_lane_equal(result, expected, f"convert {kind} over {values}")


@settings(max_examples=150, deadline=None)
@given(values=st.lists(st.one_of(_ints, _floats), min_size=1, max_size=4))
def test_unary_negate_invert_not(values):
    try:
        lane, exact = _lane_value(values)
    except OverflowError:
        return
    if not _representable(values, exact):
        return
    try:
        result = vec_ops.negate(lane, None)
        _assert_lane_equal(result, [-v for v in values], f"negate {values}")
    except LockstepBailout:
        pass
    result = vec_ops.logical_not(lane)
    _assert_lane_equal(result, [0 if v else 1 for v in values], f"! {values}")
    try:
        with np.errstate(all="ignore"):
            result = vec_ops.invert(lane, None)
        expected = []
        for v in values:
            try:
                expected.append(~int(v))
            except (ValueError, OverflowError):
                pytest.fail("engine inverted a value the scalars cannot")
        _assert_lane_equal(result, expected, f"~ {values}")
    except LockstepBailout:
        pass


def test_masked_guard_ignores_inactive_lanes():
    """Guards only inspect active lanes: dead-lane garbage must not bail."""
    left = ("i", np.array([1, 2**62, 3], dtype=np.int64))
    mask = np.array([True, False, True])
    kind, data = vec_ops.binary("*", left, ("i", 2**52), mask)
    assert data[0] == 2**52 and data[2] == 3 * 2**52


def test_mask_algebra():
    full, empty = None, False
    some = np.array([True, False, True, False])
    assert vec_ops.mask_count(full, 4) == 4
    assert vec_ops.mask_count(empty, 4) == 0
    assert vec_ops.mask_count(some, 4) == 2
    assert vec_ops.mask_and(full, some).tolist() == some.tolist()
    assert vec_ops.mask_and(some, np.array([True] * 4)).tolist() == some.tolist()
    # All-true and all-false intersections normalise to the fast sentinels.
    assert vec_ops.mask_and(full, np.array([True] * 4)) is None
    assert vec_ops.mask_and(some, np.array([False] * 4)) is False
    assert vec_ops.mask_or(some, vec_ops.mask_minus(full, some)) is None
    assert vec_ops.mask_minus(some, full) is False
    assert vec_ops.mask_minus(full, empty) is None
