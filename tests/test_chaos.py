"""Opt-in chaos soak (``-m chaos``) over real worker processes.

Runs ``scripts/chaos_drain.py``'s full fault menu — crash after claim,
crash mid-shard, crash before the merge lands, torn store write, transient
put errors, and a deterministic poison shard — each round killing real
``repro worker`` subprocesses and asserting the surviving fleet's merged
artifacts are byte-identical to an unsharded run (or, for the poison
round, that the plan quarantines after exactly the retry budget).  The
service-layer rounds do the same through the front door: a ``repro
fleet`` supervisor and a ``repro serve`` replica survive SIGKILLs and
surface a poisoned plan as a structured HTTP error.  Run it on its own::

    PYTHONPATH=src python -m pytest tests -m chaos

Like the perf gate, it only runs when explicitly selected: each round
spawns several interpreter processes, which is too heavy for the default
tier-1 sweep (where the same protocol edges are covered in-process by
``test_queue.py``'s mode=raise fault tests).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.chaos

_SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def _chaos_main():
    sys.path.insert(0, str(_SCRIPTS))
    try:
        import chaos_drain
    finally:
        sys.path.remove(str(_SCRIPTS))
    return chaos_drain


@pytest.fixture(autouse=True)
def _opt_in(request):
    if "chaos" not in (request.config.option.markexpr or ""):
        pytest.skip("chaos soak is opt-in: select it with -m chaos")


def test_full_fault_menu_survives_one_cycle(tmp_path):
    chaos_drain = _chaos_main()
    assert (
        chaos_drain.main(
            ["--rounds", str(len(chaos_drain.FAULT_MENU)), "--workers", "2",
             "--lease", "2", "--scratch", str(tmp_path / "chaos")]
        )
        == 0
    )


def test_three_worker_fleet_survives_crash_rounds(tmp_path):
    chaos_drain = _chaos_main()
    assert (
        chaos_drain.main(
            ["--rounds", "2", "--workers", "3", "--lease", "2",
             "--fault", "crash_mid_shard", "--scratch", str(tmp_path / "chaos")]
        )
        == 0
    )


def test_supervised_service_survives_kill_and_poison(tmp_path):
    """The service-layer rounds: SIGKILL a worker and the supervisor
    mid-drain (the relaunched fleet reconverges and the served result
    stays byte-identical), then poison a shard behind the front door (the
    request surfaces a structured 502 naming the shard, well before its
    deadline)."""
    chaos_drain = _chaos_main()
    assert (
        chaos_drain.main(
            ["--rounds", "0", "--supervisor-rounds",
             str(len(chaos_drain.SUPERVISOR_MENU)),
             "--lease", "2", "--scratch", str(tmp_path / "chaos")]
        )
        == 0
    )
