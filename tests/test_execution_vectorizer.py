"""Unit tests for the vectorized lockstep (SIMT) execution tier.

The three-way differential suite (test_execution_compiler.py) asserts
bit-identity over the benchmark inventory; these tests pin down the tier's
*mechanisms*: engine selection and caching, bailout purity (the memory pool
must be untouched), cross-lane hazard detection, barrier epochs in
group-sequential mode, order-independent atomics, and the opt-in
measure_many worker pool.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.clc import parse
from repro.driver.harness import DriverConfig, HostDriver
from repro.errors import LockstepBailout
from repro.execution import (
    GLOBAL_COMPILATION_CACHE,
    CompiledKernel,
    KernelInterpreter,
    MemoryPool,
    NDRange,
    run_kernel,
    try_vectorize,
    vectorized_kernel_for,
)


def _pool(**buffers):
    pool = MemoryPool()
    for name, (size, values, space) in buffers.items():
        buffer = pool.allocate(name, size, address_space=space)
        if values is not None:
            buffer.copy_from(values)
    return pool


def _run_all_engines(source, buffers, scalars, ndrange):
    """Execute on interpreter, closure and lockstep tiers; return outputs."""
    outputs = []
    for engine in ("interpreter", "compiled", "vectorized"):
        unit = parse(source)
        pool = _pool(**buffers)
        result = run_kernel(unit, pool, dict(scalars), ndrange, engine=engine)
        outputs.append(
            ({name: b.to_list() for name, b in pool.buffers.items()},
             dataclasses.asdict(result.stats))
        )
    return outputs


def _assert_all_equal(outputs):
    reference = outputs[0]
    for candidate in outputs[1:]:
        assert candidate == reference


class TestEngineSelection:
    def test_vectorizable_kernel_produces_artifact(self):
        unit = parse("__kernel void A(__global float* a, const int n) { a[get_global_id(0)] = n; }")
        artifact = vectorized_kernel_for(unit)
        assert artifact is not None
        assert vectorized_kernel_for(unit) is artifact  # cached

    def test_rejection_is_cached_as_none(self):
        source = (
            "__kernel void V(__global float4* a, const int n) { }"
        )
        unit = parse(source)
        assert vectorized_kernel_for(unit) is None
        assert vectorized_kernel_for(unit) is None

    def test_router_runs_vectorized_and_matches_scalars(self):
        source = (
            "__kernel void A(__global float* a, __global float* b, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < n) { b[i] = a[i] * 2.0f + 1.0f; }\n}"
        )
        outputs = _run_all_engines(
            source,
            {"a": (16, [float(i) for i in range(16)], "global"), "b": (16, None, "global")},
            {"n": 16},
            NDRange.linear(16, 8),
        )
        _assert_all_equal(outputs)

    def test_divergent_control_flow_matches(self):
        source = (
            "__kernel void D(__global int* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  int acc = 0;\n"
            "  for (int k = 0; k < i; k++) {\n"
            "    if (k % 3 == 0) { continue; }\n"
            "    if (k > 12) { break; }\n"
            "    acc += k;\n"
            "  }\n"
            "  while (acc > 40) { acc -= 7; }\n"
            "  a[i] = acc;\n}"
        )
        outputs = _run_all_engines(
            source, {"a": (24, None, "global")}, {"n": 24}, NDRange.linear(24, 8)
        )
        _assert_all_equal(outputs)

    def test_helpers_switch_and_private_arrays_match(self):
        source = (
            "int pick(int v) { switch (v % 3) { case 0: return 7; case 1: return v + 1;\n"
            "                  default: return v - 1; } }\n"
            "__kernel void S(__global int* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  int tmp[4];\n"
            "  for (int k = 0; k < 4; k++) { tmp[k] = pick(i + k); }\n"
            "  a[i] = tmp[0] + tmp[1] + tmp[2] + tmp[3];\n}"
        )
        outputs = _run_all_engines(
            source, {"a": (12, None, "global")}, {"n": 12}, NDRange.linear(12, 4)
        )
        _assert_all_equal(outputs)


class TestBailouts:
    def test_cross_lane_hazard_bails_and_pool_is_untouched(self):
        # Each item reads its left neighbour's cell, which the neighbour
        # wrote earlier in sequential order — unreproducible in lockstep.
        source = (
            "__kernel void C(__global int* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  a[i] = a[(i + n - 1) % n] + 1;\n}"
        )
        unit = parse(source)
        vectorized = try_vectorize(unit)
        assert vectorized is not None
        pool = _pool(a=(8, list(range(8)), "global"))
        before = pool.buffers["a"].to_list()
        with pytest.raises(LockstepBailout):
            vectorized.execute(pool, {"n": 8}, NDRange.linear(8, 8))
        assert pool.buffers["a"].to_list() == before
        assert pool.buffers["a"].stats.reads == 0

        # The router falls back transparently and matches the scalars.
        outputs = _run_all_engines(
            source, {"a": (8, list(range(8)), "global")}, {"n": 8}, NDRange.linear(8, 8)
        )
        _assert_all_equal(outputs)

    def test_bailout_disables_future_lockstep_attempts(self):
        source = (
            "__kernel void C(__global int* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  a[i] = a[(i + 1) % n] + 1;\n}"
        )
        unit = parse(source)
        vectorized = try_vectorize(unit)
        pool = _pool(a=(8, list(range(8)), "global"))
        with pytest.raises(LockstepBailout):
            vectorized.execute(pool, {"n": 8}, NDRange.linear(8, 8))
        with pytest.raises(LockstepBailout, match="disabled"):
            vectorized.execute(pool, {"n": 8}, NDRange.linear(8, 8))

    def test_int64_overflow_bails_not_wraps(self):
        source = (
            "__kernel void O(__global long* a, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  long v = LONG_MAX;\n"
            "  a[i] = v + i;\n}"
        )
        unit = parse(source)
        vectorized = try_vectorize(unit)
        assert vectorized is not None
        pool = _pool(a=(4, None, "global"))
        with pytest.raises(LockstepBailout):
            vectorized.execute(pool, {"n": 4}, NDRange.linear(4, 4))
        # And the router's answer equals the interpreter's exact bignums.
        outputs = _run_all_engines(
            source, {"a": (4, None, "global")}, {"n": 4}, NDRange.linear(4, 4)
        )
        _assert_all_equal(outputs)


class TestGroupSequentialMode:
    def test_barrier_reduction_matches_scalars(self):
        source = (
            "__kernel void R(__global float* in, __global float* out, __local float* tmp,\n"
            "                const int n) {\n"
            "  int lid = get_local_id(0); int gid = get_global_id(0);\n"
            "  tmp[lid] = in[gid];\n"
            "  barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {\n"
            "    if (lid < s) { tmp[lid] += tmp[lid + s]; }\n"
            "    barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  }\n"
            "  if (lid == 0) { out[get_group_id(0)] = tmp[0]; }\n}"
        )
        n, wg = 64, 16
        outputs = _run_all_engines(
            source,
            {"in": (n, [1.0] * n, "global"), "out": (n // wg, None, "global"),
             "tmp": (wg, None, "local")},
            {"n": n},
            NDRange.linear(n, wg),
        )
        _assert_all_equal(outputs)
        buffers, stats = outputs[-1]
        assert buffers["out"] == [float(wg)] * (n // wg)
        assert stats["barriers_hit"] > 0

    def test_local_declaration_matches_scalars(self):
        source = (
            "__kernel void L(__global float* out, const int n) {\n"
            "  __local float stage[16];\n"
            "  int lid = get_local_id(0);\n"
            "  stage[lid] = (float)(lid * 2);\n"
            "  barrier(CLK_LOCAL_MEM_FENCE);\n"
            "  out[get_global_id(0)] = stage[(lid + 1) % 16];\n}"
        )
        outputs = _run_all_engines(
            source, {"out": (32, None, "global")}, {"n": 32}, NDRange.linear(32, 16)
        )
        _assert_all_equal(outputs)


class TestAtomics:
    def test_histogram_atomics_match_scalars(self):
        source = (
            "__kernel void H(__global const int* data, __global int* bins, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  if (i < n) { atomic_add(&bins[data[i] % 8], 1); }\n}"
        )
        outputs = _run_all_engines(
            source,
            {"data": (32, [i * 3 for i in range(32)], "global"), "bins": (8, [0] * 8, "global")},
            {"n": 32},
            NDRange.linear(32, 8),
        )
        _assert_all_equal(outputs)
        assert sum(outputs[-1][0]["bins"]) == 32

    def test_float_atomic_add_is_rounding_exact(self):
        source = (
            "__kernel void F(__global float* acc, __global const float* v, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  atomic_add(&acc[0], v[i]);\n}"
        )
        values = [0.1 * (i + 1) for i in range(16)]
        outputs = _run_all_engines(
            source,
            {"acc": (1, [0.0], "global"), "v": (16, values, "global")},
            {"n": 16},
            NDRange.linear(16, 16),
        )
        _assert_all_equal(outputs)

    def test_atomic_with_used_result_falls_back(self):
        source = (
            "__kernel void U(__global int* a, __global int* old, const int n) {\n"
            "  int i = get_global_id(0);\n"
            "  old[i] = atomic_add(&a[0], 1);\n}"
        )
        unit = parse(source)
        assert try_vectorize(unit) is None
        outputs = _run_all_engines(
            source,
            {"a": (1, [0], "global"), "old": (8, None, "global")},
            {"n": 8},
            NDRange.linear(8, 8),
        )
        _assert_all_equal(outputs)


class TestMeasureManyWorkers:
    SOURCES = [
        (
            f"__kernel void k{index}(__global float* a, __global float* b, const int n) {{\n"
            f"  int g = get_global_id(0);\n"
            f"  if (g < n) {{ a[g] = b[g] * {index}.5f + {index}.0f; }}\n}}"
        )
        for index in range(6)
    ]

    def test_worker_pool_matches_sequential(self):
        config = DriverConfig(executed_global_size=32, local_size=16)
        names = [f"k{index}" for index in range(len(self.SOURCES))]
        sequential = HostDriver(config=config).measure_many(self.SOURCES, names=names)
        parallel = HostDriver(config=config).measure_many(
            self.SOURCES, names=names, workers=2
        )
        assert [m.name for m in parallel] == [m.name for m in sequential]
        for a, b in zip(sequential, parallel):
            assert a.runtimes == b.runtimes
            assert a.oracles == b.oracles
            assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)

    def test_workers_default_off(self):
        driver = HostDriver(config=DriverConfig(executed_global_size=16, local_size=8))
        assert driver._resolve_workers(None) == 0
        assert driver._resolve_workers(3) == 3
