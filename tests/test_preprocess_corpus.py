"""Tests for the shim header, rejection filter, code rewriter and corpus mining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import (
    ContentFileGenerator,
    Corpus,
    GitHubMiner,
    inline_headers,
)
from repro.preprocess import (
    CodeRewriter,
    PreprocessingPipeline,
    RejectionFilter,
    RejectionReason,
    bag_of_words_vocabulary,
    name_sequence,
    rewrite_source,
    shim_header_text,
    with_shim,
)


class TestShim:
    def test_shim_header_compiles(self):
        from repro.clc import compile_source

        result = compile_source(shim_header_text() + "\n__kernel void A(__global FLOAT_T* a) "
                                "{ a[get_global_id(0)] = WG_SIZE; }", require_kernel=True)
        assert result.kernels

    def test_shim_defines_common_aliases(self):
        text = shim_header_text()
        assert "typedef float FLOAT_T;" in text
        assert "#define WG_SIZE" in text


class TestRejectionFilter:
    def test_accepts_valid_kernel(self, vecadd_source):
        assert RejectionFilter().accepts(vecadd_source)

    def test_rejects_syntax_error(self):
        result = RejectionFilter().check("__kernel void A( {")
        assert not result.accepted
        assert result.reason is RejectionReason.PARSE_ERROR

    def test_rejects_undeclared_identifier(self):
        result = RejectionFilter().check(
            "__kernel void A(__global float* a) { a[0] = undefined_thing; }"
        )
        assert result.reason is RejectionReason.UNDECLARED_IDENTIFIER

    def test_rejects_missing_kernel(self):
        result = RejectionFilter().check("float f(float a) { return a; }")
        assert result.reason is RejectionReason.NO_KERNEL

    def test_rejects_too_few_instructions(self):
        result = RejectionFilter().check("__kernel void A() {}")
        assert result.reason is RejectionReason.TOO_FEW_INSTRUCTIONS

    def test_shim_rescues_project_specific_types(self):
        source = ("__kernel void A(__global FLOAT_T* x, const int n) {\n"
                  "  int i = get_global_id(0);\n  if (i < n && i < WG_SIZE) x[i] *= 2.0f;\n}")
        assert RejectionFilter(use_shim=True).accepts(source)
        assert not RejectionFilter(use_shim=False).accepts(source)

    def test_minimum_instruction_threshold_is_configurable(self, vecadd_source):
        assert not RejectionFilter(min_static_instructions=10_000).accepts(vecadd_source)


class TestRewriter:
    def test_reproduces_figure5_example(self):
        content = (
            "#define DTYPE float\n#define ALPHA(a) 3.5f * a\n"
            "inline DTYPE ax(DTYPE x) { return ALPHA(x); }\n\n"
            "__kernel void saxpy(/* SAXPY kernel */\n"
            "    __global DTYPE* input1,\n    __global DTYPE* input2,\n    const int nelem)\n"
            "{\n  unsigned int idx = get_global_id(0);\n  // = ax + y\n"
            "  if (idx < nelem) {\n    input2[idx] += ax(input1[idx]); }}\n"
        )
        text = rewrite_source(content)
        assert "inline float A(float a)" in text
        assert "__kernel void B(__global float* b, __global float* c, const int d)" in text
        assert "/*" not in text and "//" not in text

    def test_builtins_are_not_renamed(self, reduction_source):
        text = rewrite_source(reduction_source)
        assert "get_global_id" in text and "barrier" in text

    def test_rename_disabled_preserves_names(self, vecadd_source):
        rewriter = CodeRewriter(rename_identifiers=False)
        assert "get_global_id" in rewriter.rewrite(vecadd_source).text

    def test_vocabulary_is_reduced(self):
        generator = ContentFileGenerator(seed=5)
        files = [f.text for f in generator.generate_many(40) if f.compilable]
        rewriter = CodeRewriter()
        original, rewritten = set(), set()
        for text in files:
            result = rewriter.rewrite_or_none(text)
            if result is None:
                continue
            original |= bag_of_words_vocabulary(text)
            rewritten |= bag_of_words_vocabulary(result.text)
        assert len(rewritten) < len(original) * 0.5

    def test_rewrite_or_none_on_broken_input(self):
        assert CodeRewriter().rewrite_or_none("template <class T> T f(T x);") is None

    def test_name_sequence_order(self):
        import itertools, string

        names = list(itertools.islice(name_sequence(string.ascii_lowercase), 30))
        assert names[:3] == ["a", "b", "c"]
        assert names[25] == "z" and names[26] == "aa" and names[27] == "ab"

    def test_rewritten_code_is_behaviour_preserving(self, vecadd_source):
        """The rewriter must preserve program behaviour (paper §4.1, step 2)."""
        from repro.clc import parse
        from repro.execution import MemoryPool, NDRange, run_kernel

        def run(source):
            unit = parse(with_shim(source)) if "FLOAT_T" in source else parse(source)
            pool = MemoryPool()
            n = 16
            a = pool.allocate("arg0", n)
            b = pool.allocate("arg1", n)
            c = pool.allocate("arg2", n)
            a.copy_from([float(i) for i in range(n)])
            b.copy_from([1.0] * n)
            kernel = unit.kernels[0]
            names = [p.name for p in kernel.parameters]
            pool.buffers = dict(zip(names[:3], [a, b, c]))
            run_kernel(unit, pool, {names[3]: n}, NDRange.linear(n, 8))
            return c.to_list()

        assert run(vecadd_source) == run(rewrite_source(vecadd_source))


class TestPipeline:
    def test_statistics_are_consistent(self):
        generator = ContentFileGenerator(seed=3)
        files = [f.text for f in generator.generate_many(60)]
        result = PreprocessingPipeline().run(files)
        stats = result.statistics
        assert stats.content_files == 60
        assert stats.accepted_files + stats.rejected_files == 60
        assert stats.rewritten_files == len(result.corpus_texts)
        assert 0.0 <= stats.discard_rate <= 1.0

    def test_shim_lowers_discard_rate(self):
        generator = ContentFileGenerator(seed=9)
        files = [f.text for f in generator.generate_many(80)]
        with_shim_rate = PreprocessingPipeline(use_shim=True).run(files).statistics.discard_rate
        without_rate = PreprocessingPipeline(use_shim=False).run(files).statistics.discard_rate
        assert with_shim_rate < without_rate

    def test_every_corpus_text_recompiles(self):
        generator = ContentFileGenerator(seed=1)
        files = [f.text for f in generator.generate_many(30)]
        result = PreprocessingPipeline().run(files)
        rejection = RejectionFilter()
        assert result.corpus_texts
        assert all(rejection.accepts(text) for text in result.corpus_texts)


class TestContentFileGenerator:
    def test_deterministic_for_seed(self):
        a = [f.text for f in ContentFileGenerator(seed=7).generate_many(10)]
        b = [f.text for f in ContentFileGenerator(seed=7).generate_many(10)]
        assert a == b

    def test_compilable_flag_is_mostly_accurate(self):
        generator = ContentFileGenerator(seed=13)
        rejection = RejectionFilter()
        files = generator.generate_many(80)
        agreements = sum(1 for f in files if rejection.accepts(f.text) == f.compilable)
        assert agreements / len(files) > 0.85

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["add", "saxpy", "reduce", "matmul", "stencil2d", "histogram"]))
    def test_well_formed_archetypes_are_accepted(self, archetype):
        generated = ContentFileGenerator(seed=21).generate_archetype(archetype)
        assert RejectionFilter().accepts(generated.text)


class TestGitHubMiner:
    def test_mining_produces_content_files(self):
        result = GitHubMiner(seed=2).mine(20)
        assert len(result.repositories) == 20
        assert len(result.content_files) > 20
        assert result.total_lines > 0

    def test_header_inlining(self):
        headers = {"common.h": "#define N 32\n"}
        text = inline_headers('#include "common.h"\nint x = N;', headers)
        assert "#define N 32" in text

    def test_include_cycles_are_broken(self):
        headers = {"a.h": '#include "b.h"\nint a;', "b.h": '#include "a.h"\nint b;'}
        text = inline_headers('#include "a.h"', headers)
        assert "include cycle" in text


class TestCorpus:
    def test_mine_and_build(self, corpus):
        assert corpus.size > 10
        assert corpus.line_count > 50
        assert corpus.statistics.vocabulary_reduction > 0.5

    def test_training_text_and_split(self, corpus):
        text = corpus.training_text()
        assert "__kernel" in text
        train, test = corpus.split(train_fraction=0.8, seed=1)
        assert train.size + test.size == corpus.size

    def test_deduplication(self):
        corpus = Corpus.from_content_files(["__kernel void A(__global float* a) { a[0] = 1.0f; }"] * 5)
        assert corpus.size == 1
