"""Tests for the fault-injection layer (``repro.store.faults``) and the
crash-safe store I/O it exercises (ISSUE 6).

Two halves: the injection machinery itself (spec grammar, firing policy,
crash semantics) must be trustworthy before any chaos result means
anything, and the store's defenses (torn-write healing, transient-I/O
retry) must actually absorb what the faults throw at them.
"""

from __future__ import annotations

import pytest

from repro.store import faults
from repro.store.artifact_store import ArtifactStore, retry_io
from repro.store.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    parse_faults,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Every test starts unarmed and re-reads REPRO_FAULTS from scratch."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


class TestSpecGrammar:
    def test_name_and_match_attributes(self):
        (spec,) = parse_faults("crash_after_claim:shard=2")
        assert spec.name == "crash_after_claim"
        assert spec.attrs == {"shard": "2"}
        assert spec.times == 1  # fire-once by default
        assert spec.matches("crash_after_claim", {"shard": 2, "kind": "mine-shard"})
        assert not spec.matches("crash_after_claim", {"shard": 1})
        assert not spec.matches("crash_mid_shard", {"shard": 2})

    def test_bare_token_is_op_shorthand(self):
        (spec,) = parse_faults("io_error:put")
        assert spec.attrs == {"op": "put"}

    def test_probabilistic_spec_is_unlimited_unless_capped(self):
        (spec,) = parse_faults("io_error:put:p=0.3:seed=7")
        assert spec.p == 0.3
        assert spec.times == -1
        (capped,) = parse_faults("io_error:put:p=0.3:times=5")
        assert capped.times == 5

    def test_comma_separated_specs_parse_independently(self):
        specs = parse_faults("crash_mid_shard:shard=0, torn_write:kind=mine-shard")
        assert [spec.name for spec in specs] == ["crash_mid_shard", "torn_write"]

    def test_unknown_name_warns_and_is_dropped(self):
        with pytest.warns(RuntimeWarning, match="unknown fault 'crash_eventually'"):
            assert parse_faults("crash_eventually:shard=1") == []

    def test_malformed_param_warns_and_is_dropped(self):
        with pytest.warns(RuntimeWarning, match="malformed fault spec"):
            assert parse_faults("io_error:put:p=often") == []

    def test_bad_mode_warns_and_is_dropped(self):
        with pytest.warns(RuntimeWarning, match="mode"):
            assert parse_faults("crash_mid_shard:mode=explode") == []


class TestFiringPolicy:
    def test_one_shot_fires_exactly_once(self):
        plan = FaultPlan(parse_faults("torn_write:kind=mine-shard"))
        assert plan.fire("torn_write", kind="mine-shard") is True
        assert plan.fire("torn_write", kind="mine-shard") is False

    def test_times_arms_n_firings(self):
        plan = FaultPlan(parse_faults("torn_write:kind=mine-shard:times=3"))
        fired = sum(plan.fire("torn_write", kind="mine-shard") for _ in range(10))
        assert fired == 3

    def test_seeded_probability_is_reproducible(self):
        def outcomes():
            plan = FaultPlan(parse_faults("torn_write:p=0.5:seed=3"))
            return [plan.fire("torn_write") for _ in range(50)]

        first, second = outcomes(), outcomes()
        assert first == second
        assert 0 < sum(first) < 50  # actually probabilistic, not constant

    def test_fail_shard_raises_catchable_injected_fault(self):
        plan = FaultPlan(parse_faults("fail_shard:shard=1:p=1"))
        for _ in range(3):  # p=1: a poison shard fails every time
            with pytest.raises(InjectedFault, match="shard=1"):
                plan.fire("fail_shard", kind="mine-shard", shard=1)
        plan.fire("fail_shard", kind="mine-shard", shard=0)  # other shards fine

    def test_io_error_raises_oserror(self):
        plan = FaultPlan(parse_faults("io_error:put"))
        with pytest.raises(OSError, match="injected io_error"):
            plan.fire("io_error", op="put", kind="mine")

    def test_crash_mode_raise_is_a_base_exception(self):
        plan = FaultPlan(parse_faults("crash_mid_shard:shard=0:mode=raise"))
        with pytest.raises(InjectedCrash):
            try:
                plan.fire("crash_mid_shard", kind="mine-shard", shard=0)
            except Exception:  # noqa: BLE001 — the point under test
                pytest.fail("recovery code must not be able to catch a crash")

    def test_unarmed_points_are_noops(self):
        assert faults.fault_point("crash_mid_shard", shard=0) is False

    def test_env_plan_caches_until_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "torn_write:kind=mine")
        assert faults.fault_point("torn_write", kind="mine") is True
        assert faults.fault_point("torn_write", kind="mine") is False  # consumed
        faults.reset()
        assert faults.fault_point("torn_write", kind="mine") is True  # re-armed

    def test_hard_crash_exits_with_the_chaos_code(self):
        """The default crash mode is a real ``os._exit`` — verified in a
        child process, the way the chaos harness's workers experience it."""
        import subprocess
        import sys

        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.store.faults import FaultPlan, parse_faults;"
                "FaultPlan(parse_faults('crash_mid_shard')).fire("
                "'crash_mid_shard', kind='mine-shard', shard=0)",
            ],
            capture_output=True,
        )
        assert result.returncode == CRASH_EXIT_CODE


class TestRetryIO:
    def test_transient_errors_are_absorbed(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert retry_io(flaky, retries=5, base=0.0001) == "ok"
        assert len(calls) == 3

    def test_budget_exhaustion_reraises(self):
        def hopeless():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_io(hopeless, retries=2, base=0.0001)

    def test_not_found_is_never_retried(self):
        """A missing entry is a cache miss, not a transient fault — retrying
        it would turn every cold lookup into a backoff stall."""
        calls = []

        def missing():
            calls.append(1)
            raise FileNotFoundError("no such entry")

        with pytest.raises(FileNotFoundError):
            retry_io(missing, retries=5, base=0.0001)
        assert len(calls) == 1

    def test_injected_put_errors_are_absorbed_by_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "io_error:put:times=2")
        faults.reset()
        store = ArtifactStore(directory=tmp_path / "store")
        key = "ab" * 32
        store.put("mine", key, {"value": 1})
        # The entry landed on disk despite two injected write failures.
        assert ArtifactStore(directory=tmp_path / "store").get("mine", key) == {
            "value": 1
        }


class TestTornWriteHealing:
    def test_torn_entry_is_rejected_and_healed_by_recompute(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "torn_write:kind=mine")
        faults.reset()
        directory = tmp_path / "store"
        key = "cd" * 32
        torn_writer = ArtifactStore(directory=directory)
        torn_writer.put("mine", key, {"value": 2})
        # The write was torn: a fresh reader rejects the truncated pickle.
        reader = ArtifactStore(directory=directory)
        assert reader.get("mine", key) is None
        # The armed fault was one-shot, so the recompute path's overwrite
        # heals the entry — the store's corrupt-entry story, exercised end
        # to end under an actual torn byte stream.
        reader.put("mine", key, {"value": 2})
        assert ArtifactStore(directory=directory).get("mine", key) == {"value": 2}
