"""Tests for the pipeline stage graph (``repro.store.stages``).

The headline invariant (ISSUE 3 acceptance): with an on-disk store, a
second invocation of the pipeline reuses the mine/preprocess/train/sample
artifacts — the warm run records store hits instead of recomputing — and
its results are bit-identical to the cold run's.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)
from repro.model.checkpoint import model_from_dict, model_to_dict
from repro.store.artifact_store import ArtifactStore
from repro.store.stages import (
    PipelineConfig,
    PipelineRunner,
    STAGE_PHASES,
    corpus_fingerprint,
    mine_fingerprint,
    model_fingerprint,
    synthesis_fingerprint,
    synthetic_execution_fingerprint,
)


def canonical_bytes(value) -> bytes:
    """A byte form independent of in-memory object sharing.

    ``pickle.dumps`` encodes shared references, so a freshly computed graph
    and its store round-trip can differ in bytes while being value-identical.
    One loads/dumps round trip brings both to pickle's fixpoint sharing
    structure, after which byte equality means bit-identical values.
    """
    return pickle.dumps(pickle.loads(pickle.dumps(value)))


def tiny_config() -> PipelineConfig:
    return PipelineConfig(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=4,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=("NPB",),
    )


class TestFingerprintChaining:
    def test_upstream_changes_readdress_downstream(self):
        base = tiny_config()
        remined = PipelineConfig(**{**base.__dict__, "seed": 4, "payload_seed": 3})
        assert mine_fingerprint(base) != mine_fingerprint(remined)
        assert corpus_fingerprint(base) != corpus_fingerprint(remined)
        assert model_fingerprint(base) != model_fingerprint(remined)
        assert synthesis_fingerprint(base) != synthesis_fingerprint(remined)
        assert synthetic_execution_fingerprint(base) != synthetic_execution_fingerprint(
            remined
        )

    def test_downstream_changes_leave_upstream_addresses(self):
        base = tiny_config()
        hotter = PipelineConfig(**{**base.__dict__, "sampler_temperature": 0.9})
        assert model_fingerprint(base) == model_fingerprint(hotter)
        assert synthesis_fingerprint(base) != synthesis_fingerprint(hotter)

    def test_count_only_affects_sample_and_execute(self):
        base = tiny_config()
        more = base.with_count(9)
        assert model_fingerprint(base) == model_fingerprint(more)
        assert synthesis_fingerprint(base) != synthesis_fingerprint(more)


class TestWarmRunReusesArtifacts:
    def test_cold_then_warm_is_bit_identical(self, tmp_path):
        """The acceptance criterion: a second pipeline run against the same
        on-disk store serves every stage from the store (hit counts prove
        the stages were skipped) and produces bit-identical artifacts."""
        config = tiny_config()
        directory = tmp_path / "store"

        cold_runner = PipelineRunner(store=ArtifactStore(directory=directory))
        cold_synthesis = cold_runner.synthesis(config)
        cold_suites = cold_runner.suite_measurements(config)
        cold_measurements = cold_runner.synthetic_measurements(config)
        cold_counts = cold_runner.stage_counts()
        for stage in ("mine", "preprocess", "train", "sample", "execute"):
            assert cold_counts[stage]["miss"] >= 1, stage

        # A fresh runner over a fresh store instance: only the disk layer
        # persists, exactly like a new process pointed at the same
        # --cache-dir.
        warm_runner = PipelineRunner(store=ArtifactStore(directory=directory))
        warm_synthesis = warm_runner.synthesis(config)
        warm_suites = warm_runner.suite_measurements(config)
        warm_measurements = warm_runner.synthetic_measurements(config)

        warm_counts = warm_runner.stage_counts()
        assert warm_counts["sample"] == {"hit": 1, "miss": 0}
        assert warm_counts["execute"] == {"hit": 2, "miss": 0}
        # Downstream hits short-circuit the upstream chain entirely: the
        # warm run never even consulted the mine/preprocess/train stages.
        for stage in ("mine", "preprocess", "train"):
            assert stage not in warm_counts, stage

        assert [k.source for k in warm_synthesis.kernels] == [
            k.source for k in cold_synthesis.kernels
        ]
        assert warm_measurements == cold_measurements
        assert canonical_bytes(warm_synthesis) == canonical_bytes(cold_synthesis)
        assert canonical_bytes(warm_suites) == canonical_bytes(cold_suites)
        assert canonical_bytes(warm_measurements) == canonical_bytes(cold_measurements)

    def test_warm_run_recomputes_only_downstream_of_a_change(self, tmp_path):
        config = tiny_config()
        directory = tmp_path / "store"
        PipelineRunner(store=ArtifactStore(directory=directory)).synthesis(config)

        hotter = PipelineConfig(**{**config.__dict__, "sampler_temperature": 0.95})
        runner = PipelineRunner(store=ArtifactStore(directory=directory))
        runner.synthesis(hotter)
        counts = runner.stage_counts()
        # Sample recomputed (new temperature) from the stored train/preprocess
        # artifacts; mining never reran.
        assert counts["sample"] == {"hit": 0, "miss": 1}
        assert counts["train"]["hit"] == 1
        assert counts["train"]["miss"] == 0
        assert counts["preprocess"]["hit"] >= 1
        assert counts["preprocess"]["miss"] == 0
        assert "mine" not in counts

    def test_checkpoint_round_trip_samples_identically(self, tmp_path):
        """The train artifact is a checkpoint dict; a model rebuilt from it
        must drive the sample stage to the same kernels as the original."""
        config = tiny_config()
        runner = PipelineRunner(store=ArtifactStore(directory=tmp_path / "a"))
        synthesizer = runner.clgen(config)
        direct = synthesizer.generate_kernels(
            config.synthetic_kernel_count,
            seed=config.sample_seed,
            max_attempts_per_kernel=config.max_attempts_per_kernel,
        )

        restored = model_from_dict(model_to_dict(synthesizer.model))
        from repro.synthesis.generator import CLgen
        from repro.synthesis.sampler import SamplerConfig

        rebuilt = CLgen(
            model=restored,
            sampler_config=SamplerConfig(
                max_kernel_length=config.max_kernel_length,
                temperature=config.sampler_temperature,
                seed_kernel_name=config.seed_kernel_name,
            ),
            min_static_instructions=config.min_static_instructions,
        )
        resampled = rebuilt.generate_kernels(
            config.synthetic_kernel_count,
            seed=config.sample_seed,
            max_attempts_per_kernel=config.max_attempts_per_kernel,
        )
        assert [k.source for k in resampled.kernels] == [
            k.source for k in direct.kernels
        ]


class TestPhaseAccounting:
    def test_events_map_to_benchmark_phases(self, tmp_path):
        config = tiny_config()
        runner = PipelineRunner(store=ArtifactStore(directory=tmp_path / "store"))
        runner.suite_measurements(config)
        runner.synthetic_measurements(config)
        phases = runner.phase_seconds()
        assert set(phases) == {"preprocess", "train", "sample", "execute"}
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert set(STAGE_PHASES.values()) == {"preprocess", "train", "sample", "execute"}

    def test_marks_give_per_call_slices(self, tmp_path):
        config = tiny_config()
        runner = PipelineRunner(store=ArtifactStore(directory=tmp_path / "store"))
        runner.synthesis(config)
        mark = runner.mark()
        runner.synthetic_measurements(config)
        # The execute compute re-resolves its upstream sample artifact (a
        # store hit), so the slice holds one execute miss plus that hit.
        assert set(runner.phase_seconds(mark)) == {"sample", "execute"}
        assert runner.stage_counts(mark) == {
            "sample": {"hit": 1, "miss": 0},
            "execute": {"hit": 0, "miss": 1},
        }


class TestWarmPhaseDetection:
    """The rule guarding bench snapshots and the perf gate: a hit whose
    fingerprint was missed earlier in the slice is structural (same-session
    recompute); any other hit replaced real work and taints its phase."""

    def test_same_session_hits_are_structural(self):
        from repro.store.stages import StageEvent, warm_phases

        events = [
            StageEvent("preprocess", "a" * 8, False, 1.0),
            StageEvent("preprocess", "a" * 8, True, 0.0),
        ]
        assert warm_phases(events) == []

    def test_cross_session_hit_taints_even_a_partially_cold_phase(self):
        from repro.store.stages import StageEvent, warm_phases

        events = [
            StageEvent("execute", "suite-fp", True, 0.01),  # prior session
            StageEvent("execute", "synth-fp", False, 1.0),  # cold
        ]
        assert warm_phases(events) == ["execute"]

    def test_accepts_dict_records(self):
        from repro.store.stages import warm_phases

        records = [
            {"stage": "mine", "fingerprint": "m", "hit": True},
            {"stage": "sample", "fingerprint": "s", "hit": False},
        ]
        assert warm_phases(records) == ["preprocess"]


class TestExperimentHarnessIntegration:
    def test_experiment_helpers_reuse_the_store(self, tmp_path):
        """`build_clgen` + `synthesize_and_measure` + `measure_suites` (the
        `python -m repro experiments` underpinnings) served warm from the
        store a second time, bit-identically."""
        config = ExperimentConfig(
            executed_global_size=32,
            local_size=16,
            synthetic_kernel_count=4,
            corpus_repository_count=12,
            seed=3,
        )
        directory = tmp_path / "store"

        def run(runner: PipelineRunner):
            timings: dict[str, float] = {}
            data = measure_suites(config, suites=["NPB"], runner=runner, timings=timings)
            clgen = build_clgen(config, timings=timings, runner=runner)
            data = synthesize_and_measure(
                config, data, clgen=clgen, timings=timings, runner=runner
            )
            return data, timings

        cold_runner = PipelineRunner(store=ArtifactStore(directory=directory))
        cold_data, cold_timings = run(cold_runner)
        assert set(cold_timings) == {"preprocess", "train", "sample", "execute"}

        warm_runner = PipelineRunner(store=ArtifactStore(directory=directory))
        warm_data, _ = run(warm_runner)
        counts = warm_runner.stage_counts()
        assert counts["execute"] == {"hit": 2, "miss": 0}
        assert counts["sample"] == {"hit": 1, "miss": 0}
        assert counts["preprocess"]["miss"] == 0
        assert counts["train"]["miss"] == 0
        assert "mine" not in counts

        assert canonical_bytes(warm_data.synthesis) == canonical_bytes(cold_data.synthesis)
        assert warm_data.synthetic_measurements == cold_data.synthetic_measurements
        assert canonical_bytes(warm_data.suite_measurements) == canonical_bytes(
            cold_data.suite_measurements
        )

    def test_ad_hoc_synthesizer_bypasses_the_store(self, tmp_path, corpus):
        """A synthesizer whose model does not match the config keeps the
        legacy direct path (its inputs have no stage fingerprint)."""
        from repro.synthesis.generator import CLgen

        config = ExperimentConfig(
            executed_global_size=32,
            local_size=16,
            synthetic_kernel_count=3,
            corpus_repository_count=12,
            seed=3,
        )
        ad_hoc = CLgen.from_corpus(corpus, backend="ngram", ngram_order=6)
        runner = PipelineRunner(store=ArtifactStore(directory=tmp_path / "store"))
        data = measure_suites(config, suites=["NPB"], runner=runner)
        mark = runner.mark()
        data = synthesize_and_measure(config, data, clgen=ad_hoc, runner=runner)
        # No sample/execute stage events were recorded for the ad-hoc path.
        assert "sample" not in runner.stage_counts(mark)
        assert data.synthesis is not None
        assert data.corpus is corpus
