"""Unit tests for the lexer and preprocessor of the OpenCL C frontend."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.clc.lexer import TokenKind, tokenize
from repro.clc.preprocessor import Preprocessor, preprocess, strip_comments
from repro.errors import LexerError, PreprocessorError


class TestLexer:
    def test_tokenizes_identifiers_and_keywords(self):
        tokens = tokenize("__kernel void foo(int x)")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds[0] is TokenKind.KEYWORD
        assert tokens[2].text == "foo"
        assert tokens[-1].kind is TokenKind.EOF

    def test_integer_and_float_literals(self):
        tokens = tokenize("42 0x1F 3.14f 1e-3 2u 7UL 0.5")
        kinds = [t.kind for t in tokens if t.kind is not TokenKind.EOF]
        assert kinds == [
            TokenKind.INT_LITERAL,
            TokenKind.INT_LITERAL,
            TokenKind.FLOAT_LITERAL,
            TokenKind.FLOAT_LITERAL,
            TokenKind.INT_LITERAL,
            TokenKind.INT_LITERAL,
            TokenKind.FLOAT_LITERAL,
        ]

    def test_multi_character_punctuators_maximal_munch(self):
        tokens = tokenize("a <<= b >> c != d")
        texts = [t.text for t in tokens if t.kind is TokenKind.PUNCTUATOR]
        assert "<<=" in texts and ">>" in texts and "!=" in texts

    def test_comments_are_skipped(self):
        tokens = tokenize("a /* comment */ b // trailing\n c")
        names = [t.text for t in tokens if t.kind is TokenKind.IDENTIFIER]
        assert names == ["a", "b", "c"]

    def test_string_and_char_literals(self):
        tokens = tokenize('"hello \\" world" \'x\'')
        assert tokens[0].kind is TokenKind.STRING_LITERAL
        assert tokens[1].kind is TokenKind.CHAR_LITERAL

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                                          whitelist_characters="_ +-*/()[]{};,.<>=!&|^%~?:"),
                   max_size=200))
    def test_lexer_never_crashes_on_benign_text(self, text):
        tokens = tokenize(text)
        assert tokens[-1].kind is TokenKind.EOF


class TestStripComments:
    def test_preserves_newlines(self):
        source = "a /* x\ny */ b"
        stripped = strip_comments(source)
        assert stripped.count("\n") == source.count("\n")

    def test_does_not_strip_inside_strings(self):
        assert '"// not a comment"' in strip_comments('x = "// not a comment";')


class TestPreprocessor:
    def test_object_macro_expansion(self):
        result = preprocess("#define N 16\nint x = N;")
        assert "int x = 16;" in result.text

    def test_function_macro_expansion(self):
        result = preprocess("#define SQ(a) ((a) * (a))\nfloat y = SQ(x + 1);")
        assert "((x + 1) * (x + 1))" in result.text

    def test_nested_macro_expansion(self):
        result = preprocess("#define A 2\n#define B (A + 1)\nint v = B;")
        assert "((2) + 1)" in result.text.replace("( ", "(") or "(2 + 1)" in result.text

    def test_undef_removes_macro(self):
        result = preprocess("#define N 4\n#undef N\nint x = N;")
        assert "int x = N;" in result.text

    def test_ifdef_else_endif(self):
        source = "#define GPU 1\n#ifdef GPU\nint a;\n#else\nint b;\n#endif"
        result = preprocess(source)
        assert "int a;" in result.text and "int b;" not in result.text

    def test_ifndef(self):
        result = preprocess("#ifndef MISSING\nint ok;\n#endif")
        assert "int ok;" in result.text

    def test_if_with_defined_and_arithmetic(self):
        source = "#define V 3\n#if defined(V) && V > 2\nint yes;\n#endif"
        assert "int yes;" in preprocess(source).text

    def test_elif_branches(self):
        source = "#define MODE 2\n#if MODE == 1\nint a;\n#elif MODE == 2\nint b;\n#else\nint c;\n#endif"
        result = preprocess(source)
        assert "int b;" in result.text
        assert "int a;" not in result.text and "int c;" not in result.text

    def test_include_resolution_and_tracking(self):
        headers = {"defs.h": "#define WIDTH 128\n"}
        result = preprocess('#include "defs.h"\nint w = WIDTH;', include_resolver=headers.get)
        assert "int w = 128;" in result.text
        assert "defs.h" in result.included_headers

    def test_unresolved_include_is_recorded_not_fatal(self):
        result = preprocess('#include "missing.h"\nint x;')
        assert result.unresolved_headers == ["missing.h"]
        assert "int x;" in result.text

    def test_error_directive_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#error unsupported platform")

    def test_pragma_is_ignored(self):
        result = preprocess("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint x;")
        assert "int x;" in result.text
        assert "#pragma" not in result.text

    def test_unterminated_conditional_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef X\nint a;")

    def test_line_continuation_in_macro(self):
        source = "#define LONG(a) \\\n ((a) + 1)\nint x = LONG(2);"
        assert "((2) + 1)" in preprocess(source).text

    def test_predefined_macros(self):
        pre = Preprocessor(predefined={"WG_SIZE": "64"})
        assert "int x = 64;" in pre.preprocess("int x = WG_SIZE;").text

    def test_variadic_macro(self):
        source = "#define CALL(f, ...) f(__VA_ARGS__)\nCALL(foo, 1, 2);"
        assert "foo(1, 2);" in preprocess(source).text
