"""Integration tests: the experiment harness reproduces the paper's shapes."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    average_benchmarks_per_paper,
    coverage_of_top_suites,
    figure2_series,
    measure_suites,
    most_popular_suites,
    run_corpus_stats,
    run_figure3,
    run_figure7,
    run_figure9,
    run_table1,
    run_turing_test,
    synthesize_and_measure,
)
from repro.experiments.figure8 import run_figure8
from repro.suites import suite_summary


@pytest.fixture(scope="module")
def config():
    cfg = ExperimentConfig.quick()
    cfg.synthetic_kernel_count = 25
    return cfg


@pytest.fixture(scope="module")
def shared_data(config, clgen):
    data = measure_suites(config)
    return synthesize_and_measure(config, data, clgen=clgen)


class TestFigure2Survey:
    def test_headline_average(self):
        assert 15 <= average_benchmarks_per_paper() <= 19  # paper: 17

    def test_top_seven_suites_cover_most_results(self):
        assert coverage_of_top_suites(7) >= 0.85  # paper: 92%

    def test_evaluated_suites_are_the_most_popular(self):
        top = set(most_popular_suites(7))
        assert {"Rodinia", "NVIDIA SDK", "AMD SDK", "Parboil", "NAS", "Polybench", "SHOC"} == top

    def test_series_is_ordered_like_the_figure(self):
        series = figure2_series()
        assert series["Rodinia"] == max(series.values())
        assert series["GPGPUsim"] <= 1.0


class TestCorpusStats:
    def test_section_4_1_shape(self, config):
        stats = run_corpus_stats(config)
        assert stats.content_files > 50
        # The shim recovers part of the discard rate (paper: 40% -> 32%).
        assert stats.discard_rate_with_shim < stats.discard_rate_without_shim
        assert 0.15 <= stats.discard_rate_with_shim <= 0.5
        # Identifier rewriting reduces the vocabulary dramatically (paper: 84%).
        assert stats.vocabulary_reduction > 0.6
        assert stats.corpus_kernels > 20


class TestTable1:
    def test_cross_suite_generalisation_is_lossy(self, config, shared_data):
        result = run_table1(config, shared_data)
        # Off-diagonal entries are below perfect oracle performance on average.
        averages = [result.column_average(s) for s in result.suites]
        assert all(average < 0.999 for average in averages)
        best_suite, best_value = result.best_training_suite()
        worst = result.worst_cell()
        assert worst[2] < best_value
        assert len(result.rows()) == len(result.suites) + 1


class TestFigure3:
    def test_adding_neighbours_corrects_outliers(self, config, shared_data):
        result = run_figure3(config, shared_data)
        assert result.before and result.after
        assert result.accuracy_after >= result.accuracy_before
        assert any(point.additional for point in result.after)


class TestFigure7:
    def test_synthetic_benchmarks_help_on_at_least_one_platform(self, config, shared_data):
        result = run_figure7(config, shared_data)
        assert set(result.platforms) == {"AMD", "NVIDIA"}
        amd = result.platforms["AMD"]
        assert amd.static_device == "cpu"
        assert result.platforms["NVIDIA"].static_device == "gpu"
        assert amd.baseline_speedups and amd.with_clgen_speedups
        # Shape: the added synthetic training data should not hurt overall,
        # and should help on at least one platform (paper: helps on both).
        improvements = [panel.improvement for panel in result.platforms.values()]
        assert max(improvements) >= 1.0

    def test_speedups_are_positive(self, config, shared_data):
        result = run_figure7(config, shared_data)
        for panel in result.platforms.values():
            assert all(value > 0 for value in panel.baseline_speedups.values())


class TestFigure8:
    def test_extended_model_runs_on_all_suites(self, config, shared_data):
        result = run_figure8(config, shared_data)
        for platform, panel in result.platforms.items():
            assert panel.speedups_by_benchmark, platform
            assert panel.average_speedup > 0
            # The extended model should at least roughly track the oracle as
            # well as the original (paper: far better).
            assert panel.extended_vs_oracle > 0


class TestFigure9:
    def test_clgen_covers_feature_space_better_than_clsmith(self, config, clgen):
        result = run_figure9(config, clgen=clgen, kernel_count=30)
        assert result.fraction("CLgen") > result.fraction("CLSmith")
        assert result.series["GitHub"].match_counts[-1] > 0
        assert result.benchmark_feature_count > 10


class TestTuringTest:
    def test_clsmith_is_detectable_and_clgen_is_not(self, config, clgen):
        result = run_turing_test(config, clgen=clgen, judges=10, kernels_per_judge=10)
        # Control group detects machine code far above chance (paper: 96%).
        assert result.control.mean_score > 0.65
        # CLgen sits near chance (paper: 52%).
        assert abs(result.clgen.mean_score - 0.5) < 0.2
        assert result.control.mean_score > result.clgen.mean_score
        # CLgen errors go both ways (paper: "the ratio of errors was even").
        assert result.clgen.false_negatives > 0


class TestTable3Inventory:
    def test_inventory_matches_registry(self):
        rows = suite_summary()
        assert rows[-1]["suite"] == "Total"
        assert rows[0]["suite"] == "NPB" and rows[0]["benchmarks"] == 7
