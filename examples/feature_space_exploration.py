#!/usr/bin/env python3
"""Exploring the feature space: CLgen vs CLSmith vs GitHub (Figure 9, Listing 2).

Shows the second contribution of the paper: because CLgen can generate an
unbounded number of human-like kernels, it exposes *feature collisions* —
programs with identical feature vectors but different optimal mappings —
which indicate that a feature set is not discriminative enough (the paper's
Listing 2 example, fixed by adding a branch-count feature).

Run:  python examples/feature_space_exploration.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines import generate_clsmith_kernels
from repro.driver import DriverConfig, HostDriver
from repro.experiments import ExperimentConfig, build_clgen, run_figure9
from repro.features import extract_static_features


def main() -> None:
    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = 60
    clgen = build_clgen(config)

    print("== Figure 9: who covers the benchmark feature space? ==")
    figure9 = run_figure9(config, clgen=clgen, kernel_count=60)
    for label, series in figure9.series.items():
        print(f"  {label:8s}: {series.match_counts[-1]:3d} of {series.kernel_counts[-1]:3d} kernels "
              f"share static features with a benchmark ({series.final_match_fraction:.0%})")
    print("  (CLSmith almost never lands near real programs; CLgen does, and is unbounded)\n")

    print("== Feature collisions (the Listing 2 effect) ==")
    driver = HostDriver(config=DriverConfig(executed_global_size=64, local_size=32))
    kernels = clgen.generate_kernels(60, seed=4).kernels
    by_signature = defaultdict(list)
    for index, kernel in enumerate(kernels):
        features = extract_static_features(kernel.source)
        measurement = driver.measure_source(kernel.source, name=f"clgen.{index}",
                                            dataset_scale=128.0)
        if features is None or measurement is None:
            continue
        # The original Grewe features ignore branches: group by the Table 2a tuple.
        by_signature[features.as_tuple()].append((kernel, features, measurement.oracle("AMD")))

    collisions = 0
    for signature, group in by_signature.items():
        mappings = {oracle for _, _, oracle in group}
        branch_counts = {features.branches for _, features, _ in group}
        if len(group) > 1 and len(mappings) > 1:
            collisions += 1
            if collisions <= 2:
                print(f"  signature comp/mem/localmem/coalesced = {signature}: "
                      f"{len(group)} kernels, optimal mappings {sorted(mappings)}, "
                      f"branch counts {sorted(branch_counts)}")
    if collisions:
        print(f"  {collisions} colliding feature signatures found -> the Table 2a features are "
              "not discriminative enough; adding the branch feature separates them (section 8.2)")
    else:
        print("  no collisions at this sample size; increase synthetic_kernel_count to find them")

    print("\n== What CLSmith code looks like (why judges detect it instantly) ==")
    print(generate_clsmith_kernels(1, seed=0)[0][:400] + "...")


if __name__ == "__main__":
    main()
