#!/usr/bin/env python3
"""Predictive modeling with synthetic benchmarks (the paper's headline use case).

Reproduces a small version of Figure 7: train the Grewe et al. CPU/GPU
mapping model on the benchmark suites with leave-one-benchmark-out
cross-validation over NPB, then add CLgen-synthesized benchmarks to the
training set and compare speedups over the best static device mapping.

Run:  python examples/predictive_modeling.py
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    build_clgen,
    measure_suites,
    run_figure7,
    synthesize_and_measure,
)


def main() -> None:
    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = 40

    print("measuring the seven benchmark suites on the simulated platforms...")
    data = measure_suites(config)
    print(f"  {sum(len(v) for v in data.suite_measurements.values())} (benchmark, dataset) "
          "observations collected")

    print("training CLgen and synthesizing additional benchmarks...")
    data = synthesize_and_measure(config, data, clgen=build_clgen(config))
    print(f"  {len(data.synthetic_measurements)} synthetic training observations added")

    print("\nrunning leave-one-benchmark-out cross-validation over NPB...")
    result = run_figure7(config, data)
    for platform, panel in result.platforms.items():
        print(f"\n{platform} platform (speedup over {panel.static_device}-only):")
        print(f"  Grewe et al. model:            {panel.baseline_average:.2f}x")
        print(f"  ... with CLgen benchmarks:     {panel.with_clgen_average:.2f}x")
        print(f"  observations improved:         {panel.fraction_improved:.0%}")
    print(f"\noverall improvement from synthetic benchmarks: "
          f"{result.overall_improvement:.2f}x  (paper: 1.27x)")


if __name__ == "__main__":
    main()
