#!/usr/bin/env python3
"""Quickstart: mine a corpus, train CLgen, synthesize benchmarks, run them.

This walks the full pipeline of the paper's Figure 4 at a small scale:

1. mine OpenCL content files from the (simulated) GitHub population,
2. preprocess them into a language corpus (shim → rejection filter → rewriter),
3. train a character-level language model,
4. sample new kernels with Algorithm 1 and filter them,
5. execute one synthesized kernel with the host driver and print where it
   should run (CPU or GPU) on each platform of Table 4.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.corpus import Corpus
from repro.driver import DriverConfig, HostDriver
from repro.synthesis import CLgen, SamplerConfig


def main() -> None:
    print("== 1. Mining the OpenCL corpus (simulated GitHub) ==")
    corpus = Corpus.mine_and_build(repository_count=60, seed=0)
    stats = corpus.statistics
    print(f"content files: {stats.content_files}  discard rate: {stats.discard_rate:.0%}  "
          f"corpus kernels: {corpus.size}")
    print(f"identifier rewriting shrank the vocabulary by {stats.vocabulary_reduction:.0%}\n")

    print("== 2-3. Training the language model ==")
    clgen = CLgen.from_corpus(corpus, backend="ngram", ngram_order=12,
                              sampler_config=SamplerConfig(temperature=0.6))
    print("trained an n-gram backend (swap backend='lstm' for the numpy LSTM)\n")

    print("== 4. Synthesizing benchmarks ==")
    result = clgen.generate_kernels(5, seed=1)
    print(f"accepted {result.statistics.generated} kernels from "
          f"{result.statistics.attempts} samples "
          f"({result.statistics.acceptance_rate:.0%} acceptance)\n")
    for kernel in result.kernels[:2]:
        print(kernel.source)

    print("== 5. Executing a synthesized benchmark ==")
    driver = HostDriver(config=DriverConfig(executed_global_size=128, local_size=32))
    measurement = driver.measure_source(result.kernels[0].source, name="clgen.0",
                                        dataset_scale=256.0)
    if measurement is None:
        print("the first kernel could not be executed; try another seed")
        return
    for platform in ("AMD", "NVIDIA"):
        times = measurement.runtimes[platform]
        print(f"{platform:7s} cpu={times['cpu'] * 1e3:7.3f} ms  gpu={times['gpu'] * 1e3:7.3f} ms  "
              f"-> run on the {measurement.oracle(platform).upper()}")


if __name__ == "__main__":
    main()
