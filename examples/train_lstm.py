#!/usr/bin/env python3
"""Training the numpy LSTM backend (the paper's §4.2 architecture at laptop scale).

The paper trains a 3-layer, 2048-wide LSTM for 50 epochs (three weeks on a
GTX Titan).  This example trains the same architecture family at a size that
finishes in about a minute on a CPU, reports the loss trajectory, samples a
few characters, and saves/loads a checkpoint.

Run:  python examples/train_lstm.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro.corpus import Corpus
from repro.model import LSTMConfig, LSTMLanguageModel, load_model, save_model


def main() -> None:
    corpus = Corpus.mine_and_build(repository_count=40, seed=2)
    text = corpus.training_text()
    print(f"corpus: {corpus.size} kernels, {len(text)} characters")

    paper = LSTMConfig.paper_configuration()
    print(f"paper configuration: {paper.num_layers} layers x {paper.hidden_size} units, "
          f"SGD lr={paper.learning_rate} halved every {paper.lr_decay_interval} epochs "
          "(~17M parameters, 3 weeks on a GTX Titan)")

    config = LSTMConfig(hidden_size=64, num_layers=1, sequence_length=48, batch_size=8,
                        epochs=6, optimizer="sgd", learning_rate=0.002, seed=0)
    model = LSTMLanguageModel(config)
    print(f"training a laptop-scale model on {min(len(text), 20000)} characters...")
    summary = model.fit(text[:20000])
    print(f"parameters: {summary.parameters}")
    print("loss per epoch: " + ", ".join(f"{loss:.3f}" for loss in summary.losses))

    sampler = model.make_sampler("__kernel void A(__global float* a")
    sample = "".join(sampler.sample(random.Random(0), temperature=0.8) for _ in range(80))
    print(f"\nsampled continuation:\n__kernel void A(__global float* a{sample}")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_model(model, Path(tmp) / "lstm.json.gz")
        restored = load_model(path)
        print(f"\ncheckpoint round-trip OK ({path.stat().st_size / 1024:.0f} KiB); "
              f"vocabulary size {restored.vocabulary.size}")


if __name__ == "__main__":
    main()
