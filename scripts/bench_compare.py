#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` perf snapshots and guard against regressions.

Usage::

    python scripts/bench_compare.py BENCH_PR1.json BENCH_PR2.json
    python scripts/bench_compare.py old.json new.json --threshold 0.10
    python scripts/bench_compare.py old.json new.json --phase execute --min-speedup 3.0

Prints a per-phase table (old seconds, new seconds, speedup) and exits
non-zero when any phase of *new* regresses more than ``--threshold``
(fractional slowdown, default 10%) relative to *old*, or when
``--min-speedup`` for ``--phase`` is not met.  Intended for CI and for
future PRs comparing their snapshot against the previous PR's artifact.

Snapshots are compared at matching ``scale`` by default; pass
``--allow-scale-mismatch`` to compare across scales anyway.

Snapshots record the ``synthesis`` artifact schema version they were
measured under (``sample_schema``; absent = the original sequential-chain
sampling, version 1).  When the two snapshots disagree, the ``sample``
phase measured *different work* — a sampling-semantics bump re-baselines
every kernel — so its comparison is printed and FLAGGED but never fails
the run; the other phases still gate normally.

``--allow-regression PHASE`` (repeatable) likewise demotes a *known,
deliberate* cost shift to a FLAG: PR 10 moves per-accepted-candidate
frontend + analysis work from the execute phase into sample-time seeding,
so ``sample`` slows while ``execute`` and the total improve.  The flag
still prints the slowdown loudly — it acknowledges the shift, it does not
hide it — and every unlisted phase gates normally.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_snapshot(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read snapshot {path!r}: {error}")
    if "phases_seconds" not in data:
        raise SystemExit(f"error: {path!r} is not a BENCH snapshot (no phases_seconds)")
    return data


def sample_schema_of(snapshot: dict) -> int:
    """The synthesis schema a snapshot's sample phase was measured under
    (snapshots predating the field are the sequential chain, version 1)."""
    return snapshot.get("sample_schema", 1)


def compare(
    old: dict, new: dict, threshold: float, allowed: set[str] | None = None
) -> tuple[list[str], list[str], list[str]]:
    """Per-phase comparison lines, regression messages, and flag messages.

    Flags are regressions demoted to informational because the two
    snapshots measured different work for that phase (a sample-schema
    bump) or because the caller declared the phase's slowdown a known
    deliberate cost shift (*allowed*): they print loudly but do not fail
    the comparison.
    """
    allowed = allowed or set()
    old_phases = old["phases_seconds"]
    new_phases = new["phases_seconds"]
    cross_bump = sample_schema_of(old) != sample_schema_of(new)
    lines = [f"{'phase':<12}{'old s':>10}{'new s':>10}{'speedup':>10}"]
    regressions: list[str] = []
    flags: list[str] = []
    if cross_bump:
        flags.append(
            f"sample phase re-baselined: snapshots span a synthesis schema "
            f"bump (v{sample_schema_of(old)} -> v{sample_schema_of(new)}), "
            "so its seconds measure different kernels; comparison is "
            "informational, not gated"
        )
    for phase in sorted(set(old_phases) | set(new_phases)):
        old_seconds = old_phases.get(phase)
        new_seconds = new_phases.get(phase)
        if old_seconds is None or new_seconds is None:
            lines.append(f"{phase:<12}{old_seconds or '-':>10}{new_seconds or '-':>10}{'n/a':>10}")
            continue
        speedup = old_seconds / max(new_seconds, 1e-9)
        lines.append(f"{phase:<12}{old_seconds:>10.3f}{new_seconds:>10.3f}{speedup:>9.2f}x")
        if new_seconds > old_seconds * (1.0 + threshold):
            slowdown = new_seconds / max(old_seconds, 1e-9) - 1.0
            message = (
                f"phase {phase!r} regressed {slowdown:.1%} "
                f"({old_seconds:.3f}s -> {new_seconds:.3f}s, threshold {threshold:.0%})"
            )
            if phase == "sample" and cross_bump:
                flags.append(message + " [cross-schema-bump: flagged, not failed]")
            elif phase in allowed:
                flags.append(message + " [--allow-regression: flagged, not failed]")
            else:
                regressions.append(message)
    old_total = old.get("total_seconds", sum(old_phases.values()))
    new_total = new.get("total_seconds", sum(new_phases.values()))
    lines.append(
        f"{'total':<12}{old_total:>10.3f}{new_total:>10.3f}"
        f"{old_total / max(new_total, 1e-9):>9.2f}x"
    )
    return lines, regressions, flags


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json snapshot")
    parser.add_argument("new", help="candidate BENCH_*.json snapshot")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="max tolerated fractional slowdown per phase (default 0.10)",
    )
    parser.add_argument(
        "--phase", default=None,
        help="phase to check --min-speedup against (e.g. execute)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="require old/new >= this ratio for --phase",
    )
    parser.add_argument(
        "--allow-scale-mismatch", action="store_true",
        help="compare snapshots measured at different REPRO_BENCH_SCALEs",
    )
    parser.add_argument(
        "--allow-regression", action="append", default=[], metavar="PHASE",
        help="demote a known deliberate cost shift in PHASE to a FLAG "
        "(repeatable); the slowdown still prints, it just does not fail",
    )
    args = parser.parse_args(argv)

    old = load_snapshot(args.old)
    new = load_snapshot(args.new)
    if not args.allow_scale_mismatch and old.get("scale") != new.get("scale"):
        print(
            f"error: scale mismatch ({old.get('scale')!r} vs {new.get('scale')!r}); "
            "pass --allow-scale-mismatch to compare anyway",
            file=sys.stderr,
        )
        return 2

    lines, regressions, flags = compare(
        old, new, args.threshold, set(args.allow_regression)
    )
    print(f"{args.old} -> {args.new}")
    print("\n".join(lines))

    failed = False
    for flag in flags:
        print(f"FLAG: {flag}", file=sys.stderr)
    for regression in regressions:
        print(f"REGRESSION: {regression}", file=sys.stderr)
        failed = True
    if args.min_speedup is not None:
        phase = args.phase or "execute"
        old_seconds = old["phases_seconds"].get(phase)
        new_seconds = new["phases_seconds"].get(phase)
        if old_seconds is None or new_seconds is None:
            print(f"error: phase {phase!r} missing from a snapshot", file=sys.stderr)
            failed = True
        else:
            speedup = old_seconds / max(new_seconds, 1e-9)
            if speedup < args.min_speedup:
                print(
                    f"SPEEDUP SHORTFALL: phase {phase!r} is {speedup:.2f}x, "
                    f"required {args.min_speedup:.2f}x",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(f"phase {phase!r} speedup {speedup:.2f}x >= {args.min_speedup:.2f}x")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
