#!/usr/bin/env bash
# CI entry point: the tier-1 sweep, then (opt-in) the chaos soak.
#
#   scripts/ci_check.sh            # tier-1 only: the merge gate
#   CHAOS=1 scripts/ci_check.sh    # + the -m chaos soak, including the
#                                  #   supervisor/service rounds
#
# Tier-1 is every default-selected test under tests/ — the chaos soak and
# the perf gate stay opt-in because they spawn real worker fleets and
# timed runs, which are too heavy (and too jitter-prone) for the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

if [[ "${CHAOS:-0}" != "0" ]]; then
    echo "== chaos soak (-m chaos): fault menu + supervised service rounds =="
    python -m pytest tests/test_chaos.py -m chaos -x -q
fi

echo "ci_check: OK"
