#!/usr/bin/env bash
# CI entry point: the tier-1 sweep, then (opt-in) the chaos soak and the
# perf gate.
#
#   scripts/ci_check.sh            # tier-1 only: the merge gate
#   CHAOS=1 scripts/ci_check.sh    # + the -m chaos soak, including the
#                                  #   supervisor/service rounds
#   LINT=1 scripts/ci_check.sh     # + the static-analyzer soundness leg:
#                                  #   lints every suite kernel and
#                                  #   cross-checks static vs dynamic
#   PERFGATE=1 scripts/ci_check.sh # + the -m perfgate timed run against
#                                  #   the committed BENCH snapshot
#
# Tier-1 is every default-selected test under tests/ — the chaos soak and
# the perf gate stay opt-in because they spawn real worker fleets and
# timed runs, which are too heavy (and too jitter-prone) for the gate.
# The REPRO_SPECIALIZE=0 leg always runs: it re-executes the differential
# and specialization suites with analyzer-guided fast paths disabled, so a
# regression in the generic tier can't hide behind the specialized one.
# The perf gate needs a quiet machine and a cold store; it restores the
# snapshot the bench session writes so an opt-in gate run never dirties
# the committed BENCH artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

if [[ "${CHAOS:-0}" != "0" ]]; then
    echo "== chaos soak (-m chaos): fault menu + supervised service rounds =="
    python -m pytest tests/test_chaos.py -m chaos -x -q
fi

if [[ "${LINT:-0}" != "0" ]]; then
    echo "== lint: suite verdicts + static-vs-dynamic soundness cross-check =="
    python -m repro lint
    # The soundness gate: a "safe" verdict for a kernel that dynamically
    # bails is a hard failure (exit 1); precision misses only print.
    python -m repro lint --soundness
fi

echo "== specialize opt-out: REPRO_SPECIALIZE=0 must reproduce generic behaviour =="
REPRO_SPECIALIZE=0 python -m pytest tests/test_specialization.py tests/test_execution_compiler.py -x -q

if [[ "${PERFGATE:-0}" != "0" ]]; then
    echo "== perf gate (-m perfgate): phase timings vs committed BENCH =="
    python -m pytest benchmarks -m perfgate -x -q
    # The bench session rewrites the default snapshot with this run's
    # timings; the gate already compared against the committed bytes
    # (git show HEAD:...), so put the committed artifact back.
    git checkout -- BENCH_PR10.json 2>/dev/null || true
fi

echo "ci_check: OK"
