#!/usr/bin/env python
"""Profile (or just time) the synthesize-and-measure pipeline.

Runs the four pipeline phases — preprocess (corpus build), train, sample
(kernel synthesis), execute (driver measurement of suites + synthetic
kernels) — with per-phase wall-clock timing, optionally under cProfile.

Usage::

    PYTHONPATH=src python scripts/profile_pipeline.py                 # time phases
    PYTHONPATH=src python scripts/profile_pipeline.py --profile p.out # + cProfile
    PYTHONPATH=src python scripts/profile_pipeline.py --json out.json # + snapshot
    PYTHONPATH=src python scripts/profile_pipeline.py --warm          # + warm re-run
    PYTHONPATH=src python scripts/profile_pipeline.py \
        --cache-dir /tmp/store --warm                                 # on-disk store
    PYTHONPATH=src python scripts/profile_pipeline.py \
        --shards 4 --workers 4                                        # sharded + pooled

When the checkout provides the stage graph (``repro.store``), the pipeline
runs through it and the report includes per-stage cache hit/miss results;
``--warm`` re-runs the whole pipeline against the now-populated store to
show what a repeat invocation costs per stage.  On older checkouts (no
``repro.store``) the script falls back to the direct pipeline API with the
same phase semantics, so it can still be pointed at them
(``PYTHONPATH=<old>/src``) for before/after comparisons.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time

PHASES = ("preprocess", "train", "sample", "execute")


def run_pipeline_legacy(
    kernel_count: int, repository_count: int, timings: dict[str, float]
) -> dict:
    """The pre-stage-graph path: direct calls into the stable pipeline API,
    bypassing the artifact store entirely so its timings are always cold."""
    from repro.corpus.corpus import Corpus
    from repro.experiments.common import ExperimentConfig, make_driver, measure_benchmark
    from repro.synthesis.generator import CLgen
    from repro.synthesis.sampler import SamplerConfig

    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = kernel_count
    config.corpus_repository_count = repository_count

    started = time.perf_counter()
    corpus = Corpus.mine_and_build(
        repository_count=config.corpus_repository_count, seed=config.seed
    )
    timings["preprocess"] = time.perf_counter() - started

    started = time.perf_counter()
    clgen = CLgen.from_corpus(
        corpus,
        backend="ngram",
        ngram_order=config.ngram_order,
        sampler_config=SamplerConfig(temperature=config.sampler_temperature),
    )
    timings["train"] = time.perf_counter() - started

    started = time.perf_counter()
    synthesis = clgen.generate_kernels(
        config.synthetic_kernel_count, seed=config.seed, max_attempts_per_kernel=40
    )
    timings["sample"] = time.perf_counter() - started

    started = time.perf_counter()
    try:
        from repro.suites.registry import all_suites
    except ImportError:  # pragma: no cover - very old checkouts
        all_suites = lambda: []  # noqa: E731
    driver = make_driver(config)
    suite_measurements = 0
    for suite in all_suites():
        for benchmark in suite.benchmarks:
            suite_measurements += len(measure_benchmark(driver, benchmark))
    scales = [4.0, 16.0, 64.0, 256.0, 1024.0]
    measured = 0
    for index, kernel in enumerate(synthesis.kernels):
        measurement = driver.measure_source(
            kernel.source, name=f"clgen.{index}", dataset_scale=scales[index % len(scales)]
        )
        if measurement is not None:
            measured += 1
    timings["execute"] = time.perf_counter() - started

    return {
        "corpus_kernels": corpus.size,
        "synthesized": len(synthesis.kernels),
        "synthetic_measured": measured,
        "suite_measurements": suite_measurements,
    }


def run_pipeline_staged(
    kernel_count: int,
    repository_count: int,
    timings: dict[str, float],
    cache_dir: str | None,
    stage_report: list[dict] | None = None,
    shards: int | None = None,
    workers: int | None = None,
    steal: bool = False,
    sample_batch: int | None = None,
):
    """Run through the stage graph; returns None when unavailable (old tree)."""
    try:
        from repro.store import PipelineConfig, PipelineRunner
    except ImportError:
        return None
    from repro.experiments.common import ExperimentConfig

    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = kernel_count
    config.corpus_repository_count = repository_count
    stage_config = PipelineConfig.from_experiment(config)
    if sample_batch is not None:
        try:
            from dataclasses import replace

            stage_config = replace(stage_config, sample_batch=sample_batch)
        except TypeError:  # older stage graph without the wavefront knob
            print(
                "warning: this checkout's stage graph has no sample_batch "
                "knob; --sample-batch ignored",
                file=sys.stderr,
            )

    try:
        # Same precedence semantics as the repro CLI: explicit flags beat
        # the REPRO_SHARDS/REPRO_WORKERS/REPRO_STEAL environment, and
        # workers imply shards only when no shard count was given anywhere.
        from repro.store.shards import resolve_plan

        runner = PipelineRunner(
            cache_dir=cache_dir,
            plan=resolve_plan(shards, workers, steal=(True if steal else None)),
        )
    except (ImportError, TypeError):  # older stage graph without a shard plan
        if shards is not None or workers is not None or steal:
            print(
                "warning: this checkout's stage graph has no shard plan; "
                "--shards/--workers/--steal ignored, timings are unsharded",
                file=sys.stderr,
            )
        runner = PipelineRunner(cache_dir=cache_dir)
    if getattr(runner, "stealing", False):
        # Publish the plan so concurrently launched `repro worker --store
        # DIR` processes can join this very run and drain its queue.
        from repro.store.queue import publish_plan

        if not runner.plan.sharded:
            print(
                "warning: --steal without --shards publishes a single-shard "
                "plan — joining workers can only claim whole stages; pass "
                "--shards N for shard-level work sharing",
                file=sys.stderr,
            )
        key = publish_plan(runner.store, stage_config, runner.plan.shards)
        print(
            f"plan {key[:12]} published; join with: repro worker --store "
            f"{runner.store.directory}",
            file=sys.stderr,
        )
    corpus = runner.corpus(stage_config)
    runner.trained_model(stage_config)
    synthesis = runner.synthesis(stage_config)
    suites = runner.suite_measurements(stage_config)
    measurements = runner.synthetic_measurements(stage_config)

    timings.update(runner.phase_seconds())
    for phase in PHASES:
        timings.setdefault(phase, 0.0)
    if stage_report is not None:
        for event in runner.events:
            stage_report.append(
                {
                    "stage": event.stage,
                    "hit": event.hit,
                    "seconds": round(event.seconds, 3),
                    "fingerprint": event.fingerprint,
                }
            )
    return {
        "corpus_kernels": corpus.size,
        "synthesized": len(synthesis.kernels),
        "synthetic_measured": len(measurements),
        "suite_measurements": sum(len(m) for m in suites.suite_measurements.values()),
    }


def _clear_execution_caches() -> None:
    """Drop the process-wide compile/execute caches between repeats."""
    from repro.execution.cache import _SOURCE_CACHE, GLOBAL_COMPILATION_CACHE

    GLOBAL_COMPILATION_CACHE.clear()
    _SOURCE_CACHE.clear()


#: Artifact kinds produced by the execute phase — a repeat run must not
#: inherit these from a previous repeat's store.
_EXECUTE_KINDS = frozenset({
    "suite-measurements",
    "synthetic-measurements",
    "suite-measurements-shard",
    "synthetic-measurements-shard",
    "lint-verdicts",
})


def run_execute_repeats(
    kernel_count: int,
    repository_count: int,
    repeats: int,
    sample_batch: int | None = None,
) -> list[float] | None:
    """``--phase execute --repeat N``: time the execute phase N times.

    The upstream phases (preprocess, train, sample) run once into an
    in-memory store; every repeat then resolves the execute stages against
    a fresh store seeded with only the upstream artifacts, with the
    process-wide compilation caches cleared first — so each sample is one
    cold, isolated execute phase over identical inputs.  Returns ``None``
    when the stage graph is unavailable (old checkouts).
    """
    try:
        from repro.store import PipelineConfig, PipelineRunner
        from repro.store.artifact_store import ArtifactStore
    except ImportError:
        return None
    from repro.experiments.common import ExperimentConfig

    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = kernel_count
    config.corpus_repository_count = repository_count
    stage_config = PipelineConfig.from_experiment(config)
    if sample_batch is not None:
        from dataclasses import replace

        stage_config = replace(stage_config, sample_batch=sample_batch)

    upstream_store = ArtifactStore(memory_entries=256)
    upstream = PipelineRunner(store=upstream_store)
    upstream.corpus(stage_config)
    upstream.trained_model(stage_config)
    upstream.synthesis(stage_config)
    # Serialized upstream artifacts to seed each repeat's fresh store with
    # (the store keeps its memory layer as (kind, key) -> pickled bytes).
    seed_entries = {
        token: blob
        for token, blob in upstream_store._memory.items()
        if token[0] not in _EXECUTE_KINDS
    }

    samples: list[float] = []
    for repeat in range(repeats):
        _clear_execution_caches()
        store = ArtifactStore(memory_entries=256)
        store._memory.update(seed_entries)
        runner = PipelineRunner(store=store)
        runner.suite_measurements(stage_config)
        runner.synthetic_measurements(stage_config)
        seconds = runner.phase_seconds().get("execute", 0.0)
        samples.append(seconds)
        print(f"execute repeat {repeat + 1}/{repeats}: {seconds:8.3f} s", file=sys.stderr)
    return samples


def run_pipeline(
    kernel_count: int,
    repository_count: int,
    timings: dict[str, float],
    cache_dir: str | None = None,
    legacy: bool = False,
    stage_report: list[dict] | None = None,
    shards: int | None = None,
    workers: int | None = None,
    steal: bool = False,
    sample_batch: int | None = None,
) -> dict:
    if not legacy:
        counts = run_pipeline_staged(
            kernel_count, repository_count, timings, cache_dir, stage_report,
            shards=shards, workers=workers, steal=steal,
            sample_batch=sample_batch,
        )
        if counts is not None:
            return counts
    return run_pipeline_legacy(kernel_count, repository_count, timings)


def _warm_phases(stage_report: list[dict]) -> list[str]:
    """Phases tainted by cross-session store warmth (see
    ``repro.store.stages.warm_phases``): they time store lookups, not
    pipeline work, so they must not masquerade as a cold BENCH snapshot."""
    try:
        from repro.store import warm_phases
    except ImportError:
        return []
    return warm_phases(stage_report)


def _print_stage_report(label: str, stage_report: list[dict]) -> None:
    print(f"{label}: {'stage':<12}{'result':>8}{'seconds':>10}")
    for entry in stage_report:
        result = "hit" if entry["hit"] else "miss"
        print(f"{'':<{len(label) + 2}}{entry['stage']:<12}{result:>8}{entry['seconds']:>10.3f}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", type=int, default=50,
                        help="synthetic kernels to generate (default: 50, the quick scale)")
    parser.add_argument("--repositories", type=int, default=30,
                        help="synthetic GitHub repositories to mine (default: 30)")
    parser.add_argument("--profile", metavar="PATH",
                        help="run under cProfile and write stats to PATH")
    parser.add_argument("--top", type=int, default=25,
                        help="with --profile, print the top N cumulative entries")
    parser.add_argument("--json", metavar="PATH",
                        help="write a BENCH-style JSON snapshot to PATH")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="on-disk artifact store (default: $REPRO_STORE_DIR or in-memory)")
    parser.add_argument("--warm", action="store_true",
                        help="after the timed run, re-run the pipeline against the "
                             "populated store and report per-stage warm timings")
    parser.add_argument("--shards", type=int, default=None,
                        help="split shardable stages into N per-range artifacts "
                             "(results bit-identical; default: $REPRO_SHARDS, else unsharded)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for ready shards; implies --shards M "
                             "when --shards is not given (default: $REPRO_WORKERS, "
                             "else in-process)")
    parser.add_argument("--steal", action="store_true",
                        help="resolve through the work-stealing claim queue (needs "
                             "--cache-dir) and publish the plan so concurrent "
                             "`repro worker --store DIR` processes can join this run")
    parser.add_argument("--sample-batch", type=int, default=None, metavar="WIDTH",
                        help="wavefront width for the sample stage (default: "
                             "$REPRO_SAMPLE_BATCH, else 64; every width is "
                             "byte-identical, so this only changes speed)")
    parser.add_argument("--legacy", action="store_true",
                        help="force the pre-stage-graph direct pipeline API")
    parser.add_argument("--phase", choices=("execute",), default=None,
                        help="with --repeat, the single phase to time repeatedly "
                             "(only 'execute' is supported)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="time the phase named by --phase N times (upstream "
                             "phases run once; each repeat is cold and isolated) "
                             "and report mean/min/stdev")
    args = parser.parse_args(argv)
    if (args.repeat is None) != (args.phase is None):
        parser.error("--phase and --repeat must be given together")
    if args.repeat is not None:
        if args.repeat < 1:
            parser.error("--repeat must be at least 1")
        incompatible = (args.profile or args.json or args.warm or args.legacy
                        or args.cache_dir or args.shards is not None
                        or args.workers is not None or args.steal)
        if incompatible:
            parser.error("--phase/--repeat runs in-memory and unsharded; it "
                         "cannot combine with --profile/--json/--warm/--legacy/"
                         "--cache-dir/--shards/--workers/--steal")
        samples = run_execute_repeats(
            args.kernels, args.repositories, args.repeat,
            sample_batch=args.sample_batch,
        )
        if samples is None:
            print("--phase/--repeat needs the stage graph", file=sys.stderr)
            return 1
        import statistics

        mean = statistics.fmean(samples)
        stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
        print(f"execute: mean {mean:.3f} s  min {min(samples):.3f} s  "
              f"stdev {stdev:.3f} s  ({len(samples)} repeats)")
        return 0
    if args.warm and args.legacy:
        parser.error("--warm needs the stage graph; it cannot combine with --legacy")
    if args.legacy and (args.shards is not None or args.workers is not None or args.steal):
        parser.error("--shards/--workers/--steal need the stage graph; "
                     "they cannot combine with --legacy")
    if args.legacy and args.sample_batch is not None:
        parser.error("--sample-batch needs the stage graph; "
                     "it cannot combine with --legacy")
    if args.steal and not args.cache_dir and not os.environ.get("REPRO_STORE_DIR"):
        parser.error("--steal needs an on-disk store; pass --cache-dir "
                     "(or set REPRO_STORE_DIR)")

    timings: dict[str, float] = {}
    cold_stages: list[dict] = []
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        counts = run_pipeline(args.kernels, args.repositories, timings,
                              cache_dir=args.cache_dir, legacy=args.legacy,
                              stage_report=cold_stages,
                              shards=args.shards, workers=args.workers,
                              steal=args.steal, sample_batch=args.sample_batch)
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(args.top)
        print(f"profile written to {args.profile}")
    else:
        counts = run_pipeline(args.kernels, args.repositories, timings,
                              cache_dir=args.cache_dir, legacy=args.legacy,
                              stage_report=cold_stages,
                              shards=args.shards, workers=args.workers,
                              steal=args.steal, sample_batch=args.sample_batch)

    warm_timings: dict[str, float] = {}
    warm_stages: list[dict] = []
    if args.warm and not cold_stages:
        # The legacy path (or an old checkout's fallback) never consults the
        # store; a "warm" rerun would just repeat the cold pipeline.
        print("warm pass skipped: no stage graph on this path", file=sys.stderr)
    elif args.warm:
        run_pipeline(args.kernels, args.repositories, warm_timings,
                     cache_dir=args.cache_dir, legacy=args.legacy,
                     stage_report=warm_stages,
                     shards=args.shards, workers=args.workers,
                     steal=args.steal, sample_batch=args.sample_batch)

    total = sum(timings.values())
    if warm_timings:
        warm_total = sum(warm_timings.values())
        print("phase        cold s    warm s")
        for phase in PHASES:
            print(f"{phase:10s} {timings.get(phase, 0.0):8.3f}  {warm_timings.get(phase, 0.0):8.3f}")
        print(f"{'total':10s} {total:8.3f}  {warm_total:8.3f}")
    else:
        print("phase      seconds")
        for phase in PHASES:
            print(f"{phase:10s} {timings.get(phase, 0.0):8.3f}")
        print(f"{'total':10s} {total:8.3f}")
    if cold_stages:
        _print_stage_report("cold", cold_stages)
    if warm_stages:
        _print_stage_report("warm", warm_stages)
    print(", ".join(f"{key}={value}" for key, value in counts.items()))

    if args.json:
        warm = _warm_phases(cold_stages)
        if warm:
            print(
                f"snapshot NOT written: phases {', '.join(warm)} were served "
                "from the artifact store (warm); re-run with a cold store "
                "(clear it or unset REPRO_STORE_DIR), or use --legacy",
                file=sys.stderr,
            )
            return 1
        snapshot = {
            "scale": "quick",
            "phases_seconds": {k: round(v, 3) for k, v in timings.items()},
            "total_seconds": round(total, 3),
            "counts": counts,
            "unix_time": int(time.time()),
        }
        try:
            from repro.store.fingerprint import SCHEMA_VERSIONS

            # The synthesis schema version rides along so bench_compare can
            # flag (rather than fail) sample comparisons across a sampling
            # semantics bump, where every kernel legitimately changed.
            snapshot["sample_schema"] = SCHEMA_VERSIONS.get("synthesis", 1)
        except ImportError:  # pre-stage-graph checkout
            pass
        if cold_stages:
            snapshot["stages"] = cold_stages
        if warm_timings:
            snapshot["warm_phases_seconds"] = {
                k: round(v, 3) for k, v in warm_timings.items()
            }
            snapshot["warm_total_seconds"] = round(sum(warm_timings.values()), 3)
            snapshot["warm_stages"] = warm_stages
        with open(args.json, "w") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        print(f"snapshot written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
