#!/usr/bin/env python
"""Profile (or just time) the synthesize-and-measure pipeline.

Runs the four pipeline phases — preprocess (corpus build), train, sample
(kernel synthesis), execute (driver measurement of suites + synthetic
kernels) — with per-phase wall-clock timing, optionally under cProfile.

Usage::

    PYTHONPATH=src python scripts/profile_pipeline.py                 # time phases
    PYTHONPATH=src python scripts/profile_pipeline.py --profile p.out # + cProfile
    PYTHONPATH=src python scripts/profile_pipeline.py --json out.json # + snapshot

The script deliberately sticks to the stable pipeline API (it drives the
same phases as ``benchmarks/conftest.py``) so it can be pointed at older
checkouts for before/after comparisons.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time


def run_pipeline(kernel_count: int, repository_count: int, timings: dict[str, float]) -> dict:
    from repro.corpus.corpus import Corpus
    from repro.experiments.common import ExperimentConfig, make_driver, measure_suites
    from repro.synthesis.generator import CLgen
    from repro.synthesis.sampler import SamplerConfig

    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = kernel_count
    config.corpus_repository_count = repository_count

    started = time.perf_counter()
    corpus = Corpus.mine_and_build(
        repository_count=config.corpus_repository_count, seed=config.seed
    )
    timings["preprocess"] = time.perf_counter() - started

    started = time.perf_counter()
    clgen = CLgen.from_corpus(
        corpus,
        backend="ngram",
        ngram_order=config.ngram_order,
        sampler_config=SamplerConfig(temperature=config.sampler_temperature),
    )
    timings["train"] = time.perf_counter() - started

    started = time.perf_counter()
    synthesis = clgen.generate_kernels(
        config.synthetic_kernel_count, seed=config.seed, max_attempts_per_kernel=40
    )
    timings["sample"] = time.perf_counter() - started

    started = time.perf_counter()
    data = measure_suites(config)
    driver = make_driver(config)
    scales = [4.0, 16.0, 64.0, 256.0, 1024.0]
    measured = 0
    for index, kernel in enumerate(synthesis.kernels):
        measurement = driver.measure_source(
            kernel.source, name=f"clgen.{index}", dataset_scale=scales[index % len(scales)]
        )
        if measurement is not None:
            measured += 1
    timings["execute"] = time.perf_counter() - started

    return {
        "corpus_kernels": corpus.size,
        "synthesized": len(synthesis.kernels),
        "synthetic_measured": measured,
        "suite_measurements": len(data.all_suite_measurements),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", type=int, default=50,
                        help="synthetic kernels to generate (default: 50, the quick scale)")
    parser.add_argument("--repositories", type=int, default=30,
                        help="synthetic GitHub repositories to mine (default: 30)")
    parser.add_argument("--profile", metavar="PATH",
                        help="run under cProfile and write stats to PATH")
    parser.add_argument("--top", type=int, default=25,
                        help="with --profile, print the top N cumulative entries")
    parser.add_argument("--json", metavar="PATH",
                        help="write a BENCH-style JSON snapshot to PATH")
    args = parser.parse_args(argv)

    timings: dict[str, float] = {}
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        counts = run_pipeline(args.kernels, args.repositories, timings)
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(args.top)
        print(f"profile written to {args.profile}")
    else:
        counts = run_pipeline(args.kernels, args.repositories, timings)

    total = sum(timings.values())
    print("phase      seconds")
    for phase in ("preprocess", "train", "sample", "execute"):
        print(f"{phase:10s} {timings.get(phase, 0.0):8.3f}")
    print(f"{'total':10s} {total:8.3f}")
    print(", ".join(f"{key}={value}" for key, value in counts.items()))

    if args.json:
        snapshot = {
            "scale": "quick",
            "phases_seconds": {k: round(v, 3) for k, v in timings.items()},
            "total_seconds": round(total, 3),
            "counts": counts,
            "unix_time": int(time.time()),
        }
        with open(args.json, "w") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        print(f"snapshot written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
