#!/usr/bin/env python
"""Chaos soak for the work-stealing queue: kill, corrupt and starve real
``repro worker`` processes and assert the surviving fleet's output is
byte-identical to an unsharded run.

Usage::

    PYTHONPATH=src python scripts/chaos_drain.py --rounds 6
    PYTHONPATH=src python scripts/chaos_drain.py --rounds 12 --workers 3
    PYTHONPATH=src python scripts/chaos_drain.py --rounds 1 --fault poison_shard

Each round publishes the same tiny pipeline plan into a fresh store and
launches ``--workers`` worker subprocesses; one of them is armed with a
``REPRO_FAULTS`` spec drawn from a menu cycling over every protocol edge
(crash after claim, crash mid-shard, crash before the merge lands, torn
store write, transient put errors).  Crashed workers die with exit code 70
(``faults.CRASH_EXIT_CODE``) — a *hard* ``os._exit``, no cleanup — and a
final clean worker then drains whatever the casualties left behind.

Pass criteria per round:

* fault rounds — the merged whole-pipeline artifacts are byte-identical to
  the unsharded reference, no claim files remain, the clean finisher exits
  zero;
* the ``poison_shard`` round (a shard deterministically fails on every
  worker) — the plan is quarantined after exactly ``REPRO_QUEUE_MAX_ATTEMPTS``
  attempts, the failure artifact names the shard, and workers exit
  non-zero.

Any violation prints a diagnosis and the script exits 1.  Documented in
ROADMAP.md's benchmark protocol; the ``-m chaos`` pytest marker runs a
short version of this soak.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.store.artifact_store import ArtifactStore  # noqa: E402
from repro.store.faults import CRASH_EXIT_CODE  # noqa: E402
from repro.store.queue import default_max_attempts, publish_plan  # noqa: E402
from repro.store.stages import PipelineConfig, PipelineRunner  # noqa: E402

SHARDS = 3

#: The merged, user-visible artifact kinds a drained plan must contain —
#: shard-level entries are implementation detail (a torn shard entry is
#: healed lazily by the next reader, so only merged output is the bar).
WHOLE_KINDS = (
    "mine",
    "corpus",
    "model",
    "synthesis",
    "suite-measurements",
    "synthetic-measurements",
)

#: (menu name, REPRO_FAULTS spec, expect_quarantine, arm_all_workers).
#: ``{seed}`` is filled with the round number so probabilistic rounds
#: differ while staying reproducible.
FAULT_MENU = [
    ("crash_after_claim", "crash_after_claim:shard=1", False, False),
    ("crash_mid_shard", "crash_mid_shard:shard=0", False, False),
    # Armed on every worker so the crash fires no matter who wins the merge
    # claim; the clean finisher then steals the held claim back and re-merges.
    ("crash_pre_merge", "crash_pre_merge:kind=synthesis", False, True),
    ("torn_write", "torn_write:kind=synthesis-shard", False, False),
    ("io_error_put", "io_error:put:p=0.3:seed={seed}", False, False),
    ("poison_shard", "fail_shard:shard=1:p=1", True, True),
]


def tiny_config() -> PipelineConfig:
    return PipelineConfig(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=5,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=("NPB",),
    )


def build_reference(directory: Path) -> None:
    """Resolve the config unsharded and fault-free: the byte ground truth."""
    runner = PipelineRunner(store=ArtifactStore(directory=directory))
    cfg = tiny_config()
    runner.content_files(cfg)
    runner.synthesis(cfg)
    runner.suite_measurements(cfg)
    runner.synthetic_measurements(cfg)


def launch_worker(store: Path, lease: float, faults: str | None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_STORE_DIR", None)
    if faults is None:
        env.pop("REPRO_FAULTS", None)
    else:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--store",
            str(store),
            "--lease",
            str(lease),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def compare_stores(reference: Path, candidate: Path) -> list[str]:
    problems = []
    for kind in WHOLE_KINDS:
        entries = sorted((reference / kind).glob("*/*.pkl"))
        if not entries:
            problems.append(f"reference store is missing {kind} entries")
            continue
        for entry in entries:
            twin = candidate / kind / entry.parent.name / entry.name
            if not twin.exists():
                problems.append(f"{kind}: drained run missed key {entry.name}")
            elif entry.read_bytes() != twin.read_bytes():
                problems.append(f"{kind}: entry {entry.name} differs from reference")
    return problems


def run_round(
    number: int,
    menu_entry: tuple[str, str, bool, bool],
    reference: Path,
    scratch: Path,
    workers: int,
    lease: float,
    timeout: float,
) -> list[str]:
    """One chaos round; returns a list of violations (empty = pass)."""
    name, template, expect_quarantine, arm_all = menu_entry
    faults = template.format(seed=number)
    directory = scratch / f"round-{number:03d}-{name}" / "store"
    store = ArtifactStore(directory=directory)
    publish_plan(store, tiny_config(), SHARDS)
    print(f"round {number} [{name}]: faults={faults!r} workers={workers}")

    fleet = [
        launch_worker(directory, lease, faults if (index == 0 or arm_all) else None)
        for index in range(workers)
    ]
    crashed = 0
    for index, worker in enumerate(fleet):
        try:
            stdout, stderr = worker.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.communicate()
            return [f"worker {index} livelocked past {timeout:.0f}s (fault {name})"]
        if worker.returncode == CRASH_EXIT_CODE:
            crashed += 1
            print(f"  worker {index} died as scripted (exit {CRASH_EXIT_CODE})")
        elif worker.returncode not in (0, 1):
            return [
                f"worker {index} exited {worker.returncode} unexpectedly:\n{stderr}"
            ]

    # A clean finisher drains whatever the casualties left held; its claims
    # on dead workers' shards go through the lease-expiry steal-back path.
    finisher = launch_worker(directory, lease, None)
    try:
        stdout, stderr = finisher.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        finisher.kill()
        finisher.communicate()
        return [f"clean finisher livelocked past {timeout:.0f}s (fault {name})"]

    problems: list[str] = []
    failures = sorted(directory.glob("queue/failures/*.json"))
    if expect_quarantine:
        budget = default_max_attempts()
        if finisher.returncode == 0:
            problems.append("poison round: clean finisher exited 0, expected non-zero")
        if "quarantined" not in stderr:
            problems.append("poison round: finisher stderr never mentioned quarantine")
        if not failures:
            problems.append("poison round: no failure artifact under queue/failures/")
        for path in failures:
            import json

            record = json.loads(path.read_text())
            attempts = record.get("attempts", [])
            if len(attempts) != budget:
                problems.append(
                    f"poison round: {path.name} has {len(attempts)} attempts, "
                    f"expected exactly {budget}"
                )
        print(f"  quarantined as expected ({len(failures)} failure artifact(s))")
        return problems

    if finisher.returncode != 0:
        problems.append(
            f"clean finisher exited {finisher.returncode} (fault {name}):\n{stderr}"
        )
    if failures:
        problems.append(
            f"fault {name} unexpectedly quarantined: {[p.name for p in failures]}"
        )
    leftover = sorted(directory.glob("queue/claims/*.claim"))
    if leftover:
        problems.append(f"claims left after drain: {[p.name for p in leftover]}")
    problems.extend(compare_stores(reference, directory))
    if not problems:
        print(f"  byte-identical to reference ({crashed} scripted crash(es))")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=len(FAULT_MENU),
        help="chaos rounds to run; the fault menu cycles (default: one full cycle)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes per round, one of them armed (default: 2)",
    )
    parser.add_argument(
        "--lease", type=float, default=2.0,
        help="claim lease seconds — short, so steal-back is exercised (default: 2)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-worker drain timeout; exceeding it is a livelock verdict",
    )
    parser.add_argument(
        "--fault", choices=[name for name, *_ in FAULT_MENU], default=None,
        help="pin every round to this one fault instead of cycling the menu",
    )
    parser.add_argument(
        "--scratch", type=str, default=None, metavar="DIR",
        help="working directory for the round stores (default: a tmpdir, removed)",
    )
    args = parser.parse_args(argv)

    owned_scratch = args.scratch is None
    scratch = Path(args.scratch or tempfile.mkdtemp(prefix="repro-chaos-"))
    scratch.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    try:
        reference = scratch / "reference" / "store"
        print(f"building unsharded reference in {reference} ...")
        build_reference(reference)

        menu = (
            [entry for entry in FAULT_MENU if entry[0] == args.fault]
            if args.fault
            else FAULT_MENU
        )
        violations: list[str] = []
        for number in range(args.rounds):
            entry = menu[number % len(menu)]
            violations.extend(
                run_round(
                    number, entry, reference, scratch,
                    args.workers, args.lease, args.timeout,
                )
            )
        elapsed = time.monotonic() - started
        if violations:
            print(f"\nCHAOS FAILED in {elapsed:.1f}s — {len(violations)} violation(s):")
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print(f"\nchaos clean: {args.rounds} round(s) in {elapsed:.1f}s")
        return 0
    finally:
        if owned_scratch:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
