#!/usr/bin/env python
"""Chaos soak for the work-stealing queue: kill, corrupt and starve real
``repro worker`` processes and assert the surviving fleet's output is
byte-identical to an unsharded run.

Usage::

    PYTHONPATH=src python scripts/chaos_drain.py --rounds 6
    PYTHONPATH=src python scripts/chaos_drain.py --rounds 12 --workers 3
    PYTHONPATH=src python scripts/chaos_drain.py --rounds 1 --fault poison_shard

Each round publishes the same tiny pipeline plan into a fresh store and
launches ``--workers`` worker subprocesses; one of them is armed with a
``REPRO_FAULTS`` spec drawn from a menu cycling over every protocol edge
(crash after claim, crash mid-shard, crash before the merge lands, torn
store write, transient put errors).  Crashed workers die with exit code 70
(``faults.CRASH_EXIT_CODE``) — a *hard* ``os._exit``, no cleanup — and a
final clean worker then drains whatever the casualties left behind.

Pass criteria per round:

* fault rounds — the merged whole-pipeline artifacts are byte-identical to
  the unsharded reference, no claim files remain, the clean finisher exits
  zero;
* the ``poison_shard`` round (a shard deterministically fails on every
  worker) — the plan is quarantined after exactly ``REPRO_QUEUE_MAX_ATTEMPTS``
  attempts, the failure artifact names the shard, and workers exit
  non-zero.

``--supervisor-rounds N`` adds service-layer rounds on top: a ``repro
fleet`` supervisor plus a ``repro serve`` front door run the same tiny
plan end-to-end while the harness SIGKILLs a random worker *and the
supervisor itself* mid-drain (``fleet_kill``: the orphaned workers keep
draining, a relaunched supervisor reconverges the fleet to full strength,
and the served result is byte-identical to the unsharded reference), or
arms a deterministic poison shard on every worker (``fleet_poison``: the
served request must surface a structured quarantine error naming the
poison shard well within its deadline — never a hang or livelock).

Any violation prints a diagnosis and the script exits 1.  Documented in
ROADMAP.md's benchmark protocol; the ``-m chaos`` pytest marker runs a
short version of this soak.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.store.artifact_store import ArtifactStore  # noqa: E402
from repro.store.faults import CRASH_EXIT_CODE  # noqa: E402
from repro.store.queue import default_max_attempts, publish_plan  # noqa: E402
from repro.store.stages import PipelineConfig, PipelineRunner  # noqa: E402

SHARDS = 3

#: The merged, user-visible artifact kinds a drained plan must contain —
#: shard-level entries are implementation detail (a torn shard entry is
#: healed lazily by the next reader, so only merged output is the bar).
WHOLE_KINDS = (
    "mine",
    "corpus",
    "model",
    "synthesis",
    "suite-measurements",
    "synthetic-measurements",
)

#: (menu name, REPRO_FAULTS spec, expect_quarantine, arm_all_workers).
#: ``{seed}`` is filled with the round number so probabilistic rounds
#: differ while staying reproducible.
FAULT_MENU = [
    ("crash_after_claim", "crash_after_claim:shard=1", False, False),
    ("crash_mid_shard", "crash_mid_shard:shard=0", False, False),
    # Armed on every worker so the crash fires no matter who wins the merge
    # claim; the clean finisher then steals the held claim back and re-merges.
    ("crash_pre_merge", "crash_pre_merge:kind=synthesis", False, True),
    ("torn_write", "torn_write:kind=synthesis-shard", False, False),
    ("io_error_put", "io_error:put:p=0.3:seed={seed}", False, False),
    ("poison_shard", "fail_shard:shard=1:p=1", True, True),
]


def tiny_config() -> PipelineConfig:
    return PipelineConfig(
        repository_count=12,
        seed=3,
        synthetic_kernel_count=5,
        executed_global_size=32,
        local_size=16,
        payload_seed=3,
        suites=("NPB",),
    )


def build_reference(directory: Path) -> None:
    """Resolve the config unsharded and fault-free: the byte ground truth."""
    runner = PipelineRunner(store=ArtifactStore(directory=directory))
    cfg = tiny_config()
    runner.content_files(cfg)
    runner.synthesis(cfg)
    runner.suite_measurements(cfg)
    runner.synthetic_measurements(cfg)


def _subprocess_env(faults: str | None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_STORE_DIR", None)
    if faults is None:
        env.pop("REPRO_FAULTS", None)
    else:
        env["REPRO_FAULTS"] = faults
    return env


def launch_worker(store: Path, lease: float, faults: str | None) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--store",
            str(store),
            "--lease",
            str(lease),
        ],
        env=_subprocess_env(faults),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def compare_stores(reference: Path, candidate: Path) -> list[str]:
    problems = []
    for kind in WHOLE_KINDS:
        entries = sorted((reference / kind).glob("*/*.pkl"))
        if not entries:
            problems.append(f"reference store is missing {kind} entries")
            continue
        for entry in entries:
            twin = candidate / kind / entry.parent.name / entry.name
            if not twin.exists():
                problems.append(f"{kind}: drained run missed key {entry.name}")
            elif entry.read_bytes() != twin.read_bytes():
                problems.append(f"{kind}: entry {entry.name} differs from reference")
    return problems


def run_round(
    number: int,
    menu_entry: tuple[str, str, bool, bool],
    reference: Path,
    scratch: Path,
    workers: int,
    lease: float,
    timeout: float,
) -> list[str]:
    """One chaos round; returns a list of violations (empty = pass)."""
    name, template, expect_quarantine, arm_all = menu_entry
    faults = template.format(seed=number)
    directory = scratch / f"round-{number:03d}-{name}" / "store"
    store = ArtifactStore(directory=directory)
    publish_plan(store, tiny_config(), SHARDS)
    print(f"round {number} [{name}]: faults={faults!r} workers={workers}")

    fleet = [
        launch_worker(directory, lease, faults if (index == 0 or arm_all) else None)
        for index in range(workers)
    ]
    crashed = 0
    for index, worker in enumerate(fleet):
        try:
            stdout, stderr = worker.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.communicate()
            return [f"worker {index} livelocked past {timeout:.0f}s (fault {name})"]
        if worker.returncode == CRASH_EXIT_CODE:
            crashed += 1
            print(f"  worker {index} died as scripted (exit {CRASH_EXIT_CODE})")
        elif worker.returncode not in (0, 1):
            return [
                f"worker {index} exited {worker.returncode} unexpectedly:\n{stderr}"
            ]

    # A clean finisher drains whatever the casualties left held; its claims
    # on dead workers' shards go through the lease-expiry steal-back path.
    finisher = launch_worker(directory, lease, None)
    try:
        stdout, stderr = finisher.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        finisher.kill()
        finisher.communicate()
        return [f"clean finisher livelocked past {timeout:.0f}s (fault {name})"]

    problems: list[str] = []
    failures = sorted(directory.glob("queue/failures/*.json"))
    if expect_quarantine:
        budget = default_max_attempts()
        if finisher.returncode == 0:
            problems.append("poison round: clean finisher exited 0, expected non-zero")
        if "quarantined" not in stderr:
            problems.append("poison round: finisher stderr never mentioned quarantine")
        if not failures:
            problems.append("poison round: no failure artifact under queue/failures/")
        for path in failures:
            import json

            record = json.loads(path.read_text())
            attempts = record.get("attempts", [])
            if len(attempts) != budget:
                problems.append(
                    f"poison round: {path.name} has {len(attempts)} attempts, "
                    f"expected exactly {budget}"
                )
        print(f"  quarantined as expected ({len(failures)} failure artifact(s))")
        return problems

    if finisher.returncode != 0:
        problems.append(
            f"clean finisher exited {finisher.returncode} (fault {name}):\n{stderr}"
        )
    if failures:
        problems.append(
            f"fault {name} unexpectedly quarantined: {[p.name for p in failures]}"
        )
    leftover = sorted(directory.glob("queue/claims/*.claim"))
    if leftover:
        problems.append(f"claims left after drain: {[p.name for p in leftover]}")
    problems.extend(compare_stores(reference, directory))
    if not problems:
        print(f"  byte-identical to reference ({crashed} scripted crash(es))")
    return problems


# ---------------------------------------------------------------------------
# Supervisor rounds: the standing service (fleet + serve) under chaos.
# ---------------------------------------------------------------------------

#: Names cycled by ``--supervisor-rounds``.
SUPERVISOR_MENU = ("fleet_kill", "fleet_poison")


def launch_supervisor(
    store: Path, size: int, lease: float, faults: str | None = None
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "run",
            "--store",
            str(store),
            "--size",
            str(size),
            "--lease",
            str(lease),
            "--poll",
            "1",
        ],
        env=_subprocess_env(faults),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def launch_serve(store: Path) -> tuple[subprocess.Popen, str]:
    """Start a front door on an ephemeral port; returns (process, base URL)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store)],
        env=_subprocess_env(None),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = process.stdout.readline().strip()
    # First stdout line: "serving http://host:port store=..."
    url = line.split()[1] if line.startswith("serving ") else ""
    return process, url


def http_json(
    url: str, payload: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict]:
    """GET (or POST *payload* as JSON); returns (status, decoded body).

    Error statuses (4xx/5xx) are returned, not raised — the poison round's
    whole point is asserting the *shape* of a 502.
    """
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.load(error)
        except (json.JSONDecodeError, ValueError):
            return error.code, {}


def read_fleet_status(store: Path) -> dict:
    try:
        return json.loads((store / "fleet" / "status.json").read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        return {}


def wait_fleet_running(
    store: Path, size: int, supervisor_pid: int, timeout: float
) -> list[int] | None:
    """Worker pids once *supervisor_pid*'s fleet reports *size* running
    slots, or ``None`` on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = read_fleet_status(store)
        if (
            status.get("supervisor", {}).get("pid") == supervisor_pid
            and status.get("running") == size
        ):
            pids = [worker.get("pid") for worker in status.get("workers", ())]
            if all(isinstance(pid, int) for pid in pids):
                return pids
        time.sleep(0.2)
    return None


def _terminate(process: subprocess.Popen | None, timeout: float = 30.0) -> int | None:
    if process is None:
        return None
    if process.poll() is None:
        try:
            process.terminate()
        except OSError:
            pass
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    return process.returncode


def _reap_orphans(pids: list[int], timeout: float = 30.0) -> None:
    """SIGTERM (then SIGKILL) workers whose supervisor died under them."""
    for pid in pids:
        try:
            os.kill(pid, signal.SIGTERM)
        except (OSError, ProcessLookupError):
            pass
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(_alive(pid) for pid in pids):
            return
        time.sleep(0.2)
    for pid in pids:
        if _alive(pid):
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass
    return True


def run_fleet_kill_round(
    number: int, reference: Path, scratch: Path, lease: float, timeout: float
) -> list[str]:
    """SIGKILL a random worker and then the supervisor mid-drain; assert a
    relaunched supervisor reconverges the fleet and the served plan still
    completes byte-identical to the unsharded reference."""
    directory = scratch / f"round-sup-{number:03d}-fleet_kill" / "store"
    directory.mkdir(parents=True, exist_ok=True)
    size = 3
    print(f"supervisor round {number} [fleet_kill]: size={size}")
    serve = supervisor = relaunched = None
    orphans: list[int] = []
    try:
        serve, url = launch_serve(directory)
        if not url:
            return ["fleet_kill: serve never printed its address"]
        supervisor = launch_supervisor(directory, size, lease)
        status_code, admitted = http_json(
            url + "/plans",
            {"config": _tiny_config_json(), "shards": SHARDS, "priority": 5},
        )
        if status_code != 202:
            return [f"fleet_kill: POST /plans answered {status_code}: {admitted}"]
        key = admitted["plan"]
        pids = wait_fleet_running(directory, size, supervisor.pid, timeout=60.0)
        if pids is None:
            return ["fleet_kill: fleet never reached full strength before the kill"]
        victim = random.Random(number).choice(pids)
        try:
            os.kill(victim, signal.SIGKILL)
            print(f"  SIGKILLed worker pid {victim}")
        except (OSError, ProcessLookupError):
            print(f"  worker pid {victim} already gone")
        time.sleep(0.5)
        supervisor.kill()
        supervisor.wait()
        print(f"  SIGKILLed supervisor pid {supervisor.pid}")
        orphans = [pid for pid in pids if _alive(pid)]

        relaunched = launch_supervisor(directory, size, lease)
        status_code, result = http_json(
            f"{url}/plans/{key}/result?wait=1&deadline={timeout}",
            timeout=timeout + 30.0,
        )
        problems: list[str] = []
        if status_code != 200:
            problems.append(
                f"fleet_kill: served plan never completed "
                f"(result answered {status_code}: {result})"
            )
        if wait_fleet_running(directory, size, relaunched.pid, timeout=60.0) is None:
            status = read_fleet_status(directory)
            problems.append(
                f"fleet_kill: relaunched fleet never reconverged to "
                f"{size} running slots (status: running={status.get('running')} "
                f"degraded={status.get('degraded')})"
            )
        code = _terminate(relaunched)
        if code != 0:
            problems.append(f"fleet_kill: relaunched supervisor drained with exit {code}")
        _reap_orphans(orphans)
        final = read_fleet_status(directory)
        if not final.get("supervisor", {}).get("draining"):
            problems.append("fleet_kill: final fleet/status.json not marked draining")
        degraded = final.get("degraded", 0)
        stopped = sum(
            1 for worker in final.get("workers", ()) if worker.get("state") == "stopped"
        )
        if stopped + degraded != size:
            problems.append(
                f"fleet_kill: final status accounts for {stopped} stopped + "
                f"{degraded} degraded of {size} slots"
            )
        leftover = sorted(directory.glob("queue/claims/*.claim"))
        if leftover:
            problems.append(
                f"fleet_kill: claims left after drain: {[p.name for p in leftover]}"
            )
        failures = sorted(directory.glob("queue/failures/*.json"))
        if failures:
            problems.append(
                f"fleet_kill: unexpectedly quarantined: {[p.name for p in failures]}"
            )
        problems.extend(compare_stores(reference, directory))
        if not problems:
            print("  reconverged and byte-identical to reference")
        return problems
    finally:
        _terminate(supervisor)
        _terminate(relaunched)
        _reap_orphans(orphans)
        _terminate(serve)


def run_fleet_poison_round(
    number: int, scratch: Path, lease: float, timeout: float
) -> list[str]:
    """Arm a deterministic poison shard on every fleet worker; assert the
    served request surfaces a structured quarantine error naming the shard
    well within its deadline."""
    directory = scratch / f"round-sup-{number:03d}-fleet_poison" / "store"
    directory.mkdir(parents=True, exist_ok=True)
    deadline_seconds = timeout
    print(f"supervisor round {number} [fleet_poison]: deadline={deadline_seconds:.0f}s")
    serve = supervisor = None
    try:
        serve, url = launch_serve(directory)
        if not url:
            return ["fleet_poison: serve never printed its address"]
        supervisor = launch_supervisor(
            directory, 2, lease, faults="fail_shard:shard=1:p=1"
        )
        status_code, admitted = http_json(
            url + "/plans",
            {"config": _tiny_config_json(), "shards": SHARDS, "priority": 1},
        )
        if status_code != 202:
            return [f"fleet_poison: POST /plans answered {status_code}: {admitted}"]
        key = admitted["plan"]
        started = time.monotonic()
        status_code, body = http_json(
            f"{url}/plans/{key}/result?wait=1&deadline={deadline_seconds}",
            timeout=deadline_seconds + 30.0,
        )
        elapsed = time.monotonic() - started
        problems: list[str] = []
        if elapsed >= deadline_seconds:
            problems.append(
                f"fleet_poison: quarantine took {elapsed:.1f}s — only surfaced "
                f"by the deadline, not by the failure artifact"
            )
        if status_code != 502:
            problems.append(
                f"fleet_poison: expected a 502 quarantine, got {status_code}: {body}"
            )
        else:
            if body.get("error") != "plan-quarantined":
                problems.append(f"fleet_poison: unstructured error body: {body}")
            if "shard" not in str(body.get("poison_shard", "")):
                problems.append(
                    f"fleet_poison: error does not name the poison shard: "
                    f"{body.get('poison_shard')!r}"
                )
            attempts = body.get("record", {}).get("attempts", [])
            if len(attempts) != default_max_attempts():
                problems.append(
                    f"fleet_poison: {len(attempts)} recorded attempts, expected "
                    f"exactly {default_max_attempts()}"
                )
        code = _terminate(supervisor)
        if code != 1:
            problems.append(
                f"fleet_poison: supervisor drained with exit {code}, expected 1 "
                f"(quarantine observed)"
            )
        final = read_fleet_status(directory)
        if not final.get("quarantine_exits"):
            problems.append(
                "fleet_poison: final fleet/status.json recorded no quarantine exits"
            )
        if not problems:
            print(
                f"  quarantine surfaced through the front door in {elapsed:.1f}s "
                f"({body.get('poison_shard')})"
            )
        return problems
    finally:
        _terminate(supervisor)
        _terminate(serve)


def _tiny_config_json() -> dict:
    """The tiny round config as POST /plans JSON (mirrors tiny_config())."""
    return {
        "repository_count": 12,
        "seed": 3,
        "synthetic_kernel_count": 5,
        "executed_global_size": 32,
        "local_size": 16,
        "payload_seed": 3,
        "suites": ["NPB"],
    }


def run_supervisor_round(
    number: int, reference: Path, scratch: Path, lease: float, timeout: float
) -> list[str]:
    name = SUPERVISOR_MENU[number % len(SUPERVISOR_MENU)]
    if name == "fleet_kill":
        return run_fleet_kill_round(number, reference, scratch, lease, timeout)
    return run_fleet_poison_round(number, scratch, lease, timeout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=len(FAULT_MENU),
        help="chaos rounds to run; the fault menu cycles (default: one full cycle)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes per round, one of them armed (default: 2)",
    )
    parser.add_argument(
        "--lease", type=float, default=2.0,
        help="claim lease seconds — short, so steal-back is exercised (default: 2)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-worker drain timeout; exceeding it is a livelock verdict",
    )
    parser.add_argument(
        "--fault", choices=[name for name, *_ in FAULT_MENU], default=None,
        help="pin every round to this one fault instead of cycling the menu",
    )
    parser.add_argument(
        "--scratch", type=str, default=None, metavar="DIR",
        help="working directory for the round stores (default: a tmpdir, removed)",
    )
    parser.add_argument(
        "--supervisor-rounds", type=int, default=0, metavar="N",
        help="service-layer rounds to append (fleet_kill / fleet_poison cycle)",
    )
    args = parser.parse_args(argv)

    owned_scratch = args.scratch is None
    scratch = Path(args.scratch or tempfile.mkdtemp(prefix="repro-chaos-"))
    scratch.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    try:
        reference = scratch / "reference" / "store"
        print(f"building unsharded reference in {reference} ...")
        build_reference(reference)

        menu = (
            [entry for entry in FAULT_MENU if entry[0] == args.fault]
            if args.fault
            else FAULT_MENU
        )
        violations: list[str] = []
        for number in range(args.rounds):
            entry = menu[number % len(menu)]
            violations.extend(
                run_round(
                    number, entry, reference, scratch,
                    args.workers, args.lease, args.timeout,
                )
            )
        for number in range(args.supervisor_rounds):
            violations.extend(
                run_supervisor_round(
                    number, reference, scratch, args.lease, args.timeout
                )
            )
        elapsed = time.monotonic() - started
        total = args.rounds + args.supervisor_rounds
        if violations:
            print(f"\nCHAOS FAILED in {elapsed:.1f}s — {len(violations)} violation(s):")
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print(f"\nchaos clean: {total} round(s) in {elapsed:.1f}s")
        return 0
    finally:
        if owned_scratch:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
