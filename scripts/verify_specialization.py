#!/usr/bin/env python
"""Four-way differential verification of the specialized lockstep tier.

Synthesizes ``--count`` kernels (default 500) with the trained CLgen model
and executes every one through all four engines — legacy interpreter,
closure compiler, generic lockstep, and the analyzer-specialized lockstep
tier — asserting bit-identical buffer contents and identical execution
stats at every step.  It also re-checks every suite kernel, and verifies
the sample-time compile seeding (``compile_parsed_body`` →
``seed_compiled_source``) against a fresh frontend run: printed unit, IR
pickle and semantics pickle must match byte-for-byte.

This is the acceptance evidence for PR 10's "all engines + specialized
tier bit-identical across every suite kernel and >= 500 synthesized
kernels" criterion.  Exit status is non-zero on any divergence.

Usage::

    PYTHONPATH=src python scripts/verify_specialization.py
    PYTHONPATH=src python scripts/verify_specialization.py --count 500 --seed 7
"""

from __future__ import annotations

import argparse
import dataclasses
import pickle
import sys
import time


def _bit_identical(a, b) -> bool:
    from repro.execution import VectorValue

    if isinstance(a, VectorValue) and isinstance(b, VectorValue):
        return a.element_kind == b.element_kind and all(
            _bit_identical(x, y) for x, y in zip(a.values, b.values)
        )
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # NaN-tolerant exact compare
    return type(a) is type(b) and a == b


def _execute(engine, payload):
    result = engine.execute(payload.pool, payload.scalar_args, payload.ndrange)
    buffers = {name: buffer.to_list() for name, buffer in payload.pool.buffers.items()}
    return buffers, dataclasses.asdict(result.stats)


def _diff(reference, candidate) -> str | None:
    buffers_reference, stats_reference = reference
    buffers_candidate, stats_candidate = candidate
    if stats_candidate != stats_reference:
        return f"stats differ: {stats_reference} vs {stats_candidate}"
    if buffers_candidate.keys() != buffers_reference.keys():
        return "buffer sets differ"
    for name in buffers_reference:
        a_values, b_values = buffers_reference[name], buffers_candidate[name]
        if len(a_values) != len(b_values):
            return f"buffer {name!r} length differs"
        for index, (a, b) in enumerate(zip(a_values, b_values)):
            if not _bit_identical(a, b):
                return f"buffer {name!r}[{index}]: {a!r} vs {b!r}"
    return None


def _verify_kernel(source: str, counters: dict[str, int], failures: list[str]) -> None:
    """Run one kernel through all four engines and record agreement."""
    from repro.analysis import analyze_kernel
    from repro.clc import compile_source
    from repro.driver.harness import HostDriver
    from repro.driver.payload import PayloadConfig, PayloadGenerator
    from repro.errors import KernelTimeoutError, LockstepBailout
    from repro.execution import CompiledKernel, KernelInterpreter, try_vectorize
    from repro.execution.vectorizer import NotVectorizable, VectorizedKernel
    from repro.preprocess.shim import shim_include_resolver, with_shim

    unit = compile_source(
        with_shim(source), include_resolver=shim_include_resolver, strict=False
    ).unit
    kernel = unit.kernels[0]
    work_dim = HostDriver._kernel_work_dim(kernel)
    generator = PayloadGenerator(PayloadConfig(global_size=32, local_size=8, seed=3))
    payload = generator.generate(kernel, work_dim=work_dim)
    clones = [payload.clone() for _ in range(3)]

    try:
        reference = _execute(KernelInterpreter(unit, kernel.name), payload)
    except KernelTimeoutError:
        # Behavioural identity still holds when every engine times out.
        for label, engine in (
            ("closure", CompiledKernel(unit, kernel.name)),
            ("lockstep", try_vectorize(unit, kernel.name)),
        ):
            if engine is None:
                continue
            try:
                _execute(engine, clones.pop())
            except (KernelTimeoutError, LockstepBailout):
                continue
            failures.append(f"{kernel.name}: interpreter timed out, {label} did not")
        counters["timeout"] += 1
        return

    closure = _execute(CompiledKernel(unit, kernel.name), clones[0])
    error = _diff(reference, closure)
    if error:
        failures.append(f"{kernel.name}: closure-vs-interpreter {error}")
        return
    counters["closure"] += 1

    vectorized = try_vectorize(unit, kernel.name)
    if vectorized is None:
        counters["not-vectorizable"] += 1
        return
    try:
        lockstep = _execute(vectorized, clones[1])
        counters["lockstep"] += 1
    except LockstepBailout:
        lockstep = _execute(CompiledKernel(unit, kernel.name), clones[1])
        counters["lockstep-bailout"] += 1
    error = _diff(reference, lockstep)
    if error:
        failures.append(f"{kernel.name}: lockstep-vs-interpreter {error}")
        return

    facts = analyze_kernel(unit, kernel.name).specialization
    if facts is None or not facts.eligible:
        counters["not-eligible"] += 1
        return
    try:
        specialized_engine = VectorizedKernel(unit, kernel.name, specialization=facts)
    except NotVectorizable:
        counters["not-eligible"] += 1
        return
    try:
        specialized = _execute(specialized_engine, clones[2])
    except LockstepBailout as bailout:
        # Eligible kernels carry the never-bails promise: a bailout here is
        # a specialization soundness failure, not a fallback.
        failures.append(f"{kernel.name}: specialized tier bailed out: {bailout}")
        return
    error = _diff(reference, specialized)
    if error:
        failures.append(f"{kernel.name}: specialized-vs-interpreter {error}")
        return
    counters["specialized"] += 1
    if facts.uniform_control:
        counters["mask-elided"] += 1


def _verify_seed_fidelity(source: str, failures: list[str]) -> bool:
    """Compare the sample-time seeded compilation against a fresh one.

    Returns True when a seeded entry existed for *source* (synthesis put
    one there) and it matched the fresh frontend run field-for-field.
    """
    from repro.clc import compile_source
    from repro.clc.printer import SourcePrinter
    from repro.execution.cache import _SOURCE_CACHE, _source_cache_key
    from repro.preprocess.shim import shim_include_resolver, with_shim

    text = with_shim(source)
    key = _source_cache_key(
        text, {"include_resolver": shim_include_resolver, "strict": False}
    )
    seeded = _SOURCE_CACHE.get(key)
    if seeded is None:
        return False
    fresh = compile_source(text, include_resolver=shim_include_resolver, strict=False)
    printer = SourcePrinter()
    checks = (
        ("unit print", printer.print_translation_unit(seeded.unit),
         printer.print_translation_unit(fresh.unit)),
        ("preprocessed", seeded.preprocessed, fresh.preprocessed),
        ("ir pickle", pickle.dumps(seeded.ir), pickle.dumps(fresh.ir)),
        ("semantics pickle", pickle.dumps(seeded.semantics), pickle.dumps(fresh.semantics)),
        ("static count", seeded.static_instruction_count, fresh.static_instruction_count),
    )
    ok = True
    for label, a, b in checks:
        if a != b:
            failures.append(f"seed fidelity: {label} differs for a seeded kernel")
            ok = False
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=500,
                        help="synthesized kernels to verify (default 500)")
    parser.add_argument("--seed", type=int, default=0, help="synthesis seed")
    args = parser.parse_args(argv)

    from repro.experiments import ExperimentConfig, build_clgen
    from repro.suites.registry import all_suites

    counters: dict[str, int] = {
        "closure": 0, "lockstep": 0, "lockstep-bailout": 0, "specialized": 0,
        "mask-elided": 0, "not-vectorizable": 0, "not-eligible": 0, "timeout": 0,
    }
    failures: list[str] = []

    suite_kernels = 0
    for suite in all_suites():
        for benchmark in suite.benchmarks:
            _verify_kernel(benchmark.source, counters, failures)
            suite_kernels += 1
    print(f"suite kernels verified: {suite_kernels}")

    started = time.perf_counter()
    config = ExperimentConfig.full()
    clgen = build_clgen(config)
    # One batch deduplicates across its streams, so a single request rarely
    # yields `count` unique kernels; accumulate across seeds until it does.
    sources: list[str] = []
    unique: set[str] = set()
    for round_index in range(8):
        result = clgen.generate_kernels(args.count, seed=args.seed + round_index)
        for source in result.sources:
            if source not in unique:
                unique.add(source)
                sources.append(source)
        if len(sources) >= args.count:
            sources = sources[: args.count]
            break
    print(
        f"synthesized {len(sources)} unique kernels in "
        f"{time.perf_counter() - started:.1f}s (requested {args.count})"
    )

    seeded_checked = 0
    for source in sources:
        if _verify_seed_fidelity(source, failures):
            seeded_checked += 1
        _verify_kernel(source, counters, failures)
    print(f"seeded compilations checked against fresh compiles: {seeded_checked}")

    total = suite_kernels + len(sources)
    print(f"kernels verified four-way: {total}")
    for name in sorted(counters):
        print(f"  {name:<18}{counters[name]:>6}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if len(sources) < args.count:
        print(
            f"FAIL: only {len(sources)} unique kernels synthesized "
            f"(requested {args.count})",
            file=sys.stderr,
        )
        return 1
    print("OK: all engines bit-identical on every kernel")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
