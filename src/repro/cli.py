"""Command-line interface: ``clgen-repro`` / ``python -m repro``.

Sub-commands mirror the original tool's workflow:

* ``mine``        — mine the (synthetic) GitHub corpus and print its statistics
* ``train``       — train a language model on the corpus and checkpoint it
* ``sample``      — synthesize kernels from a trained (or freshly trained) model
* ``experiments`` — regenerate every table/figure and print the report
* ``pipeline``    — run every stage once and report per-stage cache hits/timings
* ``worker``      — join published pipeline plans and drain their queues
* ``fleet``       — supervise a standing pool of resident workers
* ``serve``       — stateless HTTP front door publishing plans into the store
* ``store``       — ``stats`` / ``gc`` for the on-disk artifact store
* ``lint``        — static kernel analyzer (bailout prediction, soundness gate)

``--shards N`` splits the data-parallel stages (mine/preprocess by
repository range, sample by kernel-stream range, execute by
benchmark/kernel range) into per-range store artifacts, and ``--workers
M`` dispatches ready shards to a process pool — multiple workers or
machines pointing at one ``--cache-dir`` fill it concurrently, with
results bit-identical to an unsharded run.  ``--steal`` goes further:
instead of static ranges, pending work is claimed from a lease-based
queue in the store, ``repro pipeline --steal`` publishes its plan, and
any number of ``repro worker --store DIR`` processes join in and drain
it until the merge fires.

Every sub-command resolves its heavy inputs through the pipeline stage
graph (:mod:`repro.store`): with ``--cache-dir`` (or ``REPRO_STORE_DIR``)
set, artifacts persist on disk and repeat invocations stop re-mining,
re-preprocessing, re-training and re-sampling from scratch — ``train``
after ``mine`` reuses the corpus, ``sample`` after ``train`` reuses the
model, and a second ``experiments`` run reuses everything untouched.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ExperimentConfig, run_all
from repro.model import load_model, save_model
from repro.store import PipelineConfig, PipelineRunner, STAGE_ORDER
from repro.synthesis import CLgen, SamplerConfig


def _make_runner(args: argparse.Namespace) -> PipelineRunner:
    from repro.store.shards import resolve_plan

    return PipelineRunner(
        cache_dir=getattr(args, "cache_dir", None),
        plan=resolve_plan(
            getattr(args, "shards", None),
            getattr(args, "workers", None),
            steal=(True if getattr(args, "steal", False) else None),
        ),
    )


def _parse_size(text: str) -> int:
    """``"500M"`` / ``"2G"`` / plain bytes → bytes (must be >= 0).

    Shares its grammar with the ``REPRO_STORE_MAX_BYTES`` auto-gc
    watermark (:func:`repro.envutil.parse_size`); a negative bound would
    read as "evict everything", so it is rejected before it can wipe a
    shared store.
    """
    from repro.envutil import parse_size

    try:
        return parse_size(text)
    except (ValueError, OverflowError):
        raise argparse.ArgumentTypeError(f"not a size: {text!r} (try 500M, 2G, ...)")


def _parse_age(text: str) -> float:
    """``"7d"`` / ``"12h"`` / ``"30m"`` / plain seconds → seconds (must be >= 0).

    Shares its grammar with the service-layer duration knobs
    (:func:`repro.envutil.parse_duration`, e.g. ``REPRO_SERVE_DEADLINE``).
    """
    from repro.envutil import parse_duration

    try:
        return parse_duration(text)
    except (ValueError, OverflowError):
        raise argparse.ArgumentTypeError(f"not a duration: {text!r} (try 30m, 12h, 7d)")


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB"):
        if value < 1024.0:
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"


def _cmd_mine(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    config = PipelineConfig(repository_count=args.repositories, seed=args.seed)
    corpus = runner.corpus(config)
    stats = corpus.statistics
    print(f"content files: {stats.content_files} ({stats.content_lines} lines)")
    print(f"accepted: {stats.accepted_files}  rejected: {stats.rejected_files} "
          f"(discard rate {stats.discard_rate * 100:.1f}%)")
    print(f"corpus: {corpus.size} kernels, {corpus.line_count} lines")
    print(f"vocabulary reduction: {stats.vocabulary_reduction * 100:.0f}%")
    return 0


def _train_config(args: argparse.Namespace) -> PipelineConfig:
    """The pipeline configuration ``repro train`` flags describe.

    The LSTM hyper-parameter flags thread into ``PipelineConfig.lstm`` —
    and therefore into the ``model`` fingerprint — so two trainings with
    different knobs never share a checkpoint entry.  They are refused with
    the n-gram backend rather than silently ignored.
    """
    lstm = None
    lstm_flags = {
        "epochs": getattr(args, "lstm_epochs", None),
        "hidden_size": getattr(args, "lstm_size", None),
    }
    given = {name: value for name, value in lstm_flags.items() if value is not None}
    if given:
        if args.backend != "lstm":
            raise SystemExit(
                "error: --lstm-epochs/--lstm-size require --backend lstm"
            )
        from repro.model.lstm import LSTMConfig

        lstm = LSTMConfig(**given)
    return PipelineConfig(
        repository_count=args.repositories,
        seed=args.seed,
        backend=args.backend,
        ngram_order=args.order,
        lstm=lstm,
    )


def _cmd_train(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    config = _train_config(args)
    trained = runner.trained_model(config)
    print(f"trained {args.backend} model on {trained.corpus_characters} characters "
          f"(final loss {trained.summary.final_loss:.3f})")
    if args.checkpoint:
        path = save_model(trained.model, args.checkpoint)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    if args.checkpoint:
        # Sample a previously saved model without rebuilding or retraining.
        # Same attempt budget as the stage-graph path, so the two paths
        # sample identically for the same model and flags.
        model = load_model(args.checkpoint)
        clgen = CLgen(
            model=model, sampler_config=SamplerConfig(temperature=args.temperature)
        )
        result = clgen.generate_kernels(
            args.count,
            seed=args.seed,
            max_attempts_per_kernel=PipelineConfig().max_attempts_per_kernel,
        )
    else:
        runner = _make_runner(args)
        # Deliberately all-default beyond the flags: the same flags must
        # produce the same synthesis fingerprint as `repro pipeline` and the
        # experiment harness, so the sub-commands share artifacts.
        config = PipelineConfig(
            repository_count=args.repositories,
            seed=args.seed,
            ngram_order=args.order,
            sampler_temperature=args.temperature,
            synthetic_kernel_count=args.count,
            sample_seed=args.seed,
        )
        result = runner.synthesis(config)
    for kernel in result.kernels:
        print(kernel.source)
        print()
    stats = result.statistics
    print(
        f"// generated {stats.generated}/{stats.requested} kernels in {stats.attempts} attempts "
        f"(acceptance rate {stats.acceptance_rate * 100:.0f}%)",
        file=sys.stderr,
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    config = ExperimentConfig.full() if args.full else ExperimentConfig.quick()
    if args.synthetic_kernels:
        config.synthetic_kernel_count = args.synthetic_kernels
    report = run_all(config, runner=_make_runner(args))
    print(report.render())
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    """Run every stage once and report the store's work for each."""
    runner = _make_runner(args)
    config = PipelineConfig(
        repository_count=args.repositories,
        seed=args.seed,
        ngram_order=args.order,
        sampler_temperature=args.temperature,
        synthetic_kernel_count=args.count,
        sample_seed=args.seed,
        sample_batch=args.sample_batch,
        executed_global_size=args.global_size,
        local_size=args.local_size,
        payload_seed=args.seed,
    )
    if runner.stealing:
        # Make this run joinable: `repro worker --store DIR` discovers the
        # published plan and drains the same claim queue concurrently.
        from repro.store.queue import publish_plan

        if not runner.plan.sharded:
            print(
                "// warning: --steal without --shards publishes a "
                "single-shard plan — joining workers can only claim whole "
                "stages; pass --shards N for shard-level work sharing",
                file=sys.stderr,
            )
        key = publish_plan(
            runner.store, config, runner.plan.shards, priority=args.priority
        )
        print(f"// plan {key[:12]} published; join with: "
              f"repro worker --store {runner.store.directory}", file=sys.stderr)
    suites = runner.suite_measurements(config)
    synthesis = runner.synthesis(config)
    measurements = runner.synthetic_measurements(config)

    print(f"{'stage':<12}{'result':>8}{'seconds':>10}  fingerprint")
    by_stage: dict[str, list] = {}
    for event in runner.events:
        by_stage.setdefault(event.stage, []).append(event)
    total = 0.0
    for stage in STAGE_ORDER:
        for event in by_stage.get(stage, ()):
            label = "hit" if event.hit else "miss"
            total += event.seconds
            print(f"{stage:<12}{label:>8}{event.seconds:>10.3f}  {event.fingerprint[:12]}")
    print(f"{'total':<12}{'':>8}{total:>10.3f}")

    suite_count = sum(len(m) for m in suites.suite_measurements.values())
    print(
        f"// {synthesis.statistics.generated} kernels synthesized, "
        f"{len(measurements)} synthetic + {suite_count} suite measurements",
        file=sys.stderr,
    )
    if runner.store.directory is None:
        print(
            "// no on-disk store configured; pass --cache-dir (or set "
            "REPRO_STORE_DIR) to persist artifacts across runs",
            file=sys.stderr,
        )
    return 0


def _print_plan_failure(store, key: str, failure) -> None:
    """One readable summary per failed plan: the poison task, its attempt
    history, and where the full structured record lives."""
    record = failure.record
    attempts = record.get("attempts", [])
    print(f"plan {key[:12]} FAILED: {failure}", file=sys.stderr)
    for entry in attempts:
        print(
            f"  attempt {entry.get('attempt', '?')} "
            f"by {entry.get('worker', 'unknown')}: {entry.get('error', 'unknown')}",
            file=sys.stderr,
        )
    failure_path = (
        store.directory / "queue" / "failures" / f"{failure.task_id}.json"
        if store.directory is not None
        else None
    )
    if failure_path is not None:
        print(f"  full record: {failure_path}", file=sys.stderr)


def _cmd_worker(args: argparse.Namespace) -> int:
    """Join published pipeline plans and drain their claim queues.

    The inverse of ``repro pipeline --steal``: instead of describing work,
    a worker discovers the plans already published in the store and claims
    whatever stages/shards are still pending, until every plan is fully
    resolved.  Any number of workers — across processes and machines
    sharing the store directory — cooperate through the claim protocol;
    results are bit-identical to a single-process run.

    A plan whose shard exhausted its retry budget (``PlanFailed``) does not
    take the worker down: the failure artifact is summarized, the remaining
    plans still drain, and the exit status is non-zero so a fleet
    supervisor sees the quarantine.  With ``--watch`` the worker stays
    resident, polling for newly published plans with jittered backoff and
    draining them as they appear, until SIGTERM (or SIGINT) asks it to
    finish its current stage and exit cleanly.
    """
    import random
    import signal
    import threading

    from repro.errors import PlanFailed
    from repro.store import PipelineRunner, resolve_store
    from repro.store.queue import drain_plan, load_plans, plan_priority
    from repro.store.shards import ShardPlan

    store = resolve_store(args.store)
    if store.directory is None:
        print(
            "error: a worker needs an on-disk store; pass --store or set REPRO_STORE_DIR",
            file=sys.stderr,
        )
        return 2

    stop = threading.Event()
    previous_handlers = {}
    if args.watch and threading.current_thread() is threading.main_thread():
        def request_stop(signum, frame):
            print("// stop requested; finishing current work", file=sys.stderr)
            stop.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, request_stop)

    #: Plan key -> PlanFailed.  A quarantined plan is reported once and
    #: skipped on re-visits (its failure artifact is permanent until an
    #: operator clears queue/failures/).
    failed_plans: dict[str, PlanFailed] = {}
    drained_keys: set[str] = set()
    warned_single_shard: set[str] = set()
    rng = random.Random()
    poll_seconds = 0.5
    poll_cap = max(args.poll, 0.5) if args.watch else 0.5

    try:
        while True:
            plans = load_plans(store)
            if not plans and not args.watch:
                print(f"no published plans in {store.directory}", file=sys.stderr)
                return 0
            computed_this_pass = 0
            for key, plan in plans:
                if stop.is_set() or key in failed_plans:
                    continue
                if plan["shards"] == 1 and args.workers > 1 and key not in warned_single_shard:
                    warned_single_shard.add(key)
                    print(
                        f"warning: plan {key[:12]} was published with a single "
                        "shard, so --workers has no shard-level work to pool; "
                        "republish it with --shards N for real fan-out",
                        file=sys.stderr,
                    )
                runner = PipelineRunner(
                    store=store,
                    plan=ShardPlan(
                        shards=plan["shards"], workers=args.workers or 0, steal=True
                    ),
                    lease_seconds=args.lease,
                    priority=plan_priority(plan),
                )
                try:
                    drain_plan(runner, plan["config"])
                except PlanFailed as failure:
                    failed_plans[key] = failure
                    _print_plan_failure(store, key, failure)
                    continue
                counts = runner.stage_counts()
                computed = sum(bucket["miss"] for bucket in counts.values())
                served = sum(bucket["hit"] for bucket in counts.values())
                computed_this_pass += computed
                if key not in drained_keys or computed:
                    print(f"plan {key[:12]}: computed {computed} stage artifacts, "
                          f"{served} served by the store or other workers")
                drained_keys.add(key)
            if not args.watch or stop.is_set():
                break
            # Jittered backoff between polls: idle workers ease off (so a
            # fleet does not hammer a shared filesystem in lockstep), and
            # any pass that found real work snaps back to the floor.
            if computed_this_pass:
                poll_seconds = 0.5
            else:
                poll_seconds = min(poll_seconds * 1.6, poll_cap)
            stop.wait(poll_seconds * (0.5 + 0.5 * rng.random()))
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    if failed_plans:
        print(
            f"drained {len(drained_keys)} plan(s); "
            f"{len(failed_plans)} plan(s) ended in quarantined shards",
            file=sys.stderr,
        )
        return 1
    print(f"drained {len(drained_keys)} plan(s)")
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    """Inspect the claim queue: live claims and quarantined failures.

    Both renderings come from the same :func:`repro.store.queue.queue_status`
    payload the serve layer's ``GET /queue`` returns, so the dashboard, the
    CLI and the front door can never disagree about queue state.
    """
    import json

    from repro.store import resolve_store
    from repro.store.queue import queue_status

    store = resolve_store(args.store)
    if store.directory is None:
        print(
            "error: the queue lives in an on-disk store; pass --store or set "
            "REPRO_STORE_DIR",
            file=sys.stderr,
        )
        return 2
    status = queue_status(store.directory)
    claims, failures = status["claims"], status["failures"]
    if getattr(args, "json", False):
        print(json.dumps(status, indent=2))
        return 1 if failures else 0
    print(f"queue: {status['directory']}")
    print(f"claims: {len(claims)} live (lease {status['lease_seconds']:.0f}s)")
    for record in claims:
        if record.get("unreadable"):
            print(f"  {record['task'][:16]}  <unreadable claim>")
            continue
        age = record.get("age_seconds", 0.0)
        state = "EXPIRED" if record.get("expired") else "live"
        print(
            f"  {record['task'][:16]}  attempt {record.get('attempt', '?')}  "
            f"age {age:6.1f}s  {state}  held by {record.get('worker', 'unknown')}"
        )
    print(f"failures: {len(failures)} quarantined "
          f"(budget {status['max_attempts']} attempts)")
    for record in failures:
        attempts = record.get("attempts", [])
        last = attempts[-1].get("error", "unknown") if attempts else "unknown"
        print(f"  {record.get('task', '?')[:16]}  {len(attempts)} attempts  "
              f"last error: {last}")
    return 1 if failures else 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    """Supervise a standing pool of ``repro worker --watch`` processes.

    Crash-only: the supervisor's bookkeeping is re-derivable, its workers
    survive its death, and a replacement supervisor on the same store just
    works.  See :mod:`repro.store.supervisor` for the exit-classification
    and restart-budget policy.
    """
    from repro.store import resolve_store
    from repro.store.supervisor import FleetSupervisor

    store = resolve_store(args.store)
    if store.directory is None:
        print(
            "error: a fleet needs an on-disk store; pass --store or set "
            "REPRO_STORE_DIR",
            file=sys.stderr,
        )
        return 2
    supervisor = FleetSupervisor(
        store.directory,
        size=args.size,
        max_restarts=args.restarts,
        window_seconds=args.window,
        lease_seconds=args.lease,
        poll_seconds=args.poll,
        drain_grace=args.drain_grace,
    )
    print(
        f"fleet: supervising {supervisor.size} worker(s) over "
        f"{store.directory} (SIGTERM drains; status in fleet/status.json)",
        file=sys.stderr,
    )
    return supervisor.run()


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """Report the last ``fleet/status.json`` a supervisor published."""
    import json
    import time

    from repro.store import resolve_store
    from repro.store.supervisor import read_fleet_status

    store = resolve_store(args.store)
    if store.directory is None:
        print(
            "error: fleet status lives in an on-disk store; pass --store or "
            "set REPRO_STORE_DIR",
            file=sys.stderr,
        )
        return 2
    status = read_fleet_status(store.directory)
    if status is None:
        print(
            f"no fleet status published in {store.directory} "
            "(start a supervisor with `repro fleet run`)",
            file=sys.stderr,
        )
        return 1
    if getattr(args, "json", False):
        print(json.dumps(status, indent=2))
        return 0
    supervisor = status.get("supervisor", {})
    age = max(time.time() - status.get("updated_at", 0.0), 0.0)
    draining = ", draining" if supervisor.get("draining") else ""
    print(
        f"fleet: {status.get('running', 0)}/{status.get('size', '?')} running, "
        f"{status.get('degraded', 0)} degraded "
        f"(supervisor pid {supervisor.get('pid', '?')}, "
        f"updated {age:.1f}s ago{draining})"
    )
    for worker in status.get("workers", ()):
        line = (
            f"  slot {worker.get('index', '?')}: {worker.get('state', '?'):<9} "
            f"pid {worker.get('pid') or '-':<8} "
            f"respawns {worker.get('respawns', 0)}"
        )
        if worker.get("last_exit") is not None:
            line += (
                f"  last exit {worker['last_exit']} "
                f"({worker.get('last_exit_class', '?')})"
            )
        print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the stateless HTTP front door (see :mod:`repro.store.serve`)."""
    import signal
    import threading

    from repro.store import resolve_store
    from repro.store.serve import build_server

    store = resolve_store(args.store)
    if store.directory is None:
        print(
            "error: the front door needs an on-disk store; pass --store or "
            "set REPRO_STORE_DIR",
            file=sys.stderr,
        )
        return 2
    server = build_server(
        store.directory,
        host=args.host,
        port=args.port,
        max_plans=args.max_plans,
        deadline_seconds=args.deadline,
        quiet=not args.verbose,
    )
    host, port = server.server_address[:2]
    # The first stdout line is machine-readable on purpose: callers that
    # asked for an ephemeral port (--port 0) parse the bound address here.
    print(f"serving http://{host}:{port} store={store.directory}", flush=True)
    if threading.current_thread() is threading.main_thread():
        def shutdown(signum, frame):
            # shutdown() blocks until serve_forever returns, so it must run
            # off the serving thread the signal interrupted.
            threading.Thread(target=server.shutdown, daemon=True).start()

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, shutdown)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("serve: drained", file=sys.stderr)
    return 0


def _store_for(args: argparse.Namespace):
    """The directory-backed store the ``store`` sub-commands operate on."""
    from repro.store import resolve_store

    store = resolve_store(getattr(args, "cache_dir", None))
    if store.directory is None:
        print(
            "error: no on-disk store configured; pass --cache-dir or set REPRO_STORE_DIR",
            file=sys.stderr,
        )
        return None
    return store


def _cmd_store_stats(args: argparse.Namespace) -> int:
    store = _store_for(args)
    if store is None:
        return 2
    stats = store.stats()
    print(f"store: {store.directory}")
    print(f"{'kind':<28}{'entries':>10}{'bytes':>14}")
    for kind in sorted(stats.kinds):
        bucket = stats.kinds[kind]
        print(f"{kind:<28}{bucket['entries']:>10}{_format_bytes(bucket['bytes']):>14}")
    print(f"{'total':<28}{stats.entries:>10}{_format_bytes(stats.bytes):>14}")
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.max_age is None:
        print("error: pass --max-bytes and/or --max-age", file=sys.stderr)
        return 2
    store = _store_for(args)
    if store is None:
        return 2
    result = store.gc(max_bytes=args.max_bytes, max_age_seconds=args.max_age)
    print(
        f"removed {result.removed_entries} entries ({_format_bytes(result.removed_bytes)}); "
        f"{result.remaining_entries} entries ({_format_bytes(result.remaining_bytes)}) remain"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.lint import lint_paths, lint_suites

    if args.soundness:
        from repro.analysis.soundness import check_suites, check_synthesized

        report = check_suites()
        if args.synthesized:
            synth = check_synthesized(count=args.synthesized, seed=args.seed)
            report.records.extend(synth.records)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"soundness: {report.summary()}")
            for record in report.disagreements:
                marker = "VIOLATION" if record.violation else "miss"
                print(
                    f"  [{marker}] {record.name}: static={record.static} "
                    f"dynamic={record.dynamic} {record.dynamic_cause}"
                )
        if not report.sound:
            print(
                f"error: {len(report.violations)} lockstep-safe kernel(s) "
                "dynamically bailed out",
                file=sys.stderr,
            )
            return 1
        return 0

    report = lint_paths(args.paths) if args.paths else lint_suites()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"lint: {report.summary()}")
        for record in report.records:
            if record.error:
                print(f"  [error] {record.name}: {record.error}")
            elif record.verdict is not None and record.verdict.causes:
                causes = "; ".join(record.verdict.cause_strings())
                print(f"  [{record.classification}] {record.name}: {causes}")
    failed = [record for record in report.records if record.error]
    return 1 if (args.paths and failed) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clgen-repro",
        description="Reproduction of 'Synthesizing Benchmarks for Predictive Modeling' (CGO 2017)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="artifact-store directory (default: $REPRO_STORE_DIR, else in-memory only)",
    )
    common.add_argument(
        "--shards",
        type=int,
        default=None,
        help="split shardable stages into N per-range artifacts "
             "(default: $REPRO_SHARDS, else unsharded); results are bit-identical",
    )
    common.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for ready shards; implies --shards M when "
             "--shards is not given (default: $REPRO_WORKERS, else in-process)",
    )
    common.add_argument(
        "--steal",
        action="store_true",
        default=False,
        help="resolve stages through the work-stealing claim queue (needs "
             "--cache-dir / REPRO_STORE_DIR); concurrent runners and "
             "`repro worker` processes then drain the same plan "
             "(default: $REPRO_STEAL, else off)",
    )

    mine = subparsers.add_parser(
        "mine", parents=[common], help="mine the OpenCL corpus and print statistics"
    )
    mine.add_argument("--repositories", type=int, default=100)
    mine.add_argument("--seed", type=int, default=0)
    mine.set_defaults(func=_cmd_mine)

    train = subparsers.add_parser(
        "train", parents=[common], help="train a language model on the corpus"
    )
    train.add_argument("--repositories", type=int, default=100)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--backend", choices=["ngram", "lstm"], default="ngram")
    train.add_argument("--order", type=int, default=12)
    train.add_argument("--checkpoint", type=str, default=None)
    train.add_argument(
        "--lstm-epochs",
        type=int,
        default=None,
        metavar="N",
        help="LSTM training epochs (requires --backend lstm; fingerprints "
             "the checkpoint, so different values never collide)",
    )
    train.add_argument(
        "--lstm-size",
        type=int,
        default=None,
        metavar="UNITS",
        help="LSTM hidden-layer width (requires --backend lstm)",
    )
    train.set_defaults(func=_cmd_train)

    sample = subparsers.add_parser(
        "sample", parents=[common], help="synthesize OpenCL kernels"
    )
    sample.add_argument("--count", type=int, default=10)
    # Same default as mine/train: identical flags must resolve to the same
    # corpus/model fingerprints so the sub-commands reuse each other's
    # artifacts.
    sample.add_argument("--repositories", type=int, default=100)
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--order", type=int, default=12)
    sample.add_argument("--temperature", type=float, default=0.6)
    sample.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="sample a saved model checkpoint instead of mining and training",
    )
    sample.set_defaults(func=_cmd_sample)

    experiments = subparsers.add_parser(
        "experiments", parents=[common], help="regenerate every table and figure"
    )
    experiments.add_argument("--full", action="store_true", help="paper-scale configuration")
    experiments.add_argument("--synthetic-kernels", type=int, default=None)
    experiments.set_defaults(func=_cmd_experiments)

    pipeline = subparsers.add_parser(
        "pipeline",
        parents=[common],
        help="run all pipeline stages once, reporting per-stage cache hits and timings",
    )
    pipeline.add_argument("--repositories", type=int, default=100)
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.add_argument("--order", type=int, default=12)
    pipeline.add_argument("--temperature", type=float, default=0.6)
    pipeline.add_argument("--count", type=int, default=50)
    pipeline.add_argument("--global-size", type=int, default=128)
    pipeline.add_argument("--local-size", type=int, default=32)
    pipeline.add_argument(
        "--sample-batch",
        type=int,
        default=None,
        metavar="WIDTH",
        help="wavefront width for the batched sample stage (default: "
             "$REPRO_SAMPLE_BATCH, else 64; byte-identical output at every "
             "width, so it never affects fingerprints)",
    )
    pipeline.add_argument(
        "--priority",
        type=int,
        default=0,
        help="with --steal, the priority the published plan carries; the "
             "fleet drains higher-priority plans first (default: 0)",
    )
    pipeline.set_defaults(func=_cmd_pipeline)

    worker = subparsers.add_parser(
        "worker",
        help="join published pipeline plans in a shared store and drain "
             "their work-stealing queues until empty",
    )
    worker.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="the shared artifact-store directory (default: $REPRO_STORE_DIR)",
    )
    worker.add_argument(
        "--workers",
        type=int,
        default=0,
        help="additionally fan this worker's shard draining out over a "
             "process pool of this width",
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="claim lease; a claim older than this is treated as a crashed "
             "worker's and stolen (default: $REPRO_QUEUE_LEASE, else 300)",
    )
    worker.add_argument(
        "--watch",
        action="store_true",
        help="stay resident after draining: poll the store for newly "
             "published plans (jittered backoff) until SIGTERM",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="with --watch, the maximum idle-poll interval; backoff starts "
             "at 0.5s and eases up to this cap (default: 10)",
    )
    worker.set_defaults(func=_cmd_worker)

    queue = subparsers.add_parser(
        "queue", help="inspect the work-stealing claim queue"
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    queue_status = queue_sub.add_parser(
        "status",
        help="list live claims (task, worker, attempt, lease age) and "
             "quarantined failures; exits non-zero if any task is quarantined",
    )
    queue_status.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="the shared artifact-store directory (default: $REPRO_STORE_DIR)",
    )
    queue_status.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable status payload (the same one the "
             "serve layer's GET /queue returns)",
    )
    queue_status.set_defaults(func=_cmd_queue_status)

    fleet = subparsers.add_parser(
        "fleet",
        help="supervise a standing pool of resident workers (crash-only: "
             "respawn on chaos/crash, degrade past the restart budget)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run",
        help="spawn and monitor N `repro worker --watch` processes until "
             "SIGTERM drains the fleet",
    )
    fleet_run.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="the shared artifact-store directory (default: $REPRO_STORE_DIR)",
    )
    fleet_run.add_argument(
        "--size",
        type=int,
        default=None,
        metavar="N",
        help="worker processes to keep alive (default: $REPRO_FLEET_SIZE, else 2)",
    )
    fleet_run.add_argument(
        "--restarts",
        type=int,
        default=None,
        metavar="R",
        help="real-crash restarts allowed per slot per rolling window before "
             "the slot degrades (default: $REPRO_FLEET_RESTARTS, else 3)",
    )
    fleet_run.add_argument(
        "--window",
        type=_parse_age,
        default=None,
        metavar="AGE",
        help="rolling window the restart budget counts within "
             "(default: $REPRO_FLEET_WINDOW, else 60s)",
    )
    fleet_run.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="claim lease forwarded to the workers "
             "(default: $REPRO_QUEUE_LEASE, else 300)",
    )
    fleet_run.add_argument(
        "--poll",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="workers' maximum idle-poll interval (default: 5)",
    )
    fleet_run.add_argument(
        "--drain-grace",
        type=_parse_age,
        default=60.0,
        metavar="AGE",
        help="how long a SIGTERM drain waits for workers to finish their "
             "current stage before killing them (default: 60s)",
    )
    fleet_run.set_defaults(func=_cmd_fleet_run)
    fleet_status = fleet_sub.add_parser(
        "status",
        help="report the fleet/status.json heartbeat the supervisor "
             "publishes into the store",
    )
    fleet_status.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="the shared artifact-store directory (default: $REPRO_STORE_DIR)",
    )
    fleet_status.add_argument(
        "--json",
        action="store_true",
        help="emit the raw fleet/status.json payload",
    )
    fleet_status.set_defaults(func=_cmd_fleet_status)

    serve = subparsers.add_parser(
        "serve",
        help="stateless HTTP front door: admit synthesis requests as plan "
             "artifacts, stream progress, surface quarantines",
    )
    serve.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="the shared artifact-store directory (default: $REPRO_STORE_DIR)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0 = ephemeral; the bound address is "
             "printed on the first stdout line)",
    )
    serve.add_argument(
        "--max-plans",
        type=int,
        default=None,
        metavar="N",
        help="admission bound on unfinished plans; past it POST /plans "
             "answers 503 Retry-After (default: $REPRO_SERVE_MAX_PLANS, else 4)",
    )
    serve.add_argument(
        "--deadline",
        type=_parse_age,
        default=None,
        metavar="AGE",
        help="default per-request deadline for blocking/streaming endpoints "
             "(default: $REPRO_SERVE_DEADLINE, else 600s)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.set_defaults(func=_cmd_serve)

    store = subparsers.add_parser(
        "store", help="inspect or bound the on-disk artifact store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", parents=[common], help="entry count, bytes and per-kind breakdown"
    )
    store_stats.set_defaults(func=_cmd_store_stats)
    store_gc = store_sub.add_parser(
        "gc",
        parents=[common],
        help="drop old entries (age first, then least-recently-written) "
             "until the store fits the bounds",
    )
    store_gc.add_argument(
        "--max-bytes",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="keep at most SIZE on disk (accepts suffixes: 500M, 2G, ...)",
    )
    store_gc.add_argument(
        "--max-age",
        type=_parse_age,
        default=None,
        metavar="AGE",
        help="drop entries older than AGE (accepts suffixes: 30m, 12h, 7d, ...)",
    )
    store_gc.set_defaults(func=_cmd_store_gc)

    lint = subparsers.add_parser(
        "lint",
        help="static kernel analyzer: predict lockstep bailouts without "
             "executing (default target: the benchmark suites)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="FILE",
        help="OpenCL kernel files to lint (default: every suite benchmark)",
    )
    lint.add_argument(
        "--soundness",
        action="store_true",
        help="cross-check static verdicts against dynamic lockstep execution; "
             "exits 1 if any statically-safe kernel bails out",
    )
    lint.add_argument(
        "--synthesized",
        type=int,
        default=0,
        metavar="N",
        help="with --soundness, additionally cross-check N freshly "
             "synthesized kernels",
    )
    lint.add_argument("--seed", type=int, default=0)
    lint.add_argument("--json", action="store_true", help="emit the raw report")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
