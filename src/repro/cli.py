"""Command-line interface: ``clgen-repro`` / ``python -m repro``.

Sub-commands mirror the original tool's workflow:

* ``mine``        — mine the (synthetic) GitHub corpus and print its statistics
* ``train``       — train a language model on the corpus and checkpoint it
* ``sample``      — synthesize kernels from a trained (or freshly trained) model
* ``experiments`` — regenerate every table/figure and print the report
"""

from __future__ import annotations

import argparse
import sys

from repro.corpus import Corpus
from repro.experiments import ExperimentConfig, run_all
from repro.model import save_model, train_model
from repro.synthesis import CLgen, SamplerConfig


def _cmd_mine(args: argparse.Namespace) -> int:
    corpus = Corpus.mine_and_build(repository_count=args.repositories, seed=args.seed)
    stats = corpus.statistics
    print(f"content files: {stats.content_files} ({stats.content_lines} lines)")
    print(f"accepted: {stats.accepted_files}  rejected: {stats.rejected_files} "
          f"(discard rate {stats.discard_rate * 100:.1f}%)")
    print(f"corpus: {corpus.size} kernels, {corpus.line_count} lines")
    print(f"vocabulary reduction: {stats.vocabulary_reduction * 100:.0f}%")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    corpus = Corpus.mine_and_build(repository_count=args.repositories, seed=args.seed)
    trained = train_model(corpus, backend=args.backend, ngram_order=args.order)
    print(f"trained {args.backend} model on {trained.corpus_characters} characters "
          f"(final loss {trained.summary.final_loss:.3f})")
    if args.checkpoint:
        path = save_model(trained.model, args.checkpoint)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    clgen = CLgen.from_github(
        repository_count=args.repositories,
        seed=args.seed,
        ngram_order=args.order,
        sampler_config=SamplerConfig(temperature=args.temperature),
    )
    result = clgen.generate_kernels(args.count, seed=args.seed)
    for kernel in result.kernels:
        print(kernel.source)
        print()
    stats = result.statistics
    print(
        f"// generated {stats.generated}/{stats.requested} kernels in {stats.attempts} attempts "
        f"(acceptance rate {stats.acceptance_rate * 100:.0f}%)",
        file=sys.stderr,
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    config = ExperimentConfig.full() if args.full else ExperimentConfig.quick()
    if args.synthetic_kernels:
        config.synthetic_kernel_count = args.synthetic_kernels
    report = run_all(config)
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clgen-repro",
        description="Reproduction of 'Synthesizing Benchmarks for Predictive Modeling' (CGO 2017)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    mine = subparsers.add_parser("mine", help="mine the OpenCL corpus and print statistics")
    mine.add_argument("--repositories", type=int, default=100)
    mine.add_argument("--seed", type=int, default=0)
    mine.set_defaults(func=_cmd_mine)

    train = subparsers.add_parser("train", help="train a language model on the corpus")
    train.add_argument("--repositories", type=int, default=100)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--backend", choices=["ngram", "lstm"], default="ngram")
    train.add_argument("--order", type=int, default=12)
    train.add_argument("--checkpoint", type=str, default=None)
    train.set_defaults(func=_cmd_train)

    sample = subparsers.add_parser("sample", help="synthesize OpenCL kernels")
    sample.add_argument("--count", type=int, default=10)
    sample.add_argument("--repositories", type=int, default=80)
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--order", type=int, default=12)
    sample.add_argument("--temperature", type=float, default=0.6)
    sample.set_defaults(func=_cmd_sample)

    experiments = subparsers.add_parser("experiments", help="regenerate every table and figure")
    experiments.add_argument("--full", action="store_true", help="paper-scale configuration")
    experiments.add_argument("--synthetic-kernels", type=int, default=None)
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
