"""Exception hierarchy shared across the reproduction.

Every user-facing failure mode in the pipeline maps to one of these
exception classes so that callers (the rejection filter, the host driver,
the experiment harness) can discriminate *why* a kernel was rejected or an
execution failed without string-matching error messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompileError(ReproError):
    """The OpenCL C frontend could not compile an input.

    Attributes:
        message: Human readable description of the problem.
        line: 1-based source line on which the error was detected, if known.
        column: 1-based source column, if known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f"{line}:{column or 0}: "
        super().__init__(f"{location}{message}")


class PreprocessorError(CompileError):
    """Raised for malformed preprocessor directives or unresolvable includes."""


class LexerError(CompileError):
    """Raised when the character stream cannot be tokenized."""


class ParseError(CompileError):
    """Raised when the token stream is not valid OpenCL C (our subset)."""


class SemanticError(CompileError):
    """Raised for undeclared identifiers, call-arity mismatches and the like."""


class CodegenError(CompileError):
    """Raised when a well-formed AST cannot be lowered to IR."""


class RewriterError(ReproError):
    """Raised when the source normalizer cannot rewrite an input."""


class ExecutionError(ReproError):
    """Base class for failures while executing a kernel on a simulated device."""


class KernelTimeoutError(ExecutionError):
    """The kernel exceeded the simulated execution budget (possible non-termination)."""


class KernelRuntimeError(ExecutionError):
    """The kernel performed an illegal operation (out-of-bounds access, etc.)."""


class LockstepBailout(ReproError):
    """The vectorized (SIMT) execution tier cannot preserve scalar semantics.

    Raised internally when a lockstep execution encounters a construct whose
    NumPy lowering would diverge from the scalar engines (cross-lane memory
    hazards, int64 overflow, per-lane type divergence, step-budget overrun).
    The engine router catches it and transparently re-executes the kernel on
    the closure engine — the memory pool is untouched at raise time, so the
    fallback is exact.
    """


class PayloadError(ReproError):
    """The host driver could not construct a payload for a kernel signature."""


class DynamicCheckError(ReproError):
    """The dynamic checker determined that a kernel does not perform useful work."""


class ModelError(ReproError):
    """Raised for language-model configuration or checkpointing problems."""


class SynthesisError(ReproError):
    """Raised when the synthesizer cannot produce a candidate kernel."""


class BenchmarkError(ReproError):
    """Raised for problems loading or executing benchmark-suite programs."""


class PlanFailed(ReproError):
    """A queue-drained pipeline plan cannot complete: one of its tasks
    failed its whole retry budget and was quarantined.

    Raised by every worker awaiting or claiming the poison task — instead
    of the fleet re-stealing and re-crashing the same shard forever, the
    plan fails loudly in each participant, naming the task.  The full
    structured record (worker ids, per-attempt errors, tracebacks) lives in
    the failure artifact under ``queue/failures/`` in the store.

    Attributes:
        task_id: Store key of the quarantined task.
        record: The failure artifact's contents (may be empty if unreadable).
    """

    def __init__(self, task_id: str, record: dict | None = None):
        self.task_id = task_id
        self.record = record or {}
        attempts = self.record.get("attempts", [])
        last = attempts[-1].get("error", "unknown error") if attempts else "unknown error"
        super().__init__(
            f"task {task_id[:12]} quarantined after {len(attempts)} failed "
            f"attempt(s); last error: {last}"
        )
