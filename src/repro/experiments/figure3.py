"""Figure 3: the Parboil feature space, before and after adding neighbours.

A two-dimensional PCA projection of the Grewe feature space over the Parboil
benchmarks, with each point labelled correct/incorrect according to whether
leave-one-benchmark-out cross-validation predicted its mapping.  Outliers
with no neighbouring observations are mispredicted (Figure 3a); adding
observations that neighbour them in the feature space (here: CLgen kernels
close to the outliers) corrects them (Figure 3b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.driver.harness import KernelMeasurement
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentData,
    benchmark_name_of,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)
from repro.features.grewe import grewe_feature_vector
from repro.features.pca import PCA
from repro.predictive.crossval import group_by_benchmark, leave_one_benchmark_out
from repro.predictive.model import GreweModel


@dataclass
class ProjectedPoint:
    """One benchmark observation in the 2D projection."""

    name: str
    x: float
    y: float
    correct: bool
    additional: bool = False  # True for the added neighbouring observations


@dataclass
class Figure3Result:
    """The two panels of Figure 3."""

    platform: str
    before: list[ProjectedPoint] = field(default_factory=list)
    after: list[ProjectedPoint] = field(default_factory=list)

    @staticmethod
    def _accuracy(points: list[ProjectedPoint]) -> float:
        test_points = [p for p in points if not p.additional]
        if not test_points:
            return 0.0
        return sum(p.correct for p in test_points) / len(test_points)

    @property
    def accuracy_before(self) -> float:
        return self._accuracy(self.before)

    @property
    def accuracy_after(self) -> float:
        return self._accuracy(self.after)


def _project(measurements: list[KernelMeasurement]) -> tuple[np.ndarray, PCA]:
    features = np.array([grewe_feature_vector(m).as_list() for m in measurements])
    projector = PCA(n_components=2)
    projected, fitted = projector.fit_transform(features)
    return projected, fitted


def _nearest_synthetics(
    target: KernelMeasurement, candidates: list[KernelMeasurement], count: int
) -> list[KernelMeasurement]:
    """The *count* synthetic observations closest to *target* in feature space."""
    target_vector = grewe_feature_vector(target).as_list()

    def distance(candidate: KernelMeasurement) -> float:
        vector = grewe_feature_vector(candidate).as_list()
        return math.sqrt(sum((a - b) ** 2 for a, b in zip(target_vector, vector)))

    return sorted(candidates, key=distance)[:count]


def run_figure3(
    config: ExperimentConfig | None = None,
    data: ExperimentData | None = None,
    platform: str = "NVIDIA",
    neighbours_per_outlier: int = 3,
) -> Figure3Result:
    """Regenerate Figure 3 (Parboil on the NVIDIA platform)."""
    config = config or ExperimentConfig()
    if data is None:
        data = measure_suites(config, suites=["Parboil"])
        data = synthesize_and_measure(config, data, clgen=build_clgen(config))
    elif not data.synthetic_measurements:
        data = synthesize_and_measure(config, data)

    parboil = data.suite_measurements.get("Parboil", [])
    result = Figure3Result(platform=platform)
    if len(parboil) < 3:
        return result

    grouped = group_by_benchmark(parboil, benchmark_name_of)
    projected, _ = _project(parboil)

    # Panel (a): plain leave-one-benchmark-out cross-validation.
    before_cv = leave_one_benchmark_out(grouped, GreweModel, platform)
    correctness = {id(o.measurement): o.correct for o in before_cv.outcomes}
    for measurement, (x, y) in zip(parboil, projected):
        result.before.append(
            ProjectedPoint(
                name=measurement.name,
                x=float(x),
                y=float(y),
                correct=correctness.get(id(measurement), False),
            )
        )

    # Panel (b): add synthetic observations neighbouring the mispredicted
    # outliers to the training data and re-run the cross-validation.
    outliers = [m for m in parboil if not correctness.get(id(m), False)]
    additional: list[KernelMeasurement] = []
    for outlier in outliers:
        additional.extend(
            _nearest_synthetics(outlier, data.synthetic_measurements, neighbours_per_outlier)
        )
    after_cv = leave_one_benchmark_out(grouped, GreweModel, platform, extra_training=additional)
    after_correctness = {id(o.measurement): o.correct for o in after_cv.outcomes}
    for measurement, (x, y) in zip(parboil, projected):
        result.after.append(
            ProjectedPoint(
                name=measurement.name,
                x=float(x),
                y=float(y),
                correct=after_correctness.get(id(measurement), False),
            )
        )
    if additional:
        additional_projthan, _ = _project(additional) if len(additional) > 1 else (
            np.zeros((1, 2)),
            None,
        )
        for measurement, row in zip(additional, additional_projthan):
            result.after.append(
                ProjectedPoint(
                    name=measurement.name,
                    x=float(row[0]),
                    y=float(row[1]),
                    correct=True,
                    additional=True,
                )
            )
    return result
