"""§6.1: the "is this code human?" qualitative evaluation.

The paper runs a double-blind test with 15 volunteer OpenCL developers, each
judging 10 kernels as hand-written or machine-generated.  The control group
(CLSmith kernels vs GitHub kernels) scores ~96%; the CLgen group scores
~52% — no better than chance — with an even split of error directions.

Without human volunteers, the judging panel is simulated: each synthetic
judge scores how "human" a kernel looks by comparing its character-n-gram
profile with the profile of the human (GitHub) corpus, plus judge-specific
noise and bias.  CLSmith's tells (the single ``ulong*`` argument, hex
soup, ``safe_*`` wrappers) put it far outside the human profile, so the
simulated panel detects it almost perfectly; CLgen sits inside the profile,
so panel accuracy collapses to chance — the same mechanism the paper's
human result demonstrates.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.baselines.clsmith import generate_clsmith_kernels
from repro.corpus.corpus import Corpus
from repro.experiments.common import ExperimentConfig, build_clgen
from repro.preprocess.rewriter import CodeRewriter
from repro.synthesis.generator import CLgen


def _character_ngrams(text: str, order: int = 3) -> Counter:
    counts: Counter = Counter()
    for index in range(len(text) - order + 1):
        counts[text[index : index + order]] += 1
    return counts


def _profile_similarity(text: str, reference: Counter) -> float:
    """Cosine-like similarity between a kernel and the human-code profile."""
    grams = _character_ngrams(text)
    if not grams or not reference:
        return 0.0
    overlap = sum(min(count, reference.get(gram, 0)) for gram, count in grams.items())
    return overlap / sum(grams.values())


@dataclass
class JudgeDecision:
    """One kernel shown to one judge."""

    judge: int
    is_synthetic: bool
    judged_synthetic: bool

    @property
    def correct(self) -> bool:
        return self.is_synthetic == self.judged_synthetic


@dataclass
class TuringTestResult:
    """Scores of one judging panel against one generator."""

    generator: str
    decisions: list[JudgeDecision] = field(default_factory=list)

    @property
    def judge_scores(self) -> list[float]:
        scores = []
        judges = sorted({decision.judge for decision in self.decisions})
        for judge in judges:
            own = [d for d in self.decisions if d.judge == judge]
            scores.append(sum(d.correct for d in own) / len(own))
        return scores

    @property
    def mean_score(self) -> float:
        scores = self.judge_scores
        return sum(scores) / len(scores) if scores else 0.0

    @property
    def score_stdev(self) -> float:
        scores = self.judge_scores
        if len(scores) < 2:
            return 0.0
        mean = self.mean_score
        return (sum((s - mean) ** 2 for s in scores) / (len(scores) - 1)) ** 0.5

    @property
    def false_positives(self) -> int:
        """Synthetic kernels labelled human... no: human-labelled-synthetic errors."""
        return sum(1 for d in self.decisions if not d.is_synthetic and d.judged_synthetic)

    @property
    def false_negatives(self) -> int:
        """Synthetic kernels labelled as human-written."""
        return sum(1 for d in self.decisions if d.is_synthetic and not d.judged_synthetic)


@dataclass
class TuringExperimentResult:
    clgen: TuringTestResult
    control: TuringTestResult  # CLSmith


class SimulatedJudgePanel:
    """A panel of noisy judges calibrated against the human-code profile."""

    def __init__(self, human_corpus: list[str], judges: int = 15, kernels_per_judge: int = 10,
                 seed: int = 0, judge_noise: float = 0.08):
        self.human_corpus = human_corpus
        self.judges = judges
        self.kernels_per_judge = kernels_per_judge
        self.judge_noise = judge_noise
        self._rng = random.Random(seed)
        self._reference: Counter = Counter()
        for text in human_corpus:
            self._reference.update(_character_ngrams(text))
        # The decision threshold is calibrated on the human corpus itself: a
        # kernel whose similarity falls well below typical human code looks
        # machine-generated to the judge.
        similarities = [
            _profile_similarity(text, self._reference) for text in human_corpus[:200]
        ]
        similarities.sort()
        self._threshold = similarities[max(0, len(similarities) // 10)] if similarities else 0.5

    def evaluate(self, generator_name: str, synthetic_kernels: list[str]) -> TuringTestResult:
        """Show each judge a half/half shuffle of synthetic and human kernels."""
        result = TuringTestResult(generator=generator_name)
        humans = list(self.human_corpus)
        for judge in range(self.judges):
            bias = self._rng.gauss(0.0, self.judge_noise)
            shown: list[tuple[str, bool]] = []
            for _ in range(self.kernels_per_judge // 2):
                shown.append((self._rng.choice(synthetic_kernels), True))
                shown.append((self._rng.choice(humans), False))
            self._rng.shuffle(shown)
            for text, is_synthetic in shown:
                similarity = _profile_similarity(text, self._reference)
                noisy = similarity + self._rng.gauss(0.0, self.judge_noise) + bias
                judged_synthetic = noisy < self._threshold
                result.decisions.append(
                    JudgeDecision(
                        judge=judge, is_synthetic=is_synthetic, judged_synthetic=judged_synthetic
                    )
                )
        return result


def run_turing_test(
    config: ExperimentConfig | None = None,
    clgen: CLgen | None = None,
    judges: int = 15,
    kernels_per_judge: int = 10,
) -> TuringExperimentResult:
    """Regenerate the §6.1 experiment with the simulated judge panel."""
    config = config or ExperimentConfig()
    clgen = clgen or build_clgen(config)
    corpus: Corpus = clgen.corpus or Corpus.mine_and_build(
        repository_count=config.corpus_repository_count, seed=config.seed
    )

    human_pool = corpus.kernels
    clgen_kernels = [
        k.source for k in clgen.generate_kernels(
            max(10, config.synthetic_kernel_count // 2), seed=config.seed + 1
        ).kernels
    ]
    # The paper applies the code rewriter to *all* kernels shown to judges so
    # that naming style is not a giveaway; CLSmith kernels get the same pass.
    rewriter = CodeRewriter()
    clsmith_raw = generate_clsmith_kernels(max(10, config.synthetic_kernel_count // 2),
                                           seed=config.seed)
    clsmith_kernels = []
    for source in clsmith_raw:
        rewritten = rewriter.rewrite_or_none(source)
        clsmith_kernels.append(rewritten.text if rewritten else source)

    panel = SimulatedJudgePanel(
        human_corpus=human_pool,
        judges=judges,
        kernels_per_judge=kernels_per_judge,
        seed=config.seed,
    )
    clgen_result = panel.evaluate("CLgen", clgen_kernels or human_pool[:1])
    control_result = panel.evaluate("CLSmith", clsmith_kernels)
    return TuringExperimentResult(clgen=clgen_result, control=control_result)
