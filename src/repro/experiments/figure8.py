"""Figure 8: the extended model across all seven benchmark suites.

After the synthetic benchmarks exposed the sparsity of F3 and the missing
branch information (§8.2), the model is extended with the raw feature values
and a static branch count.  Figure 8 reports, per benchmark across all seven
suites, the speedup of the extended model's predicted mappings over the
original Grewe et al. model's predicted mappings (both trained with the
synthetic benchmarks); the paper's averages are 3.56× on AMD and 5.04× on
NVIDIA, with poor cases on loop-heavy programs (MatrixMul, cutcp,
pathfinder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentData,
    benchmark_name_of,
    measure_suites,
    synthesize_and_measure,
)
from repro.predictive.crossval import group_by_benchmark, leave_one_benchmark_out
from repro.predictive.metrics import geometric_mean
from repro.predictive.model import ExtendedModel, GreweModel


@dataclass
class Figure8Platform:
    """Per-benchmark speedups of the extended over the original model."""

    platform: str
    speedups_by_benchmark: dict[str, float] = field(default_factory=dict)
    grewe_vs_oracle: float = 0.0
    extended_vs_oracle: float = 0.0

    @property
    def average_speedup(self) -> float:
        return geometric_mean(list(self.speedups_by_benchmark.values()))

    def worst_benchmarks(self, count: int = 3) -> list[tuple[str, float]]:
        ranked = sorted(self.speedups_by_benchmark.items(), key=lambda kv: kv[1])
        return ranked[:count]


@dataclass
class Figure8Result:
    platforms: dict[str, Figure8Platform] = field(default_factory=dict)

    @property
    def overall_speedup(self) -> float:
        """Geometric mean across platforms (paper headline: 4.30× combined)."""
        values = [p.average_speedup for p in self.platforms.values() if p.average_speedup > 0]
        return geometric_mean(values)


def run_figure8(
    config: ExperimentConfig | None = None,
    data: ExperimentData | None = None,
    platforms: tuple[str, ...] = ("AMD", "NVIDIA"),
) -> Figure8Result:
    """Regenerate Figure 8."""
    config = config or ExperimentConfig()
    if data is None:
        data = measure_suites(config)
        data = synthesize_and_measure(config, data)
    elif not data.synthetic_measurements:
        data = synthesize_and_measure(config, data)

    all_measurements = data.all_suite_measurements
    grouped = group_by_benchmark(all_measurements, benchmark_name_of)

    result = Figure8Result()
    for platform in platforms:
        panel = Figure8Platform(platform=platform)
        grewe_cv = leave_one_benchmark_out(
            grouped, GreweModel, platform, extra_training=data.synthetic_measurements
        )
        extended_cv = leave_one_benchmark_out(
            grouped, ExtendedModel, platform, extra_training=data.synthetic_measurements
        )

        grewe_runtime_by_benchmark: dict[str, float] = {}
        extended_runtime_by_benchmark: dict[str, float] = {}
        oracle_runtime_by_benchmark: dict[str, float] = {}
        for outcome in grewe_cv.outcomes:
            benchmark = benchmark_name_of(outcome.measurement)
            grewe_runtime_by_benchmark[benchmark] = (
                grewe_runtime_by_benchmark.get(benchmark, 0.0) + outcome.predicted_runtime
            )
            oracle_runtime_by_benchmark[benchmark] = (
                oracle_runtime_by_benchmark.get(benchmark, 0.0) + outcome.oracle_runtime
            )
        for outcome in extended_cv.outcomes:
            benchmark = benchmark_name_of(outcome.measurement)
            extended_runtime_by_benchmark[benchmark] = (
                extended_runtime_by_benchmark.get(benchmark, 0.0) + outcome.predicted_runtime
            )

        for benchmark, grewe_runtime in grewe_runtime_by_benchmark.items():
            extended_runtime = extended_runtime_by_benchmark.get(benchmark)
            if extended_runtime is None or extended_runtime <= 0:
                continue
            panel.speedups_by_benchmark[benchmark] = grewe_runtime / extended_runtime

        total_oracle = sum(oracle_runtime_by_benchmark.values()) or 1.0
        panel.grewe_vs_oracle = total_oracle / (sum(grewe_runtime_by_benchmark.values()) or 1.0)
        panel.extended_vs_oracle = total_oracle / (
            sum(extended_runtime_by_benchmark.values()) or 1.0
        )
        result.platforms[platform] = panel
    return result
