"""Shared infrastructure for the experiment harness.

Every table/figure module needs the same raw material: measurements of the
benchmark-suite kernels across their datasets, and measurements of a pool of
CLgen-synthesized kernels to augment training sets with.  This module builds
both, with a configurable scale knob so unit tests can run in seconds while
the benchmark harness regenerates the full-size experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.corpus.corpus import Corpus
from repro.driver.harness import DriverConfig, HostDriver, KernelMeasurement
from repro.suites.registry import Benchmark, all_suites
from repro.synthesis.generator import CLgen, SynthesisResult
from repro.synthesis.sampler import SamplerConfig


@dataclass
class ExperimentConfig:
    """Scale knobs shared by all experiments."""

    executed_global_size: int = 128
    local_size: int = 32
    synthetic_kernel_count: int = 100
    corpus_repository_count: int = 80
    ngram_order: int = 12
    sampler_temperature: float = 0.6
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A configuration small enough for unit tests."""
        return cls(
            executed_global_size=64,
            local_size=32,
            synthetic_kernel_count=20,
            corpus_repository_count=30,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The configuration used by the benchmark harness (EXPERIMENTS.md)."""
        return cls(
            executed_global_size=128,
            local_size=32,
            synthetic_kernel_count=1000,
            corpus_repository_count=150,
        )


@dataclass
class ExperimentData:
    """Measurements shared across experiments."""

    config: ExperimentConfig
    suite_measurements: dict[str, list[KernelMeasurement]] = field(default_factory=dict)
    benchmark_measurements: dict[str, list[KernelMeasurement]] = field(default_factory=dict)
    synthetic_measurements: list[KernelMeasurement] = field(default_factory=list)
    synthesis: SynthesisResult | None = None
    corpus: Corpus | None = None

    @property
    def all_suite_measurements(self) -> list[KernelMeasurement]:
        out: list[KernelMeasurement] = []
        for measurements in self.suite_measurements.values():
            out.extend(measurements)
        return out


def make_driver(config: ExperimentConfig) -> HostDriver:
    return HostDriver(
        config=DriverConfig(
            executed_global_size=config.executed_global_size,
            local_size=config.local_size,
            payload_seed=config.seed,
        )
    )


def measure_benchmark(driver: HostDriver, benchmark: Benchmark) -> list[KernelMeasurement]:
    """Measure one benchmark across all of its datasets."""
    measurements = []
    for dataset in benchmark.datasets:
        measurement = driver.measure_source(
            benchmark.source,
            name=f"{benchmark.qualified_name}.{dataset.name}",
            dataset_scale=dataset.scale,
        )
        if measurement is not None:
            measurements.append(measurement)
    return measurements


def measure_suites(config: ExperimentConfig, suites: list[str] | None = None) -> ExperimentData:
    """Measure every benchmark of the selected suites (all seven by default)."""
    driver = make_driver(config)
    data = ExperimentData(config=config)
    for suite in all_suites():
        if suites is not None and suite.name not in suites:
            continue
        suite_measurements: list[KernelMeasurement] = []
        for benchmark in suite.benchmarks:
            measurements = measure_benchmark(driver, benchmark)
            if measurements:
                data.benchmark_measurements[benchmark.qualified_name] = measurements
                suite_measurements.extend(measurements)
        data.suite_measurements[suite.name] = suite_measurements
    return data


def _record_timing(timings: dict[str, float] | None, phase: str, seconds: float) -> None:
    if timings is not None:
        timings[phase] = timings.get(phase, 0.0) + seconds


def build_clgen(config: ExperimentConfig, timings: dict[str, float] | None = None) -> CLgen:
    """Mine the synthetic GitHub corpus and train a CLgen instance.

    When *timings* is given, wall-clock seconds for the ``preprocess`` and
    ``train`` phases are accumulated into it (used by the benchmark harness
    to emit its per-phase perf snapshot).
    """
    started = time.perf_counter()
    corpus = Corpus.mine_and_build(
        repository_count=config.corpus_repository_count, seed=config.seed
    )
    _record_timing(timings, "preprocess", time.perf_counter() - started)

    started = time.perf_counter()
    clgen = CLgen.from_corpus(
        corpus,
        backend="ngram",
        ngram_order=config.ngram_order,
        sampler_config=SamplerConfig(temperature=config.sampler_temperature),
    )
    _record_timing(timings, "train", time.perf_counter() - started)
    return clgen


def synthesize_and_measure(
    config: ExperimentConfig,
    data: ExperimentData,
    clgen: CLgen | None = None,
    count: int | None = None,
    timings: dict[str, float] | None = None,
) -> ExperimentData:
    """Generate CLgen kernels and measure them as training-only observations.

    When *timings* is given, wall-clock seconds for the ``sample`` (kernel
    synthesis) and ``execute`` (driver measurement) phases are accumulated
    into it.
    """
    clgen = clgen or build_clgen(config, timings=timings)
    count = count or config.synthetic_kernel_count

    started = time.perf_counter()
    result = clgen.generate_kernels(count, seed=config.seed, max_attempts_per_kernel=40)
    _record_timing(timings, "sample", time.perf_counter() - started)

    started = time.perf_counter()
    driver = make_driver(config)
    # The paper's host driver synthesizes payloads spanning 128B–130MB; give
    # the synthetic kernels a spread of dataset scales for the same effect.
    # measure_many measures sequentially by default and fans out over a
    # process pool when REPRO_MEASURE_WORKERS (or measure_workers) is set.
    scales = [4.0, 16.0, 64.0, 256.0, 1024.0]
    measurements = driver.measure_many(
        [kernel.source for kernel in result.kernels],
        names=[f"clgen.{index}" for index in range(len(result.kernels))],
        dataset_scales=[scales[index % len(scales)] for index in range(len(result.kernels))],
    )
    _record_timing(timings, "execute", time.perf_counter() - started)

    data.synthesis = result
    data.synthetic_measurements = measurements
    data.corpus = clgen.corpus
    return data


def benchmark_name_of(measurement: KernelMeasurement) -> str:
    """Strip the dataset suffix: ``"NPB.FT.A"`` → ``"NPB.FT"``."""
    parts = measurement.name.split(".")
    if len(parts) >= 3:
        return ".".join(parts[:2])
    return measurement.name
