"""Shared infrastructure for the experiment harness.

Every table/figure module needs the same raw material: measurements of the
benchmark-suite kernels across their datasets, and measurements of a pool of
CLgen-synthesized kernels to augment training sets with.  This module builds
both, with a configurable scale knob so unit tests can run in seconds while
the benchmark harness regenerates the full-size experiments.

All the heavy lifting is routed through the pipeline stage graph
(:mod:`repro.store.stages`): each phase — mine, preprocess, train, sample,
execute — persists its artifact to the content-addressed store, so repeat
invocations (a second ``python -m repro experiments``, a re-run of the bench
harness against the same ``REPRO_STORE_DIR``) reuse every stage whose
fingerprint still matches and recompute only downstream of a change.

Every helper takes an optional ``runner=``; without one it falls back to
:func:`repro.store.stages.default_runner`, whose shard plan comes from the
``REPRO_SHARDS`` / ``REPRO_WORKERS`` environment knobs — set those (or pass
a ``PipelineRunner(shards=..., workers=...)``) and the data-parallel stages
resolve as per-range shard artifacts that a process pool (or several
machines sharing one ``REPRO_STORE_DIR``) fills concurrently, with results
bit-identical to an unsharded run (see :mod:`repro.store.shards`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.corpus.corpus import Corpus
from repro.driver.harness import DriverConfig, HostDriver, KernelMeasurement
from repro.store.stages import (
    PipelineConfig,
    PipelineRunner,
    default_runner,
    model_fingerprint,
)
from repro.suites.registry import Benchmark
from repro.synthesis.generator import CLgen, SynthesisResult


@dataclass
class ExperimentConfig:
    """Scale knobs shared by all experiments."""

    executed_global_size: int = 128
    local_size: int = 32
    synthetic_kernel_count: int = 100
    corpus_repository_count: int = 80
    ngram_order: int = 12
    sampler_temperature: float = 0.6
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A configuration small enough for unit tests."""
        return cls(
            executed_global_size=64,
            local_size=32,
            synthetic_kernel_count=20,
            corpus_repository_count=30,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The configuration used by the benchmark harness (EXPERIMENTS.md)."""
        return cls(
            executed_global_size=128,
            local_size=32,
            synthetic_kernel_count=1000,
            corpus_repository_count=150,
        )


@dataclass
class ExperimentData:
    """Measurements shared across experiments."""

    config: ExperimentConfig
    suite_measurements: dict[str, list[KernelMeasurement]] = field(default_factory=dict)
    benchmark_measurements: dict[str, list[KernelMeasurement]] = field(default_factory=dict)
    synthetic_measurements: list[KernelMeasurement] = field(default_factory=list)
    synthesis: SynthesisResult | None = None
    corpus: Corpus | None = None

    @property
    def all_suite_measurements(self) -> list[KernelMeasurement]:
        out: list[KernelMeasurement] = []
        for measurements in self.suite_measurements.values():
            out.extend(measurements)
        return out


def make_driver(config: ExperimentConfig) -> HostDriver:
    return HostDriver(
        config=DriverConfig(
            executed_global_size=config.executed_global_size,
            local_size=config.local_size,
            payload_seed=config.seed,
        )
    )


def measure_benchmark(driver: HostDriver, benchmark: Benchmark) -> list[KernelMeasurement]:
    """Measure one benchmark across all of its datasets."""
    return driver.measure_benchmark(benchmark)


def _merge_timings(timings: dict[str, float] | None, phases: dict[str, float]) -> None:
    if timings is None:
        return
    for phase, seconds in phases.items():
        timings[phase] = timings.get(phase, 0.0) + seconds


def measure_suites(
    config: ExperimentConfig,
    suites: list[str] | None = None,
    runner: PipelineRunner | None = None,
    timings: dict[str, float] | None = None,
) -> ExperimentData:
    """Measure every benchmark of the selected suites (all seven by default).

    Served from the artifact store when a matching ``execute`` artifact
    exists; measured (and stored) otherwise.
    """
    runner = runner or default_runner()
    stage_config = PipelineConfig.from_experiment(config, suites=suites)
    mark = runner.mark()
    measured = runner.suite_measurements(stage_config)
    _merge_timings(timings, runner.phase_seconds(mark))
    data = ExperimentData(config=config)
    data.suite_measurements = measured.suite_measurements
    data.benchmark_measurements = measured.benchmark_measurements
    return data


def build_clgen(
    config: ExperimentConfig,
    timings: dict[str, float] | None = None,
    runner: PipelineRunner | None = None,
) -> CLgen:
    """Mine the synthetic GitHub corpus and train a CLgen instance.

    The corpus and the trained model resolve through the ``mine`` →
    ``preprocess`` → ``train`` stages, so a store-backed repeat skips the
    mining and training entirely.  When *timings* is given, wall-clock
    seconds for the ``preprocess`` and ``train`` phases are accumulated into
    it (used by the benchmark harness to emit its per-phase perf snapshot).
    """
    runner = runner or default_runner()
    stage_config = PipelineConfig.from_experiment(config)
    mark = runner.mark()
    clgen = runner.clgen(stage_config)
    _merge_timings(timings, runner.phase_seconds(mark))
    return clgen


def synthesize_and_measure(
    config: ExperimentConfig,
    data: ExperimentData,
    clgen: CLgen | None = None,
    count: int | None = None,
    timings: dict[str, float] | None = None,
    runner: PipelineRunner | None = None,
) -> ExperimentData:
    """Generate CLgen kernels and measure them as training-only observations.

    Both the kernel batch (``sample`` stage) and its measurements
    (``execute`` stage) are store artifacts.  When *timings* is given,
    wall-clock seconds for the ``sample`` and ``execute`` phases are
    accumulated into it.

    A *clgen* built by :func:`build_clgen` (or any stage-graph product) is
    recognized by its model fingerprint and resolved through the store.  An
    ad-hoc synthesizer — one whose model does not correspond to *config*,
    e.g. a test fixture trained on a different corpus — keeps the direct
    (un-stored) path, since its inputs have no stage fingerprint.
    """
    runner = runner or default_runner()
    # The paper's host driver synthesizes payloads spanning 128B–130MB; the
    # default dataset_scales spread gives the synthetic kernels the same
    # effect.  measure_many inside the execute stage fans out over a process
    # pool when REPRO_MEASURE_WORKERS (or measure_workers) is set.
    stage_config = PipelineConfig.from_experiment(config, count=count)
    if clgen is not None and (
        getattr(clgen, "stage_model_fingerprint", None) != model_fingerprint(stage_config)
    ):
        return _synthesize_and_measure_direct(config, data, clgen, stage_config, timings)

    mark = runner.mark()
    result = runner.synthesis(stage_config)
    measurements = runner.synthetic_measurements(stage_config)
    # Resolve the corpus inside the timed slice so its (usually live/memory)
    # lookup is accounted to the preprocess phase rather than hidden.
    corpus = clgen.corpus if clgen is not None else runner.corpus(stage_config)
    _merge_timings(timings, runner.phase_seconds(mark))

    data.synthesis = result
    data.synthetic_measurements = measurements
    data.corpus = corpus
    return data


def _synthesize_and_measure_direct(
    config: ExperimentConfig,
    data: ExperimentData,
    clgen: CLgen,
    stage_config: PipelineConfig,
    timings: dict[str, float] | None,
) -> ExperimentData:
    """The store-less path for synthesizers with no stage fingerprint."""
    started = time.perf_counter()
    result = clgen.generate_kernels(
        stage_config.synthetic_kernel_count,
        seed=stage_config.sample_seed,
        max_attempts_per_kernel=stage_config.max_attempts_per_kernel,
    )
    _merge_timings(timings, {"sample": time.perf_counter() - started})

    started = time.perf_counter()
    driver = make_driver(config)
    scales = stage_config.dataset_scales
    measurements = driver.measure_many(
        [kernel.source for kernel in result.kernels],
        names=[f"clgen.{index}" for index in range(len(result.kernels))],
        dataset_scales=[scales[index % len(scales)] for index in range(len(result.kernels))],
    )
    _merge_timings(timings, {"execute": time.perf_counter() - started})

    data.synthesis = result
    data.synthetic_measurements = measurements
    data.corpus = clgen.corpus
    return data


def benchmark_name_of(measurement: KernelMeasurement) -> str:
    """Strip the dataset suffix: ``"NPB.FT.A"`` → ``"NPB.FT"``."""
    parts = measurement.name.split(".")
    if len(parts) >= 3:
        return ".".join(parts[:2])
    return measurement.name
