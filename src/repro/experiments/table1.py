"""Table 1: cross-suite generalisation of the Grewe et al. model.

For every ordered pair of suites (train on X, test on Y, X ≠ Y) the baseline
model is trained on X's observations and evaluated on Y's, reporting the
percentage of the oracle performance achieved on the AMD platform.  The
paper's headline: cross-suite performance is generally poor (best column
average 49%, worst single cell 11.5%), demonstrating that heuristics learned
on one suite fail to generalise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentConfig, ExperimentData, measure_suites
from repro.predictive.crossval import train_test_split_evaluation
from repro.predictive.metrics import performance_relative_to_oracle
from repro.predictive.model import GreweModel


@dataclass
class Table1Result:
    """The cross-suite matrix (values are fractions of oracle performance)."""

    platform: str
    suites: list[str]
    matrix: dict[str, dict[str, float]] = field(default_factory=dict)

    def cell(self, train_suite: str, test_suite: str) -> float:
        return self.matrix[train_suite][test_suite]

    def column_average(self, train_suite: str) -> float:
        """Average generalisation when training on *train_suite*."""
        values = [
            value
            for test_suite, value in self.matrix[train_suite].items()
            if test_suite != train_suite
        ]
        return sum(values) / len(values) if values else 0.0

    def best_training_suite(self) -> tuple[str, float]:
        """The suite whose models transfer best (paper: NVIDIA SDK, 49%)."""
        best = max(self.suites, key=self.column_average)
        return best, self.column_average(best)

    def worst_cell(self) -> tuple[str, str, float]:
        """The worst train/test pair (paper: Parboil→Polybench, 11.5%)."""
        worst = (self.suites[0], self.suites[1], 1.0)
        for train_suite in self.suites:
            for test_suite in self.suites:
                if train_suite == test_suite:
                    continue
                value = self.matrix[train_suite][test_suite]
                if value < worst[2]:
                    worst = (train_suite, test_suite, value)
        return worst

    def rows(self) -> list[list[str]]:
        """Render the table as rows of strings (training suites as columns)."""
        header = ["test \\ train"] + self.suites
        body = []
        for test_suite in self.suites:
            row = [test_suite]
            for train_suite in self.suites:
                if train_suite == test_suite:
                    row.append("-")
                else:
                    row.append(f"{self.matrix[train_suite][test_suite] * 100:.1f}%")
            body.append(row)
        return [header] + body


def run_table1(
    config: ExperimentConfig | None = None,
    data: ExperimentData | None = None,
    platform: str = "AMD",
) -> Table1Result:
    """Regenerate Table 1."""
    config = config or ExperimentConfig()
    data = data or measure_suites(config)
    suites = [name for name, measurements in data.suite_measurements.items() if measurements]
    result = Table1Result(platform=platform, suites=suites)

    for train_suite in suites:
        result.matrix[train_suite] = {}
        train_measurements = data.suite_measurements[train_suite]
        for test_suite in suites:
            if test_suite == train_suite:
                result.matrix[train_suite][test_suite] = 1.0
                continue
            test_measurements = data.suite_measurements[test_suite]
            evaluation = train_test_split_evaluation(
                train_measurements, test_measurements, GreweModel, platform
            )
            result.matrix[train_suite][test_suite] = performance_relative_to_oracle(
                evaluation.outcomes
            )
    return result
