"""Figure 9: feature-space matches for GitHub, CLSmith and CLgen kernels.

For growing numbers of generated kernels, count how many have static code
features (Table 2a plus the branch feature) identical to those of at least
one benchmark kernel.  The paper finds that over a third of 10,000 unique
CLgen kernels match a benchmark's feature values (≈14 matching CLgen kernels
per benchmark on average), GitHub kernels match too but are finite, and only
0.53% of CLSmith kernels match anything — CLgen is the only generator that
both targets the right region of the space and is unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.clsmith import generate_clsmith_kernels
from repro.experiments.common import ExperimentConfig, ExperimentData, build_clgen, measure_suites
from repro.features.static_features import StaticFeatures, extract_static_features
from repro.suites.registry import all_benchmarks
from repro.synthesis.generator import CLgen


@dataclass
class Figure9Series:
    """One curve of the figure: matches as a function of #kernels."""

    label: str
    kernel_counts: list[int] = field(default_factory=list)
    match_counts: list[int] = field(default_factory=list)

    @property
    def final_match_fraction(self) -> float:
        if not self.kernel_counts or self.kernel_counts[-1] == 0:
            return 0.0
        return self.match_counts[-1] / self.kernel_counts[-1]


@dataclass
class Figure9Result:
    series: dict[str, Figure9Series] = field(default_factory=dict)
    benchmark_feature_count: int = 0
    matches_per_benchmark: float = 0.0

    def fraction(self, label: str) -> float:
        return self.series[label].final_match_fraction


def _benchmark_feature_set() -> set[tuple[int, int, int, int, int]]:
    """The set of (comp, mem, localmem, coalesced, branches) tuples of the suites."""
    signatures: set[tuple[int, int, int, int, int]] = set()
    for benchmark in all_benchmarks():
        features = extract_static_features(benchmark.source)
        if features is not None:
            signatures.add(features.as_extended_tuple())
    return signatures


def _count_matches(
    sources: list[str], signatures: set[tuple[int, int, int, int, int]], points: int = 10
) -> Figure9Series:
    series = Figure9Series(label="")
    matches = 0
    step = max(1, len(sources) // points) if sources else 1
    matched_flags: list[bool] = []
    for source in sources:
        features = extract_static_features(source)
        matched = features is not None and features.as_extended_tuple() in signatures
        matched_flags.append(matched)
    for cut in range(step, len(sources) + 1, step):
        matches = sum(matched_flags[:cut])
        series.kernel_counts.append(cut)
        series.match_counts.append(matches)
    if not series.kernel_counts and sources:
        series.kernel_counts.append(len(sources))
        series.match_counts.append(sum(matched_flags))
    return series


def run_figure9(
    config: ExperimentConfig | None = None,
    clgen: CLgen | None = None,
    kernel_count: int | None = None,
) -> Figure9Result:
    """Regenerate Figure 9.

    ``kernel_count`` controls the number of kernels drawn from each
    generator (the paper uses 10,000 for CLgen/CLSmith and the full GitHub
    corpus; the default follows the experiment config's synthetic count).
    """
    config = config or ExperimentConfig()
    count = kernel_count or config.synthetic_kernel_count
    signatures = _benchmark_feature_set()

    clgen = clgen or build_clgen(config)
    clgen_sources = [k.source for k in clgen.generate_kernels(count, seed=config.seed).kernels]
    github_sources = list(clgen.corpus.kernels) if clgen.corpus else []
    clsmith_sources = generate_clsmith_kernels(count, seed=config.seed)

    result = Figure9Result(benchmark_feature_count=len(signatures))
    for label, sources in (
        ("GitHub", github_sources),
        ("CLSmith", clsmith_sources),
        ("CLgen", clgen_sources),
    ):
        series = _count_matches(sources, signatures)
        series.label = label
        result.series[label] = series

    benchmark_count = len(all_benchmarks()) or 1
    clgen_matches = result.series["CLgen"].match_counts[-1] if result.series["CLgen"].match_counts else 0
    result.matches_per_benchmark = clgen_matches / benchmark_count
    return result
