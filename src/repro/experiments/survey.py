"""Figure 2: the GPGPU benchmark-usage survey.

The paper surveys 25 GPGPU performance-tuning papers from CGO, HiPC, PACT
and PPoPP (2013–2016), finds an average of 17 benchmarks used per paper, and
plots the average number of benchmarks per paper by suite of origin.  The
survey data itself is embedded here (one record per surveyed paper, with the
number of benchmarks drawn from each suite), and the figure's series is
recomputed from it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SurveyedPaper:
    """One surveyed paper: venue, year and per-suite benchmark counts."""

    venue: str
    year: int
    benchmarks_by_suite: dict[str, int]

    @property
    def total_benchmarks(self) -> int:
        return sum(self.benchmarks_by_suite.values())


#: Suites in the order Figure 2 plots them.
FIGURE2_SUITES = [
    "Rodinia",
    "NVIDIA SDK",
    "AMD SDK",
    "Parboil",
    "NAS",
    "Polybench",
    "SHOC",
    "Ad-hoc",
    "ISPASS",
    "Ploybench",
    "Lonestar",
    "SPEC-Viewperf",
    "MARS",
    "GPGPUsim",
]

#: The 25 surveyed papers.  Counts are reconstructed so that the per-suite
#: averages and the "17 benchmarks per paper on average" headline match the
#: published figure.
SURVEYED_PAPERS: list[SurveyedPaper] = [
    SurveyedPaper("CGO", 2013, {"Rodinia": 10, "NVIDIA SDK": 6, "AMD SDK": 4, "Parboil": 4}),
    SurveyedPaper("CGO", 2013, {"NVIDIA SDK": 8, "AMD SDK": 6, "SHOC": 3}),
    SurveyedPaper("PACT", 2013, {"Rodinia": 12, "Parboil": 6, "Polybench": 4}),
    SurveyedPaper("PPoPP", 2013, {"Rodinia": 8, "NAS": 7, "Ad-hoc": 3}),
    SurveyedPaper("HiPC", 2013, {"AMD SDK": 8, "NVIDIA SDK": 6, "ISPASS": 3}),
    SurveyedPaper("CGO", 2014, {"Rodinia": 9, "Parboil": 5, "SHOC": 4, "Lonestar": 2}),
    SurveyedPaper("PACT", 2014, {"Rodinia": 7, "NVIDIA SDK": 7, "Polybench": 6}),
    SurveyedPaper("PPoPP", 2014, {"NAS": 8, "Rodinia": 6, "Ad-hoc": 4}),
    SurveyedPaper("HiPC", 2014, {"AMD SDK": 10, "NVIDIA SDK": 5, "MARS": 2}),
    SurveyedPaper("CGO", 2014, {"Parboil": 8, "Rodinia": 6, "Polybench": 5}),
    SurveyedPaper("PACT", 2014, {"NVIDIA SDK": 9, "SHOC": 5, "ISPASS": 3}),
    SurveyedPaper("PPoPP", 2015, {"Rodinia": 11, "NAS": 6, "Parboil": 3}),
    SurveyedPaper("HiPC", 2015, {"AMD SDK": 7, "Polybench": 6, "Ad-hoc": 3}),
    SurveyedPaper("CGO", 2015, {"Rodinia": 8, "NVIDIA SDK": 6, "SHOC": 4}),
    SurveyedPaper("PACT", 2015, {"Parboil": 7, "Rodinia": 5, "Lonestar": 3, "GPGPUsim": 2}),
    SurveyedPaper("PPoPP", 2015, {"NAS": 9, "Polybench": 5, "Ad-hoc": 2}),
    SurveyedPaper("HiPC", 2015, {"NVIDIA SDK": 8, "AMD SDK": 6, "ISPASS": 2}),
    SurveyedPaper("CGO", 2016, {"Rodinia": 10, "Parboil": 4, "SHOC": 4, "Ploybench": 3}),
    SurveyedPaper("PACT", 2016, {"Rodinia": 9, "NVIDIA SDK": 5, "Polybench": 4}),
    SurveyedPaper("PPoPP", 2016, {"NAS": 7, "Rodinia": 7, "SPEC-Viewperf": 2}),
    SurveyedPaper("HiPC", 2016, {"AMD SDK": 9, "NVIDIA SDK": 4, "MARS": 1}),
    SurveyedPaper("CGO", 2016, {"Parboil": 6, "Polybench": 6, "Ploybench": 2, "Ad-hoc": 3}),
    SurveyedPaper("PACT", 2016, {"Rodinia": 8, "SHOC": 6, "GPGPUsim": 1}),
    SurveyedPaper("PPoPP", 2016, {"NAS": 8, "Rodinia": 5, "Lonestar": 2, "Ad-hoc": 2}),
    SurveyedPaper("HiPC", 2016, {"NVIDIA SDK": 7, "AMD SDK": 5, "SPEC-Viewperf": 1}),
]


def average_benchmarks_per_paper() -> float:
    """The headline number: the average paper uses ~17 benchmarks."""
    if not SURVEYED_PAPERS:
        return 0.0
    return sum(paper.total_benchmarks for paper in SURVEYED_PAPERS) / len(SURVEYED_PAPERS)


def figure2_series() -> dict[str, float]:
    """Average number of benchmarks per paper, by suite (the Figure 2 bars)."""
    totals = {suite: 0 for suite in FIGURE2_SUITES}
    for paper in SURVEYED_PAPERS:
        for suite, count in paper.benchmarks_by_suite.items():
            totals[suite] = totals.get(suite, 0) + count
    papers = len(SURVEYED_PAPERS) or 1
    return {suite: totals.get(suite, 0) / papers for suite in FIGURE2_SUITES}


def most_popular_suites(count: int = 7) -> list[str]:
    """The *count* most used suites (the paper evaluates on the top seven)."""
    series = figure2_series()
    return [suite for suite, _ in sorted(series.items(), key=lambda kv: -kv[1])[:count]]


def coverage_of_top_suites(count: int = 7) -> float:
    """Fraction of surveyed benchmark uses covered by the top *count* suites.

    The paper reports that the seven most popular suites account for 92% of
    results.
    """
    series = figure2_series()
    top = set(most_popular_suites(count))
    total = sum(series.values()) or 1.0
    covered = sum(value for suite, value in series.items() if suite in top)
    return covered / total
