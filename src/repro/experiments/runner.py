"""Run every experiment and render a textual report.

``python -m repro experiments`` (or the benchmark harness) uses this module
to regenerate the paper's tables and figures in one pass and to produce the
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentData,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)
from repro.experiments.corpus_stats import CorpusStatsResult, run_corpus_stats
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.survey import (
    average_benchmarks_per_paper,
    coverage_of_top_suites,
    figure2_series,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.turing import TuringExperimentResult, run_turing_test
from repro.suites.registry import suite_summary


@dataclass
class FullReport:
    """Results of every experiment in the paper's evaluation."""

    config: ExperimentConfig
    corpus_stats: CorpusStatsResult
    table1: Table1Result
    figure3: Figure3Result
    figure7: Figure7Result
    figure8: Figure8Result
    figure9: Figure9Result
    turing: TuringExperimentResult

    def render(self) -> str:
        """A human-readable summary of every reproduced artifact."""
        out = io.StringIO()
        write = out.write

        write("== Figure 2: benchmark-usage survey ==\n")
        write(f"average benchmarks per paper: {average_benchmarks_per_paper():.1f} (paper: 17)\n")
        write(
            f"top-7 suites account for {coverage_of_top_suites() * 100:.0f}% of uses (paper: 92%)\n"
        )
        for suite, value in figure2_series().items():
            write(f"  {suite:15s} {value:4.2f}\n")

        write("\n== Table 3: benchmark inventory ==\n")
        for row in suite_summary():
            write(f"  {row['suite']:12s} {row['benchmarks']:3d} benchmarks {row['kernels']:4d} kernels\n")

        write("\n== Corpus statistics (section 4.1) ==\n")
        stats = self.corpus_stats
        write(f"repositories mined: {stats.repositories}\n")
        write(f"content files: {stats.content_files} ({stats.content_lines} lines)\n")
        write(
            f"discard rate: {stats.discard_rate_without_shim * 100:.1f}% without shim -> "
            f"{stats.discard_rate_with_shim * 100:.1f}% with shim (paper: 40% -> 32%)\n"
        )
        write(f"corpus: {stats.corpus_kernels} kernels, {stats.corpus_lines} lines\n")
        write(
            f"identifier-rewriting vocabulary reduction: "
            f"{stats.vocabulary_reduction * 100:.0f}% (paper: 84%)\n"
        )

        write("\n== Table 1: cross-suite generalisation (AMD) ==\n")
        for row in self.table1.rows():
            write("  " + "  ".join(f"{cell:>12s}" for cell in row) + "\n")
        best_suite, best_value = self.table1.best_training_suite()
        worst = self.table1.worst_cell()
        write(f"best training suite: {best_suite} ({best_value * 100:.0f}% of oracle; paper: NVIDIA SDK 49%)\n")
        write(
            f"worst pair: {worst[0]} -> {worst[1]} ({worst[2] * 100:.1f}%; paper: Parboil -> Polybench 11.5%)\n"
        )

        write("\n== Figure 3: Parboil feature space ==\n")
        write(
            f"accuracy before adding neighbours: {self.figure3.accuracy_before * 100:.0f}%, "
            f"after: {self.figure3.accuracy_after * 100:.0f}%\n"
        )

        write("\n== Section 6.1: Turing test ==\n")
        write(
            f"control (CLSmith) judge accuracy: {self.turing.control.mean_score * 100:.0f}% "
            f"(stdev {self.turing.control.score_stdev * 100:.0f}%; paper: 96% / 9%)\n"
        )
        write(
            f"CLgen judge accuracy: {self.turing.clgen.mean_score * 100:.0f}% "
            f"(stdev {self.turing.clgen.score_stdev * 100:.0f}%; paper: 52% / 17%)\n"
        )

        write("\n== Figure 7: Grewe model +/- CLgen on NPB ==\n")
        for platform, panel in self.figure7.platforms.items():
            write(
                f"  {platform}: baseline {panel.baseline_average:.2f}x -> with CLgen "
                f"{panel.with_clgen_average:.2f}x over {panel.static_device}-only "
                f"(improved on {panel.fraction_improved * 100:.0f}% of observations)\n"
            )
        write(f"  overall improvement: {self.figure7.overall_improvement:.2f}x (paper: 1.27x)\n")

        write("\n== Figure 8: extended model over Grewe model, all suites ==\n")
        for platform, panel in self.figure8.platforms.items():
            write(
                f"  {platform}: extended/original speedup {panel.average_speedup:.2f}x "
                f"(paper: {'3.56x' if platform == 'AMD' else '5.04x'})\n"
            )
        write(f"  combined: {self.figure8.overall_speedup:.2f}x (paper: 4.30x)\n")

        write("\n== Figure 9: feature-space matches ==\n")
        for label, series in self.figure9.series.items():
            final = series.match_counts[-1] if series.match_counts else 0
            total = series.kernel_counts[-1] if series.kernel_counts else 0
            write(
                f"  {label:8s}: {final}/{total} kernels match a benchmark's static features "
                f"({series.final_match_fraction * 100:.1f}%)\n"
            )
        write(
            f"  CLgen matches per benchmark: {self.figure9.matches_per_benchmark:.1f} (paper: ~14)\n"
        )
        return out.getvalue()


def run_all(config: ExperimentConfig | None = None, runner=None) -> FullReport:
    """Run every experiment with shared measurements and one CLgen instance.

    *runner* is an optional :class:`repro.store.PipelineRunner`; the heavy
    inputs resolve through its artifact store, so a second run against the
    same store reuses every unchanged stage.
    """
    config = config or ExperimentConfig()
    data: ExperimentData = measure_suites(config, runner=runner)
    clgen = build_clgen(config, runner=runner)
    data = synthesize_and_measure(config, data, clgen=clgen, runner=runner)

    return FullReport(
        config=config,
        corpus_stats=run_corpus_stats(config),
        table1=run_table1(config, data),
        figure3=run_figure3(config, data),
        figure7=run_figure7(config, data),
        figure8=run_figure8(config, data),
        figure9=run_figure9(config, clgen=clgen),
        turing=run_turing_test(config, clgen=clgen),
    )
