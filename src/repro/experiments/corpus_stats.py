"""§4.1 corpus statistics: mining, shim ablation, rewriting.

Regenerates the corpus-assembly numbers the paper reports: content files and
line counts mined, the discard rate with and without the shim header
(paper: 40% → 32%), the final corpus size and kernel count, and the
vocabulary reduction achieved by identifier rewriting (paper: 84%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.corpus import Corpus
from repro.corpus.github import GitHubMiner
from repro.experiments.common import ExperimentConfig
from repro.preprocess.pipeline import PreprocessingPipeline


@dataclass
class CorpusStatsResult:
    """All §4.1 numbers for one mining scale."""

    repositories: int
    content_files: int
    content_lines: int
    discard_rate_with_shim: float
    discard_rate_without_shim: float
    corpus_kernels: int
    corpus_lines: int
    vocabulary_reduction: float
    rejection_reasons: dict[str, int]

    @property
    def shim_recovered_fraction(self) -> float:
        """How much of the discard rate the shim recovers."""
        return self.discard_rate_without_shim - self.discard_rate_with_shim


def run_corpus_stats(config: ExperimentConfig | None = None) -> CorpusStatsResult:
    """Regenerate the §4.1 statistics at the configured mining scale."""
    config = config or ExperimentConfig()
    mining = GitHubMiner(seed=config.seed).mine(config.corpus_repository_count)
    texts = [cf.text for cf in mining.content_files]

    with_shim = PreprocessingPipeline(use_shim=True).run(texts)
    without_shim = PreprocessingPipeline(use_shim=False).run(texts)
    corpus = Corpus(
        kernels=Corpus._deduplicate(with_shim.corpus_texts),
        statistics=with_shim.statistics,
        content_files=texts,
    )

    return CorpusStatsResult(
        repositories=len(mining.repositories),
        content_files=with_shim.statistics.content_files,
        content_lines=with_shim.statistics.content_lines,
        discard_rate_with_shim=with_shim.statistics.discard_rate,
        discard_rate_without_shim=without_shim.statistics.discard_rate,
        corpus_kernels=corpus.size,
        corpus_lines=with_shim.statistics.rewritten_lines,
        vocabulary_reduction=with_shim.statistics.vocabulary_reduction,
        rejection_reasons=dict(with_shim.statistics.rejection_reasons),
    )
