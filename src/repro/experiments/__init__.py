"""``repro.experiments`` — per-table/figure regeneration harness."""

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentData,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)
from repro.experiments.corpus_stats import CorpusStatsResult, run_corpus_stats
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.runner import FullReport, run_all
from repro.experiments.survey import (
    average_benchmarks_per_paper,
    coverage_of_top_suites,
    figure2_series,
    most_popular_suites,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.turing import TuringExperimentResult, run_turing_test

__all__ = [
    "CorpusStatsResult",
    "ExperimentConfig",
    "ExperimentData",
    "Figure3Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "FullReport",
    "Table1Result",
    "TuringExperimentResult",
    "average_benchmarks_per_paper",
    "build_clgen",
    "coverage_of_top_suites",
    "figure2_series",
    "measure_suites",
    "most_popular_suites",
    "run_all",
    "run_corpus_stats",
    "run_figure3",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_table1",
    "run_turing_test",
    "synthesize_and_measure",
]
