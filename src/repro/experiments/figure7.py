"""Figure 7: the Grewe et al. model on NPB, with and without CLgen benchmarks.

Leave-one-benchmark-out cross-validation over the NPB programs and their
problem classes, trained (a) on the other suite benchmarks only and (b) with
the CLgen synthetic benchmarks added to the training set.  Speedups are
reported relative to the best single-device static mapping on each platform.
The paper's headline: adding the synthetic benchmarks lifts the average from
1.26× to 1.57× on AMD and from 2.50× to 3.26× on NVIDIA — a 1.27× geometric
improvement across both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentData,
    benchmark_name_of,
    measure_suites,
    synthesize_and_measure,
)
from repro.predictive.crossval import group_by_benchmark, leave_one_benchmark_out
from repro.predictive.metrics import (
    best_static_device,
    geometric_mean,
    mean_speedup,
    speedup_over_static,
)
from repro.predictive.model import GreweModel


@dataclass
class Figure7Platform:
    """One platform's bars: per-observation speedups with/without CLgen."""

    platform: str
    static_device: str
    baseline_speedups: dict[str, float] = field(default_factory=dict)
    with_clgen_speedups: dict[str, float] = field(default_factory=dict)

    @property
    def baseline_average(self) -> float:
        return geometric_mean(list(self.baseline_speedups.values()))

    @property
    def with_clgen_average(self) -> float:
        return geometric_mean(list(self.with_clgen_speedups.values()))

    @property
    def improvement(self) -> float:
        if self.baseline_average == 0:
            return 0.0
        return self.with_clgen_average / self.baseline_average

    @property
    def fraction_improved(self) -> float:
        """Fraction of observations whose prediction improved with CLgen."""
        improved = 0
        total = 0
        for name, baseline in self.baseline_speedups.items():
            total += 1
            if self.with_clgen_speedups.get(name, 0.0) > baseline + 1e-9:
                improved += 1
        return improved / total if total else 0.0


@dataclass
class Figure7Result:
    """Both platforms (the two panels of Figure 7)."""

    platforms: dict[str, Figure7Platform] = field(default_factory=dict)

    @property
    def overall_improvement(self) -> float:
        """Geometric-mean improvement across both platforms (paper: 1.27×)."""
        values = [panel.improvement for panel in self.platforms.values() if panel.improvement > 0]
        return geometric_mean(values)


def run_figure7(
    config: ExperimentConfig | None = None,
    data: ExperimentData | None = None,
    platforms: tuple[str, ...] = ("AMD", "NVIDIA"),
) -> Figure7Result:
    """Regenerate Figure 7."""
    config = config or ExperimentConfig()
    if data is None:
        data = measure_suites(config)
        data = synthesize_and_measure(config, data)
    elif not data.synthetic_measurements:
        data = synthesize_and_measure(config, data)

    npb = data.suite_measurements.get("NPB", [])
    other_suites = [
        measurement
        for suite, measurements in data.suite_measurements.items()
        if suite != "NPB"
        for measurement in measurements
    ]
    grouped = group_by_benchmark(npb, benchmark_name_of)

    result = Figure7Result()
    for platform in platforms:
        static_device = "cpu" if platform == "AMD" else "gpu"
        panel = Figure7Platform(platform=platform, static_device=static_device)

        baseline_cv = leave_one_benchmark_out(
            grouped, GreweModel, platform, extra_training=other_suites
        )
        clgen_cv = leave_one_benchmark_out(
            grouped,
            GreweModel,
            platform,
            extra_training=other_suites + data.synthetic_measurements,
        )
        for outcome in baseline_cv.outcomes:
            panel.baseline_speedups[outcome.measurement.name] = speedup_over_static(
                [outcome], static_device
            )[0]
        for outcome in clgen_cv.outcomes:
            panel.with_clgen_speedups[outcome.measurement.name] = speedup_over_static(
                [outcome], static_device
            )[0]
        result.platforms[platform] = panel
    return result
