"""Evaluation metrics for device-mapping predictions.

The paper reports two quantities:

* **speedup over the best static mapping** (Figures 7 and 8) — the runtime of
  always choosing the single best device for the whole platform (CPU-only on
  the AMD system, GPU-only on the NVIDIA system) divided by the runtime of
  the predicted mapping, per benchmark, then averaged (geometric mean across
  benchmarks, as is conventional for speedups);
* **performance relative to the oracle** (Table 1) — the runtime of a perfect
  per-kernel mapping divided by the runtime of the predicted mapping,
  expressed as a percentage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.driver.harness import KernelMeasurement


@dataclass(frozen=True)
class PredictionOutcome:
    """One kernel/dataset observation with its predicted mapping."""

    measurement: KernelMeasurement
    predicted_device: str
    platform: str

    @property
    def oracle_device(self) -> str:
        return self.measurement.oracle(self.platform)

    @property
    def correct(self) -> bool:
        return self.predicted_device == self.oracle_device

    @property
    def predicted_runtime(self) -> float:
        return self.measurement.runtime(self.platform, self.predicted_device)

    @property
    def oracle_runtime(self) -> float:
        times = self.measurement.runtimes[self.platform]
        return min(times["cpu"], times["gpu"])

    def static_runtime(self, static_device: str) -> float:
        return self.measurement.runtime(self.platform, static_device)


def best_static_device(measurements: list[KernelMeasurement], platform: str) -> str:
    """The single device that minimises total runtime over *measurements*.

    On the paper's AMD system this is the CPU; on the NVIDIA system the GPU.
    """
    if not measurements:
        return "cpu"
    cpu_total = sum(m.runtime(platform, "cpu") for m in measurements)
    gpu_total = sum(m.runtime(platform, "gpu") for m in measurements)
    return "cpu" if cpu_total <= gpu_total else "gpu"


def accuracy(outcomes: list[PredictionOutcome]) -> float:
    if not outcomes:
        return 0.0
    return sum(outcome.correct for outcome in outcomes) / len(outcomes)


def geometric_mean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def speedup_over_static(
    outcomes: list[PredictionOutcome], static_device: str
) -> list[float]:
    """Per-observation speedups of the predicted mapping over *static_device*."""
    return [
        outcome.static_runtime(static_device) / max(outcome.predicted_runtime, 1e-12)
        for outcome in outcomes
    ]


def oracle_speedup_over_static(
    outcomes: list[PredictionOutcome], static_device: str
) -> list[float]:
    """Per-observation speedups of the oracle mapping over *static_device*."""
    return [
        outcome.static_runtime(static_device) / max(outcome.oracle_runtime, 1e-12)
        for outcome in outcomes
    ]


def performance_relative_to_oracle(outcomes: list[PredictionOutcome]) -> float:
    """Mean fraction of the oracle performance achieved by the predictions.

    This is the Table 1 metric: 1.0 means every prediction matched the
    oracle; lower values measure how much slower the predicted mappings run.
    """
    if not outcomes:
        return 0.0
    ratios = [
        outcome.oracle_runtime / max(outcome.predicted_runtime, 1e-12) for outcome in outcomes
    ]
    return sum(ratios) / len(ratios)


def mean_speedup(
    outcomes: list[PredictionOutcome], static_device: str, use_geometric_mean: bool = True
) -> float:
    """Average speedup of the predicted mappings over a static mapping."""
    speedups = speedup_over_static(outcomes, static_device)
    if not speedups:
        return 0.0
    if use_geometric_mean:
        return geometric_mean(speedups)
    return sum(speedups) / len(speedups)
