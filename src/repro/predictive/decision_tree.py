"""A CART decision-tree classifier, implemented from scratch.

The Grewe et al. model "uses supervised learning to construct a decision
tree"; this is the corresponding learner: binary splits on single features
chosen by Gini impurity, grown to a configurable depth with a minimum leaf
size, majority-vote leaves, and deterministic tie-breaking so experiments
are reproducible.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TreeNode:
    """One node of a fitted tree."""

    prediction: str
    feature_index: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None


@dataclass
class DecisionTreeClassifier:
    """CART classifier over dense float feature vectors and string labels."""

    max_depth: int = 6
    min_samples_leaf: int = 2
    min_samples_split: int = 4
    root: TreeNode | None = field(default=None, repr=False)
    feature_count: int = 0
    classes_: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Fitting.
    # ------------------------------------------------------------------

    def fit(self, features: list[list[float]] | np.ndarray, labels: list[str]) -> "DecisionTreeClassifier":
        data = np.asarray(features, dtype=float)
        if data.ndim != 2 or len(labels) != data.shape[0]:
            raise ValueError("features must be 2D and aligned with labels")
        if data.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        targets = np.asarray(labels, dtype=object)
        self.feature_count = data.shape[1]
        self.classes_ = tuple(sorted(set(labels)))
        self.root = self._grow(data, targets, depth=0)
        return self

    @staticmethod
    def _gini(targets: np.ndarray) -> float:
        if targets.size == 0:
            return 0.0
        counts = Counter(targets.tolist())
        total = targets.size
        return 1.0 - sum((count / total) ** 2 for count in counts.values())

    @staticmethod
    def _majority(targets: np.ndarray) -> str:
        counts = Counter(targets.tolist())
        # Deterministic tie-break: lexicographically smallest most-common label.
        best = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))[0][0]
        return str(best)

    def _grow(self, data: np.ndarray, targets: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(
            prediction=self._majority(targets),
            samples=int(targets.size),
            impurity=self._gini(targets),
        )
        if (
            depth >= self.max_depth
            or targets.size < self.min_samples_split
            or node.impurity == 0.0
        ):
            return node

        best_gain = 0.0
        best_split: tuple[int, float] | None = None
        parent_impurity = node.impurity
        total = targets.size

        for feature_index in range(data.shape[1]):
            column = data[:, feature_index]
            candidates = np.unique(column)
            if candidates.size < 2:
                continue
            thresholds = (candidates[:-1] + candidates[1:]) / 2.0
            for threshold in thresholds:
                left_mask = column <= threshold
                left_count = int(left_mask.sum())
                right_count = total - left_count
                if left_count < self.min_samples_leaf or right_count < self.min_samples_leaf:
                    continue
                gain = parent_impurity - (
                    left_count / total * self._gini(targets[left_mask])
                    + right_count / total * self._gini(targets[~left_mask])
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_split = (feature_index, float(threshold))

        if best_split is None:
            return node

        feature_index, threshold = best_split
        left_mask = data[:, feature_index] <= threshold
        node.feature_index = feature_index
        node.threshold = threshold
        node.left = self._grow(data[left_mask], targets[left_mask], depth + 1)
        node.right = self._grow(data[~left_mask], targets[~left_mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------

    def predict_one(self, features: list[float] | np.ndarray) -> str:
        if self.root is None:
            raise ValueError("the tree has not been fitted")
        vector = np.asarray(features, dtype=float)
        node = self.root
        while not node.is_leaf:
            assert node.feature_index is not None
            if vector[node.feature_index] <= node.threshold:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return node.prediction

    def predict(self, features: list[list[float]] | np.ndarray) -> list[str]:
        return [self.predict_one(row) for row in np.asarray(features, dtype=float)]

    def accuracy(self, features, labels: list[str]) -> float:
        predictions = self.predict(features)
        if not labels:
            return 0.0
        return sum(p == l for p, l in zip(predictions, labels)) / len(labels)

    # ------------------------------------------------------------------
    # Introspection (useful in tests and reports).
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        def measure(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self.root)

    @property
    def node_count(self) -> int:
        def count(node: TreeNode | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + count(node.left) + count(node.right)

        return count(self.root)

    def feature_importances(self) -> list[float]:
        """Total Gini-gain attributed to each feature index, normalized."""
        importances = np.zeros(self.feature_count)

        def visit(node: TreeNode | None) -> None:
            if node is None or node.is_leaf:
                return
            left, right = node.left, node.right
            assert left is not None and right is not None and node.feature_index is not None
            weighted_child = (
                left.samples * left.impurity + right.samples * right.impurity
            ) / max(node.samples, 1)
            importances[node.feature_index] += node.samples * (node.impurity - weighted_child)
            visit(left)
            visit(right)

        visit(self.root)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances.tolist()
