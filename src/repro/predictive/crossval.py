"""Cross-validation of device-mapping models (paper §7.2).

"We use leave-one-out cross-validation to evaluate predictive models.  For
each benchmark, a model is trained on data from all other benchmarks and
used to predict the mapping for each kernel and dataset in the excluded
program.  We repeat this process with and without the addition of synthetic
benchmarks in the training data.  We do not test model predictions on
synthetic benchmarks."

Measurements are grouped by *benchmark program* so that every dataset class
of a program is held out together (no leakage between a program's datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.driver.harness import KernelMeasurement
from repro.predictive.metrics import PredictionOutcome
from repro.predictive.model import MappingModel

ModelFactory = Callable[[str], MappingModel]


@dataclass
class CrossValidationResult:
    """All prediction outcomes from one leave-one-benchmark-out run."""

    platform: str
    outcomes: list[PredictionOutcome] = field(default_factory=list)
    outcomes_by_benchmark: dict[str, list[PredictionOutcome]] = field(default_factory=dict)
    folds: int = 0

    @property
    def accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.correct for o in self.outcomes) / len(self.outcomes)


def group_by_benchmark(
    measurements: list[KernelMeasurement], benchmark_of: Callable[[KernelMeasurement], str] | None = None
) -> dict[str, list[KernelMeasurement]]:
    """Group measurements by their benchmark program name."""
    groups: dict[str, list[KernelMeasurement]] = {}
    for measurement in measurements:
        key = benchmark_of(measurement) if benchmark_of else measurement.name.split(".")[0]
        groups.setdefault(key, []).append(measurement)
    return groups


def leave_one_benchmark_out(
    measurements_by_benchmark: dict[str, list[KernelMeasurement]],
    model_factory: ModelFactory,
    platform: str,
    extra_training: list[KernelMeasurement] | None = None,
) -> CrossValidationResult:
    """Run leave-one-benchmark-out cross-validation.

    Args:
        measurements_by_benchmark: Test observations grouped by program; every
            program is excluded from training in its own fold.
        model_factory: Builds a fresh untrained model for a platform.
        platform: Platform name ("AMD" or "NVIDIA").
        extra_training: Additional training-only observations (e.g. CLgen
            synthetic benchmarks); never used as test data.

    Returns:
        A :class:`CrossValidationResult` with per-observation outcomes.
    """
    extra_training = extra_training or []
    result = CrossValidationResult(platform=platform)

    benchmarks = sorted(measurements_by_benchmark)
    for held_out in benchmarks:
        test_measurements = measurements_by_benchmark[held_out]
        training: list[KernelMeasurement] = []
        for other in benchmarks:
            if other != held_out:
                training.extend(measurements_by_benchmark[other])
        training.extend(extra_training)
        if not training or not test_measurements:
            continue

        model = model_factory(platform)
        # A training set with a single class still produces a usable
        # (constant) model; the decision tree handles that case natively.
        model.fit(training)

        fold_outcomes = [
            PredictionOutcome(
                measurement=measurement,
                predicted_device=model.predict(measurement),
                platform=platform,
            )
            for measurement in test_measurements
        ]
        result.outcomes.extend(fold_outcomes)
        result.outcomes_by_benchmark[held_out] = fold_outcomes
        result.folds += 1
    return result


def train_test_split_evaluation(
    train: list[KernelMeasurement],
    test: list[KernelMeasurement],
    model_factory: ModelFactory,
    platform: str,
) -> CrossValidationResult:
    """Train on one set of measurements and evaluate on another.

    Used by the Table 1 experiment (train on suite X, test on suite Y).
    """
    result = CrossValidationResult(platform=platform)
    if not train or not test:
        return result
    model = model_factory(platform)
    model.fit(train)
    result.outcomes = [
        PredictionOutcome(
            measurement=measurement,
            predicted_device=model.predict(measurement),
            platform=platform,
        )
        for measurement in test
    ]
    result.folds = 1
    return result
