"""``repro.predictive`` — the Grewe et al. predictive model and its extension."""

from repro.predictive.crossval import (
    CrossValidationResult,
    group_by_benchmark,
    leave_one_benchmark_out,
    train_test_split_evaluation,
)
from repro.predictive.decision_tree import DecisionTreeClassifier, TreeNode
from repro.predictive.metrics import (
    PredictionOutcome,
    accuracy,
    best_static_device,
    geometric_mean,
    mean_speedup,
    oracle_speedup_over_static,
    performance_relative_to_oracle,
    speedup_over_static,
)
from repro.predictive.model import ExtendedModel, GreweModel, MappingModel

__all__ = [
    "CrossValidationResult",
    "DecisionTreeClassifier",
    "ExtendedModel",
    "GreweModel",
    "MappingModel",
    "PredictionOutcome",
    "TreeNode",
    "accuracy",
    "best_static_device",
    "geometric_mean",
    "group_by_benchmark",
    "leave_one_benchmark_out",
    "mean_speedup",
    "oracle_speedup_over_static",
    "performance_relative_to_oracle",
    "speedup_over_static",
    "train_test_split_evaluation",
]
