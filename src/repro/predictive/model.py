"""The device-mapping predictive models.

Two models are provided, matching the paper's §7–§8:

* :class:`GreweModel` — the state-of-the-art baseline reproduced from Grewe,
  Wang and O'Boyle (CGO 2013): a decision tree over the four combined
  features of Table 2b, predicting whether an OpenCL kernel runs faster on
  the CPU or the GPU.
* :class:`ExtendedModel` — the paper's §8.2 extension: the same learner over
  the raw feature values *plus* a static branch count, which fixes the two
  generalisation failures the synthetic benchmarks exposed.

Both operate directly on :class:`~repro.driver.harness.KernelMeasurement`
records so the training data can come from benchmark suites, GitHub kernels
or CLgen output interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.driver.harness import KernelMeasurement
from repro.features.grewe import (
    FeatureVector,
    extended_feature_vector,
    grewe_feature_vector,
)
from repro.predictive.decision_tree import DecisionTreeClassifier

FeatureExtractor = Callable[[KernelMeasurement], FeatureVector]


@dataclass
class MappingModel:
    """A device-mapping predictor: feature extractor + decision tree."""

    feature_extractor: FeatureExtractor
    platform: str
    max_depth: int = 6
    min_samples_leaf: int = 2
    classifier: DecisionTreeClassifier = field(default=None, repr=False)  # type: ignore[assignment]
    name: str = "mapping-model"

    def __post_init__(self) -> None:
        if self.classifier is None:
            self.classifier = DecisionTreeClassifier(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )

    # ------------------------------------------------------------------

    def features_of(self, measurement: KernelMeasurement) -> list[float]:
        return self.feature_extractor(measurement).as_list()

    def fit(self, measurements: list[KernelMeasurement]) -> "MappingModel":
        """Train on measurements labelled by their oracle mapping for the platform."""
        if not measurements:
            raise ValueError("cannot train a mapping model on zero measurements")
        features = [self.features_of(m) for m in measurements]
        labels = [m.oracle(self.platform) for m in measurements]
        self.classifier.fit(features, labels)
        return self

    def predict(self, measurement: KernelMeasurement) -> str:
        """Predicted device ("cpu" or "gpu") for one kernel/dataset."""
        return self.classifier.predict_one(self.features_of(measurement))

    def predict_many(self, measurements: list[KernelMeasurement]) -> list[str]:
        return [self.predict(m) for m in measurements]

    def accuracy(self, measurements: list[KernelMeasurement]) -> float:
        if not measurements:
            return 0.0
        correct = sum(
            1 for m in measurements if self.predict(m) == m.oracle(self.platform)
        )
        return correct / len(measurements)


def GreweModel(platform: str, max_depth: int = 6, min_samples_leaf: int = 2) -> MappingModel:
    """The baseline Grewe et al. predictive model for *platform*."""
    return MappingModel(
        feature_extractor=grewe_feature_vector,
        platform=platform,
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        name="grewe",
    )


def ExtendedModel(platform: str, max_depth: int = 8, min_samples_leaf: int = 2) -> MappingModel:
    """The §8.2 extended model (raw features + branch count) for *platform*."""
    return MappingModel(
        feature_extractor=extended_feature_vector,
        platform=platform,
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        name="extended",
    )
