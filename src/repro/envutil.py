"""Hardened parsing of ``REPRO_*`` environment knobs.

Every environment variable the pipeline reads goes through these helpers so
a malformed value (a typo'd worker count, an unknown bench scale, a store
path pointing at a regular file) degrades to the documented default with a
:class:`RuntimeWarning` instead of crashing the pipeline mid-run or being
silently misread.
"""

from __future__ import annotations

import os
import warnings
from typing import Sequence


def _warn(message: str) -> None:
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def env_int(name: str, default: int = 0, minimum: int | None = None) -> int:
    """The integer value of ``$name``, or *default* when unset or malformed.

    Values below *minimum* (when given) are clamped up to it, so e.g. a
    negative worker count reads as "off" rather than crashing a pool.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        _warn(f"ignoring malformed {name}={raw!r} (expected an integer); using {default}")
        return default
    if minimum is not None and value < minimum:
        # As loud as the malformed case: a typo'd sign should not silently
        # change behavior either.
        _warn(f"clamping {name}={raw!r} to the minimum of {minimum}")
        return minimum
    return value


def env_float(name: str, default: float = 0.0, minimum: float | None = None) -> float:
    """The float value of ``$name``, or *default* when unset or malformed.

    Same contract as :func:`env_int` (used for e.g. the work-stealing
    queue's ``REPRO_QUEUE_LEASE`` lease seconds).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        _warn(f"ignoring malformed {name}={raw!r} (expected a number); using {default}")
        return default
    if value != value:  # NaN compares unequal to itself
        _warn(f"ignoring malformed {name}={raw!r} (NaN); using {default}")
        return default
    if minimum is not None and value < minimum:
        _warn(f"clamping {name}={raw!r} to the minimum of {minimum}")
        return minimum
    return value


def env_flag(name: str, default: bool = False) -> bool:
    """The boolean value of ``$name`` (1/true/yes/on vs 0/false/no/off)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip().lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off"):
        return False
    _warn(f"ignoring malformed {name}={raw!r} (expected a boolean); using {default}")
    return default


def parse_size(text: str) -> int:
    """``"500M"`` / ``"2G"`` / plain bytes → bytes.

    Raises :class:`ValueError` on malformed input or a negative size (the
    CLI and the env parser wrap this with their own error reporting).
    """
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}
    raw = text.strip().lower().removesuffix("b")
    if raw and raw[-1] in units:
        value = int(float(raw[:-1]) * units[raw[-1]])
    else:
        value = int(raw)
    if value < 0:
        raise ValueError(f"size must be >= 0, got {text!r}")
    return value


def env_size(name: str, default: int | None = None) -> int | None:
    """The byte-size value of ``$name`` (suffixes: 500M, 2G, ...), or *default*.

    Used for the ``REPRO_STORE_MAX_BYTES`` auto-gc watermark; malformed
    values degrade to *default* with a warning so a typo cannot either
    crash a pipeline or silently wipe a shared store.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return parse_size(raw)
    except (ValueError, OverflowError):
        _warn(
            f"ignoring malformed {name}={raw!r} (expected a byte size like "
            f"500M or 2G); using {default}"
        )
        return default


def parse_duration(text: str) -> float:
    """``"30s"`` / ``"12h"`` / ``"7d"`` / plain seconds → seconds.

    Raises :class:`ValueError` on malformed input or a negative duration
    (the CLI and the env parser wrap this with their own error reporting).
    """
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    raw = text.strip().lower()
    if raw and raw[-1] in units:
        value = float(raw[:-1]) * units[raw[-1]]
    else:
        value = float(raw)
    if value != value:
        raise ValueError(f"duration is NaN: {text!r}")
    if value < 0:
        raise ValueError(f"duration must be >= 0, got {text!r}")
    return value


def env_duration(
    name: str, default: float = 0.0, minimum: float | None = None
) -> float:
    """The duration value of ``$name`` in seconds (suffixes: 30s, 10m, 2h).

    Used for the service-layer knobs (``REPRO_SERVE_DEADLINE``,
    ``REPRO_FLEET_WINDOW``); same degrade-to-default contract as
    :func:`env_float`, with a suffix grammar shared with ``repro store gc
    --max-age``.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = parse_duration(raw)
    except (ValueError, OverflowError):
        _warn(
            f"ignoring malformed {name}={raw!r} (expected a duration like "
            f"30, 45s or 10m); using {default}"
        )
        return default
    if minimum is not None and value < minimum:
        _warn(f"clamping {name}={raw!r} to the minimum of {minimum}")
        return minimum
    return value


def env_text(name: str, default: str | None = None) -> str | None:
    """The raw (stripped) text value of ``$name``, or *default* when unset
    or blank.

    For knobs whose grammar is owned by a dedicated parser (e.g. the
    ``REPRO_FAULTS`` fault specs): this helper only normalizes "unset",
    "empty" and "whitespace" to one answer so every caller agrees on what
    "off" looks like.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw.strip()


def env_choice(name: str, choices: Sequence[str], default: str) -> str:
    """The value of ``$name`` restricted to *choices*, else *default*."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if value in choices:
        return value
    _warn(
        f"ignoring unknown {name}={raw!r} (expected one of "
        f"{', '.join(repr(choice) for choice in choices)}); using {default!r}"
    )
    return default


def env_directory(name: str) -> str | None:
    """The directory path named by ``$name``, or ``None``.

    A path that exists but is not a directory cannot back a store — it is
    ignored with a warning rather than producing write errors on every
    artifact (a nonexistent path is fine: the store creates it lazily).
    """
    raw = os.environ.get(name)
    if not raw:
        return None
    if os.path.exists(raw) and not os.path.isdir(raw):
        _warn(f"ignoring {name}={raw!r}: it exists but is not a directory")
        return None
    return raw
