"""Recursive header inlining (part of the paper's GitHub search engine).

GitHub does not serve OpenCL device code as standalone translation units:
kernels routinely ``#include`` project headers for constants and type
aliases.  The paper's scraper therefore performs "file scraping and
recursive header inlining".  Given the file table of a repository, this
module replaces ``#include "..."`` directives with the text of the included
file, recursively, with cycle protection.  Includes that cannot be resolved
inside the repository are left in place for the shim/preprocessor to deal
with.
"""

from __future__ import annotations

import re

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"\s*$', re.MULTILINE)


def inline_headers(text: str, headers: dict[str, str], max_depth: int = 8) -> str:
    """Inline ``#include "…"`` directives found in *text* using *headers*.

    Args:
        text: The content file text.
        headers: Mapping from header names (basenames and/or full paths) to
            their text.
        max_depth: Recursion limit guarding against include cycles.

    Returns:
        The text with all resolvable quoted includes replaced by the included
        file contents (recursively inlined themselves).  Unresolvable
        includes are preserved verbatim.
    """
    return _inline(text, headers, max_depth, frozenset())


def _inline(text: str, headers: dict[str, str], depth: int, seen: frozenset[str]) -> str:
    if depth <= 0:
        return text

    def replace(match: re.Match[str]) -> str:
        name = match.group(1)
        basename = name.rsplit("/", 1)[-1]
        if name in seen or basename in seen:
            return f"/* include cycle: {name} */"
        body = headers.get(name)
        if body is None:
            body = headers.get(basename)
        if body is None:
            return match.group(0)
        inlined = _inline(body, headers, depth - 1, seen | {name, basename})
        return f"/* inlined from {name} */\n{inlined}"

    return _INCLUDE_RE.sub(replace, text)


def count_unresolved_includes(text: str) -> int:
    """Number of quoted includes remaining in *text* after inlining."""
    return len(_INCLUDE_RE.findall(text))
