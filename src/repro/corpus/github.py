"""Simulated GitHub mining of OpenCL content files (paper §4.1).

The paper's search engine "attempts to identify and download standalone
OpenCL files through a process of file scraping and recursive header
inlining", yielding 8078 content files from 793 repositories.  This module
reproduces the same *interface* without the network: a population of
synthetic repositories is generated procedurally (each holding OpenCL
device files, project headers and irrelevant host files), and the
:class:`GitHubMiner` scrapes them, inlines their headers recursively and
returns :class:`ContentFile` records ready for the preprocessing pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.inliner import inline_headers
from repro.corpus.templates import ContentFileGenerator, GeneratedContentFile

_REPO_ADJECTIVES = [
    "fast", "parallel", "gpu", "opencl", "tiny", "deep", "open", "turbo", "micro", "hyper",
    "simple", "robust", "sparse", "dense", "quantum", "neural", "mobile", "vector",
]
_REPO_NOUNS = [
    "miner", "raytracer", "solver", "net", "bench", "kernels", "fluid", "nbody", "matrix",
    "imageproc", "hash", "physics", "renderer", "sort", "fft", "bignum", "crypto", "ml",
    "particles", "stencil",
]


@dataclass
class RepositoryFile:
    """One file inside a synthetic repository."""

    path: str
    text: str
    is_opencl: bool = False


@dataclass
class Repository:
    """A synthetic GitHub repository."""

    name: str
    owner: str
    stars: int
    files: list[RepositoryFile] = field(default_factory=list)

    @property
    def full_name(self) -> str:
        return f"{self.owner}/{self.name}"

    def headers(self) -> dict[str, str]:
        """Map of header basename → text, used for recursive inlining."""
        table: dict[str, str] = {}
        for file in self.files:
            if file.path.endswith((".h", ".clh", ".inc")):
                table[file.path.rsplit("/", 1)[-1]] = file.text
                table[file.path] = file.text
        return table


@dataclass
class ContentFile:
    """A mined content file: potentially OpenCL device code."""

    repository: str
    path: str
    text: str
    sha: str = ""

    @property
    def line_count(self) -> int:
        return sum(1 for line in self.text.splitlines() if line.strip())


@dataclass
class MiningResult:
    """The output of a mining run."""

    repositories: list[Repository]
    content_files: list[ContentFile]

    @property
    def total_lines(self) -> int:
        return sum(cf.line_count for cf in self.content_files)


class RepositoryPopulation:
    """Procedurally generates the population of repositories to be mined."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._generator = ContentFileGenerator(seed=self._rng.randrange(1 << 30))

    def generate_repository(self, index: int) -> Repository:
        name = (
            f"{self._rng.choice(_REPO_ADJECTIVES)}-{self._rng.choice(_REPO_NOUNS)}-{index}"
        )
        owner = f"dev{self._rng.randint(1, 4000)}"
        stars = max(0, int(self._rng.expovariate(1 / 12)))
        repo = Repository(name=name, owner=owner, stars=stars)

        # Project headers that device files may include.
        header_count = self._rng.randint(0, 2)
        header_names = []
        for h in range(header_count):
            header_name = self._rng.choice(
                ["common.h", "defines.h", "config.h", "types.h", "kernel_utils.h", "precision.h"]
            )
            constants = "\n".join(
                f"#define {name} {value}"
                for name, value in self._rng.sample(
                    [
                        ("BLOCK_SIZE", "16"),
                        ("LOCAL_SIZE", "128"),
                        ("EPSILON", "1e-6f"),
                        ("MAX_ITER", "64"),
                        ("WIDTH", "512"),
                        ("SCALE", "1.5f"),
                    ],
                    k=self._rng.randint(1, 3),
                )
            )
            typedef = ""
            if self._rng.random() < 0.5:
                typedef = "\ntypedef float real_t;\n"
            repo.files.append(
                RepositoryFile(path=f"include/{header_name}", text=constants + typedef + "\n")
            )
            header_names.append(header_name)

        # OpenCL device files.
        kernel_file_count = self._rng.randint(1, 14)
        for k in range(kernel_file_count):
            generated: GeneratedContentFile = self._generator.generate()
            text = generated.text
            # Some files include one of the repository's own headers.
            if header_names and self._rng.random() < 0.35 and generated.includes == []:
                text = f'#include "{self._rng.choice(header_names)}"\n\n' + text
            extension = self._rng.choice([".cl", ".cl", ".cl", ".ocl", ".clc"])
            repo.files.append(
                RepositoryFile(path=f"kernels/{generated.archetype}_{k}{extension}", text=text,
                               is_opencl=True)
            )

        # Irrelevant host files the search engine must skip.
        for h in range(self._rng.randint(0, 4)):
            repo.files.append(
                RepositoryFile(
                    path=f"src/host_{h}.c",
                    text="#include <stdio.h>\nint main(void) { return 0; }\n",
                )
            )
        return repo

    def generate(self, repository_count: int) -> list[Repository]:
        return [self.generate_repository(i) for i in range(repository_count)]


class GitHubMiner:
    """Simulates the paper's GitHub search engine and file scraper."""

    #: File extensions treated as candidate OpenCL device code.
    OPENCL_EXTENSIONS = (".cl", ".ocl", ".clc", ".clh")

    def __init__(self, seed: int = 0):
        self._seed = seed

    def mine(self, stop: int = 100, start: int = 0) -> MiningResult:
        """Mine repositories ``start`` .. *stop* of the seeded population.

        Without *start* this is simply "mine *stop* repositories".  Returns
        the repositories and the content files discovered in them, with
        project headers recursively inlined (the paper's "recursive header
        inlining").

        *stop* is an absolute index into the population, not a count from
        *start*: the population generator is one sequential RNG, so
        repository *i* is identical no matter how many repositories follow
        it, and a ``[start, stop)`` range therefore mines a shard of a
        larger run bit-identically — ``mine(N)`` equals the shards
        ``mine(hi, start=lo)`` concatenated.  Repositories before *start*
        are still generated (to advance the RNG) but never scraped or
        inlined.
        """
        population = RepositoryPopulation(seed=self._seed)
        repositories = population.generate(stop)[start:]
        content_files: list[ContentFile] = []
        for repository in repositories:
            headers = repository.headers()
            for file in repository.files:
                if not self._looks_like_opencl(file):
                    continue
                text = inline_headers(file.text, headers)
                content_files.append(
                    ContentFile(
                        repository=repository.full_name,
                        path=file.path,
                        text=text,
                        sha=f"{abs(hash((repository.full_name, file.path))):x}"[:12],
                    )
                )
        return MiningResult(repositories=repositories, content_files=content_files)

    def _looks_like_opencl(self, file: RepositoryFile) -> bool:
        """The search-engine heuristic: extension or ``__kernel`` marker."""
        if file.path.endswith(self.OPENCL_EXTENSIONS):
            return True
        return "__kernel" in file.text and file.path.endswith((".c", ".h", ".cpp"))


def mine_content_files(repository_count: int = 100, seed: int = 0) -> list[str]:
    """Convenience helper: mine and return raw content-file texts."""
    result = GitHubMiner(seed=seed).mine(repository_count)
    return [cf.text for cf in result.content_files]
