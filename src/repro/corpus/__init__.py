"""``repro.corpus`` — mining and assembling the OpenCL language corpus.

Simulates the paper's GitHub mining stage: a procedurally generated
population of repositories, a search engine with recursive header inlining,
and the :class:`Corpus` container that feeds the language model.
"""

from repro.corpus.corpus import Corpus
from repro.corpus.github import (
    ContentFile,
    GitHubMiner,
    MiningResult,
    Repository,
    RepositoryFile,
    RepositoryPopulation,
    mine_content_files,
)
from repro.corpus.inliner import count_unresolved_includes, inline_headers
from repro.corpus.templates import ContentFileGenerator, GeneratedContentFile

__all__ = [
    "ContentFile",
    "ContentFileGenerator",
    "Corpus",
    "GeneratedContentFile",
    "GitHubMiner",
    "MiningResult",
    "Repository",
    "RepositoryFile",
    "RepositoryPopulation",
    "count_unresolved_includes",
    "inline_headers",
    "mine_content_files",
]
