"""Procedural generator of "hand-written" OpenCL content files.

The paper mines 8078 content files from 793 GitHub repositories.  Without
network access we synthesize a corpus with the same statistical texture:
content files written in many different personal styles (identifier naming
conventions, comments, macros, project-specific type aliases, whitespace
habits), spanning the kernel archetypes that dominate real-world OpenCL
(element-wise maps, saxpy, stencils, reductions, dense linear algebra,
histograms, transposes, activation functions), and — crucially — with a
realistic fraction of files that do *not* compile once isolated from their
host project (missing type definitions, undeclared helper functions,
truncated files, host-side code), so the rejection-filter and shim-header
dynamics of §4.1 can be reproduced.

All generation is deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_VAR_POOLS = {
    "input": ["input", "in", "src", "source", "a", "x", "data", "buf", "vec", "arr", "d_in"],
    "input2": ["input2", "b", "y", "other", "src2", "d_b", "vec2", "rhs"],
    "output": ["output", "out", "dst", "dest", "result", "res", "c", "d_out", "z"],
    "index": ["i", "idx", "tid", "gid", "id", "globalId", "global_id", "g_idx", "thread_id"],
    "local_index": ["lid", "local_id", "localId", "tx", "l_idx", "lane"],
    "size": ["n", "N", "size", "len", "length", "count", "num", "nelem", "numElements", "total"],
    "width": ["width", "w", "cols", "nx", "dim_x", "WIDTH_"],
    "height": ["height", "h", "rows", "ny", "dim_y"],
    "scalar": ["alpha", "beta", "factor", "scale", "coeff", "gain", "weight", "lambda_", "mu"],
    "accumulator": ["sum", "acc", "total", "accum", "s", "partial", "aggregate"],
    "temp": ["tmp", "temp", "t", "val", "value", "v", "elem", "cur"],
    "loop": ["j", "k", "m", "iter", "step", "offset", "p", "q"],
    "local_mem": ["shared", "localBuf", "sdata", "tile", "cache", "scratch", "lmem"],
}

_KERNEL_NAME_POOLS = {
    "add": ["vec_add", "vectorAdd", "vadd", "add_arrays", "elementwise_add", "sum_kernel"],
    "saxpy": ["saxpy", "axpy", "saxpy_kernel", "daxpy", "scale_add"],
    "scale": ["scale", "scalar_mul", "multiply", "vec_scale", "scaleArray"],
    "map": ["apply_fn", "transform", "map_kernel", "compute", "process", "math_kernel"],
    "zip": ["combine", "zip_op", "blend", "mix_arrays", "fuse"],
    "stencil": ["stencil1d", "stencil", "jacobi", "smooth", "convolve1d", "laplace"],
    "stencil2d": ["stencil2d", "jacobi2d", "blur", "convolve2d", "heat2d", "filter2d"],
    "reduce": ["reduce", "reduction", "sum_reduce", "reduce_kernel", "block_sum"],
    "dot": ["dot_product", "dot", "inner_product", "sdot"],
    "matmul": ["matmul", "matrix_mul", "gemm", "mat_mult", "matrixMultiply", "mm_kernel"],
    "matmul_tiled": ["matmul_tiled", "gemm_local", "matrix_mul_shared", "blockedMatMul"],
    "transpose": ["transpose", "mat_transpose", "transpose_kernel"],
    "histogram": ["histogram", "hist", "histogram256", "bin_count"],
    "activation": ["relu", "relu_kernel", "sigmoid", "activate", "tanh_layer"],
    "vector4": ["vec4_op", "float4_kernel", "simd_op", "quad_process"],
    "threshold": ["threshold", "classify", "clip", "clamp_kernel", "binarize"],
    "gather": ["gather", "scatter", "index_copy", "permute", "lookup"],
    "triad": ["triad", "stream_triad", "fma_kernel"],
    "heavy": ["iterate", "newton", "mandelbrot", "integrate", "nbody_force", "simulate"],
    "scan": ["scan", "prefix_sum", "partial_scan", "cumsum"],
    "copy": ["copy", "memcpy_kernel", "clone_buffer", "move_data"],
}

_FLOAT_TYPES = ["float", "float", "float", "float", "double", "FLOAT_T", "DTYPE", "real_t", "REAL"]
_COMMENT_BANK = [
    "compute one element per work-item",
    "boundary check",
    "accumulate partial results",
    "load into local memory",
    "synchronize the work-group",
    "write back the result",
    "TODO: vectorize this loop",
    "FIXME: handle edge cases",
    "naive implementation, optimize later",
    "each thread handles one row",
    "see the CUDA version for reference",
    "ported from the CPU implementation",
    "unrolled for performance",
    "OpenCL 1.2 compatible",
]

_HEADER_NAMES = ["common.h", "defines.h", "config.h", "types.h", "kernel_utils.h", "precision.h"]


@dataclass
class GeneratedContentFile:
    """A synthetic content file plus its ground-truth properties."""

    text: str
    archetype: str
    compilable: bool
    uses_shim_identifiers: bool
    includes: list[str]


class ContentFileGenerator:
    """Generates human-style OpenCL content files from kernel archetypes."""

    #: Archetypes and their relative frequencies in the synthetic corpus.
    ARCHETYPE_WEIGHTS: list[tuple[str, float]] = [
        ("add", 9),
        ("saxpy", 6),
        ("scale", 6),
        ("map", 8),
        ("zip", 5),
        ("stencil", 6),
        ("stencil2d", 5),
        ("reduce", 7),
        ("dot", 4),
        ("matmul", 6),
        ("matmul_tiled", 4),
        ("transpose", 4),
        ("histogram", 3),
        ("activation", 5),
        ("vector4", 4),
        ("threshold", 4),
        ("gather", 3),
        ("triad", 3),
        ("heavy", 5),
        ("scan", 3),
        ("copy", 4),
        # Defective archetypes (rejected by the filter) — chosen so the raw
        # discard rate lands near the paper's 32–40% band.
        ("broken_undeclared_type", 10),
        ("broken_undeclared_function", 8),
        ("broken_syntax", 7),
        ("host_code_only", 8),
    ]

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._names = list(self.ARCHETYPE_WEIGHTS)

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def generate(self) -> GeneratedContentFile:
        """Generate a single content file."""
        archetypes, weights = zip(*self._names)
        archetype = self._rng.choices(archetypes, weights=weights, k=1)[0]
        return self.generate_archetype(archetype)

    def generate_many(self, count: int) -> list[GeneratedContentFile]:
        return [self.generate() for _ in range(count)]

    def generate_archetype(self, archetype: str) -> GeneratedContentFile:
        """Generate a content file of a specific *archetype*."""
        builder = getattr(self, f"_build_{archetype}", None)
        if builder is None:
            raise ValueError(f"unknown archetype {archetype!r}")
        return builder()

    # ------------------------------------------------------------------
    # Style helpers.
    # ------------------------------------------------------------------

    def _pick(self, pool: str) -> str:
        return self._rng.choice(_VAR_POOLS[pool])

    def _kernel_name(self, pool: str) -> str:
        return self._rng.choice(_KERNEL_NAME_POOLS[pool])

    def _float_type(self) -> tuple[str, bool]:
        """Return a floating type spelling and whether it needs the shim."""
        spelling = self._rng.choice(_FLOAT_TYPES)
        return spelling, spelling not in ("float", "double")

    def _maybe_comment(self, probability: float = 0.45) -> str:
        if self._rng.random() < probability:
            text = self._rng.choice(_COMMENT_BANK)
            if self._rng.random() < 0.5:
                return f"  // {text}\n"
            return f"  /* {text} */\n"
        return ""

    def _file_header(self, includes: list[str]) -> str:
        lines = []
        if self._rng.random() < 0.4:
            project = self._rng.choice(
                ["gpu-miner", "opencl-samples", "fastcl", "clmath", "deeplearn-cl", "physics-sim"]
            )
            lines.append(f"// Part of the {project} project.")
            if self._rng.random() < 0.5:
                lines.append("// Licensed under the MIT license.")
            lines.append("")
        for header in includes:
            lines.append(f'#include "{header}"')
        if includes:
            lines.append("")
        if self._rng.random() < 0.35:
            lines.append("#pragma OPENCL EXTENSION cl_khr_fp64 : enable")
            lines.append("")
        return "\n".join(lines) + ("\n" if lines else "")

    def _bounds_check(self, index: str, size: str) -> str:
        style = self._rng.random()
        if style < 0.4:
            return f"  if ({index} >= {size}) return;\n"
        if style < 0.8:
            return f"  if ({index} < {size}) {{\n"
        return ""

    def _wrap(self, text: str, archetype: str, compilable: bool, uses_shim: bool,
              includes: list[str] | None = None) -> GeneratedContentFile:
        includes = includes or []
        return GeneratedContentFile(
            text=self._file_header(includes) + text,
            archetype=archetype,
            compilable=compilable,
            uses_shim_identifiers=uses_shim,
            includes=includes,
        )

    # ------------------------------------------------------------------
    # Well-formed archetypes.
    # ------------------------------------------------------------------

    def _build_add(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        a, b, c = self._pick("input"), self._pick("input2"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("add")
        op = self._rng.choice(["+", "-", "*"])
        check = self._bounds_check(i, n)
        body = f"  {c}[{i}] = {a}[{i}] {op} {b}[{i}];\n"
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global {dtype}* {a},\n"
            f"                     __global {dtype}* {b},\n"
            f"                     __global {dtype}* {c},\n"
            f"                     const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{self._maybe_comment()}{check}{body}{closer}}}\n"
        )
        return self._wrap(text, "add", True, uses_shim)

    def _build_saxpy(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        x, y = self._pick("input"), self._pick("output")
        i, n, alpha = self._pick("index"), self._pick("size"), self._pick("scalar")
        name = self._kernel_name("saxpy")
        use_macro = self._rng.random() < 0.3
        macro = f"#define SCALE_FACTOR 2.5f\n\n" if use_macro else ""
        factor = "SCALE_FACTOR" if use_macro else alpha
        signature_alpha = "" if use_macro else f",\n                     const {dtype} {alpha}"
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"{macro}__kernel void {name}(__global {dtype}* {x},\n"
            f"                     __global {dtype}* {y},\n"
            f"                     const int {n}{signature_alpha}) {{\n"
            f"  unsigned int {i} = get_global_id(0);\n"
            f"{check}  {y}[{i}] = {factor} * {x}[{i}] + {y}[{i}];\n{closer}}}\n"
        )
        return self._wrap(text, "saxpy", True, uses_shim)

    def _build_scale(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        x = self._pick("input")
        i, n, alpha = self._pick("index"), self._pick("size"), self._pick("scalar")
        name = self._kernel_name("scale")
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global {dtype}* {x}, const {dtype} {alpha}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{self._maybe_comment()}{check}  {x}[{i}] = {x}[{i}] * {alpha};\n{closer}}}\n"
        )
        return self._wrap(text, "scale", True, uses_shim)

    def _build_map(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        x, y = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("map")
        expr = self._rng.choice(
            [
                f"sqrt(fabs({x}[{i}]))",
                f"exp({x}[{i}] * 0.5f)",
                f"sin({x}[{i}]) + cos({x}[{i}])",
                f"log(fabs({x}[{i}]) + 1.0f)",
                f"{x}[{i}] * {x}[{i}] + 1.0f",
                f"1.0f / (1.0f + exp(-{x}[{i}]))",
                f"pow({x}[{i}], 2.0f) - 0.5f",
            ]
        )
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global {dtype}* {x}, __global {dtype}* {y}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{check}  {y}[{i}] = {expr};\n{closer}}}\n"
        )
        return self._wrap(text, "map", True, uses_shim)

    def _build_zip(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        a, b, c = self._pick("input"), self._pick("input2"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("zip")
        k1, k2, k3 = self._rng.randint(2, 5), self._rng.randint(1, 4), self._rng.randint(1, 8)
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global {dtype}* {a},\n"
            f"                     __global {dtype}* {b},\n"
            f"                     __global {dtype}* {c},\n"
            f"                     const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{check}  {c}[{i}] = {k1} * {a}[{i}] + {k2} * {b}[{i}] + {k3};\n{closer}}}\n"
        )
        return self._wrap(text, "zip", True, uses_shim)

    def _build_stencil(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("stencil")
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global {dtype}* {dst},\n"
            f"                     const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} > 0 && {i} < {n} - 1) {{\n"
            f"{self._maybe_comment()}"
            f"    {dst}[{i}] = 0.25f * {src}[{i} - 1] + 0.5f * {src}[{i}] + 0.25f * {src}[{i} + 1];\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "stencil", True, uses_shim)

    def _build_stencil2d(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        w, h = self._pick("width"), self._pick("height")
        name = self._kernel_name("stencil2d")
        include = [self._rng.choice(_HEADER_NAMES)] if self._rng.random() < 0.3 else []
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global {dtype}* {dst},\n"
            f"                     const int {w}, const int {h}) {{\n"
            f"  int x = get_global_id(0);\n"
            f"  int y = get_global_id(1);\n"
            f"  if (x > 0 && x < {w} - 1 && y > 0 && y < {h} - 1) {{\n"
            f"    int center = y * {w} + x;\n"
            f"    {dst}[center] = 0.2f * ({src}[center] + {src}[center - 1] + {src}[center + 1]\n"
            f"        + {src}[center - {w}] + {src}[center + {w}]);\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "stencil2d", True, uses_shim, include)

    def _build_reduce(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        lmem, gid, lid, n = self._pick("local_mem"), self._pick("index"), self._pick("local_index"), self._pick("size")
        name = self._kernel_name("reduce")
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global {dtype}* {dst},\n"
            f"                     __local {dtype}* {lmem}, const int {n}) {{\n"
            f"  int {gid} = get_global_id(0);\n"
            f"  int {lid} = get_local_id(0);\n"
            f"  {lmem}[{lid}] = ({gid} < {n}) ? {src}[{gid}] : 0;\n"
            f"  barrier(CLK_LOCAL_MEM_FENCE);\n"
            f"{self._maybe_comment()}"
            f"  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {{\n"
            f"    if ({lid} < s) {{\n"
            f"      {lmem}[{lid}] += {lmem}[{lid} + s];\n"
            f"    }}\n"
            f"    barrier(CLK_LOCAL_MEM_FENCE);\n"
            f"  }}\n"
            f"  if ({lid} == 0) {{\n"
            f"    {dst}[get_group_id(0)] = {lmem}[0];\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "reduce", True, uses_shim)

    def _build_dot(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        a, b, dst = self._pick("input"), self._pick("input2"), self._pick("output")
        gid, lid, lmem, n = self._pick("index"), self._pick("local_index"), self._pick("local_mem"), self._pick("size")
        name = self._kernel_name("dot")
        text = (
            f"__kernel void {name}(__global const {dtype}* {a}, __global const {dtype}* {b},\n"
            f"                     __global {dtype}* {dst}, __local {dtype}* {lmem}, const int {n}) {{\n"
            f"  int {gid} = get_global_id(0);\n"
            f"  int {lid} = get_local_id(0);\n"
            f"  {dtype if not uses_shim else 'float'} prod = 0;\n"
            f"  if ({gid} < {n}) {{\n"
            f"    prod = {a}[{gid}] * {b}[{gid}];\n"
            f"  }}\n"
            f"  {lmem}[{lid}] = prod;\n"
            f"  barrier(CLK_LOCAL_MEM_FENCE);\n"
            f"  if ({lid} == 0) {{\n"
            f"    {dtype if not uses_shim else 'float'} {self._pick('accumulator')} = 0;\n"
            f"    for (int k = 0; k < get_local_size(0); k++) {{\n"
            f"      {self._pick('accumulator')} += {lmem}[k];\n"
            f"    }}\n"
            f"    {dst}[get_group_id(0)] = {lmem}[0];\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "dot", True, uses_shim)

    def _build_matmul(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        a, b, c = self._pick("input"), self._pick("input2"), self._pick("output")
        n = self._pick("size")
        name = self._kernel_name("matmul")
        acc, k = self._pick("accumulator"), self._pick("loop")
        text = (
            f"__kernel void {name}(__global const {dtype}* {a}, __global const {dtype}* {b},\n"
            f"                     __global {dtype}* {c}, const int {n}) {{\n"
            f"  int row = get_global_id(1);\n"
            f"  int col = get_global_id(0);\n"
            f"  if (row < {n} && col < {n}) {{\n"
            f"    {dtype if not uses_shim else 'float'} {acc} = 0;\n"
            f"    for (int {k} = 0; {k} < {n}; {k}++) {{\n"
            f"      {acc} += {a}[row * {n} + {k}] * {b}[{k} * {n} + col];\n"
            f"    }}\n"
            f"    {c}[row * {n} + col] = {acc};\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "matmul", True, uses_shim)

    def _build_matmul_tiled(self) -> GeneratedContentFile:
        dtype = "float"
        name = self._kernel_name("matmul_tiled")
        text = (
            f"#define TILE 16\n\n"
            f"__kernel void {name}(__global const {dtype}* A, __global const {dtype}* B,\n"
            f"                     __global {dtype}* C, const int n) {{\n"
            f"  __local {dtype} tileA[TILE * TILE];\n"
            f"  __local {dtype} tileB[TILE * TILE];\n"
            f"  int row = get_global_id(1);\n"
            f"  int col = get_global_id(0);\n"
            f"  int lrow = get_local_id(1);\n"
            f"  int lcol = get_local_id(0);\n"
            f"  {dtype} acc = 0.0f;\n"
            f"  for (int t = 0; t < n; t += TILE) {{\n"
            f"    tileA[lrow * TILE + lcol] = A[row * n + t + lcol];\n"
            f"    tileB[lrow * TILE + lcol] = B[(t + lrow) * n + col];\n"
            f"    barrier(CLK_LOCAL_MEM_FENCE);\n"
            f"    for (int k = 0; k < TILE; k++) {{\n"
            f"      acc += tileA[lrow * TILE + k] * tileB[k * TILE + lcol];\n"
            f"    }}\n"
            f"    barrier(CLK_LOCAL_MEM_FENCE);\n"
            f"  }}\n"
            f"  if (row < n && col < n) {{\n"
            f"    C[row * n + col] = acc;\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "matmul_tiled", True, False)

    def _build_transpose(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        w, h = self._pick("width"), self._pick("height")
        name = self._kernel_name("transpose")
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global {dtype}* {dst},\n"
            f"                     const int {w}, const int {h}) {{\n"
            f"  int x = get_global_id(0);\n"
            f"  int y = get_global_id(1);\n"
            f"  if (x < {w} && y < {h}) {{\n"
            f"    {dst}[x * {h} + y] = {src}[y * {w} + x];\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "transpose", True, uses_shim)

    def _build_histogram(self) -> GeneratedContentFile:
        src, hist = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("histogram")
        bins = self._rng.choice(["256", "NUM_BINS", "64"])
        uses_shim = bins == "NUM_BINS"
        text = (
            f"__kernel void {name}(__global const unsigned int* {src}, __global unsigned int* {hist},\n"
            f"                     const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} < {n}) {{\n"
            f"    unsigned int bin = {src}[{i}] % {bins};\n"
            f"    atomic_add(&{hist}[bin], 1);\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "histogram", True, uses_shim)

    def _build_activation(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        x, y = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("activation")
        kind = self._rng.choice(["relu", "sigmoid", "tanh", "leaky"])
        if kind == "relu":
            expr = f"fmax({x}[{i}], 0.0f)"
        elif kind == "sigmoid":
            expr = f"1.0f / (1.0f + exp(-{x}[{i}]))"
        elif kind == "tanh":
            expr = f"tanh({x}[{i}])"
        else:
            expr = f"({x}[{i}] > 0.0f) ? {x}[{i}] : 0.01f * {x}[{i}]"
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global {dtype}* {x}, __global {dtype}* {y}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{check}  {y}[{i}] = {expr};\n{closer}}}\n"
        )
        return self._wrap(text, "activation", True, uses_shim)

    def _build_vector4(self) -> GeneratedContentFile:
        a, b, c = self._pick("input"), self._pick("input2"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("vector4")
        width = self._rng.choice(["4", "4", "8", "16", "2"])
        text = (
            f"__kernel void {name}(__global float{width}* {a}, __global float{width}* {b},\n"
            f"                     __global float{width}* {c}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} < {n}) {{\n"
            f"    float{width} va = {a}[{i}];\n"
            f"    float{width} vb = {b}[{i}];\n"
            f"    {c}[{i}] = va * vb + (float{width})(1.0f);\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "vector4", True, False)

    def _build_threshold(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        x, y = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("threshold")
        threshold = self._rng.choice(["0.5f", "THRESHOLD", "1.0f"])
        uses_shim = uses_shim or threshold == "THRESHOLD"
        text = (
            f"__kernel void {name}(__global const {dtype}* {x}, __global {dtype}* {y}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} >= {n}) return;\n"
            f"  if ({x}[{i}] > {threshold}) {{\n"
            f"    {y}[{i}] = 1.0f;\n"
            f"  }} else if ({x}[{i}] < -{threshold}) {{\n"
            f"    {y}[{i}] = -1.0f;\n"
            f"  }} else {{\n"
            f"    {y}[{i}] = 0.0f;\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "threshold", True, uses_shim)

    def _build_gather(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("gather")
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global const int* indices,\n"
            f"                     __global {dtype}* {dst}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} < {n}) {{\n"
            f"    {dst}[{i}] = {src}[indices[{i}]];\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "gather", True, uses_shim)

    def _build_triad(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        a, b, c = self._pick("input"), self._pick("input2"), self._pick("output")
        i, n, alpha = self._pick("index"), self._pick("size"), self._pick("scalar")
        name = self._kernel_name("triad")
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global {dtype}* {a}, __global {dtype}* {b}, __global {dtype}* {c},\n"
            f"                     const {dtype} {alpha}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{check}  {a}[{i}] = {b}[{i}] + {alpha} * {c}[{i}];\n{closer}}}\n"
        )
        return self._wrap(text, "triad", True, uses_shim)

    def _build_heavy(self) -> GeneratedContentFile:
        dtype = "float"
        x, y = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("heavy")
        iterations = self._rng.choice(["16", "32", "64", "100", "MAX_ITER"])
        uses_shim = iterations == "MAX_ITER"
        use_helper = self._rng.random() < 0.5
        helper = ""
        step_expr = "v * v * 0.5f + 0.1f"
        if use_helper:
            helper_name = self._rng.choice(["update", "advance", "f", "step_fn", "iterate_once"])
            helper = (
                f"inline {dtype} {helper_name}({dtype} v) {{\n"
                f"  return v * v * 0.5f + 0.1f;\n"
                f"}}\n\n"
            )
            step_expr = f"{helper_name}(v)"
        text = (
            f"{helper}__kernel void {name}(__global {dtype}* {x}, __global {dtype}* {y}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} >= {n}) return;\n"
            f"  {dtype} v = {x}[{i}];\n"
            f"  for (int it = 0; it < {iterations}; it++) {{\n"
            f"    v = {step_expr};\n"
            f"    v = sqrt(fabs(v)) + 0.01f;\n"
            f"  }}\n"
            f"  {y}[{i}] = v;\n}}\n"
        )
        return self._wrap(text, "heavy", True, uses_shim)

    def _build_scan(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("scan")
        acc, k = self._pick("accumulator"), self._pick("loop")
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global {dtype}* {dst}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} < {n}) {{\n"
            f"    {dtype if not uses_shim else 'float'} {acc} = 0;\n"
            f"    for (int {k} = 0; {k} <= {i}; {k}++) {{\n"
            f"      {acc} += {src}[{k}];\n"
            f"    }}\n"
            f"    {dst}[{i}] = {acc};\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "scan", True, uses_shim)

    def _build_copy(self) -> GeneratedContentFile:
        dtype, uses_shim = self._float_type()
        src, dst = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        name = self._kernel_name("copy")
        check = self._bounds_check(i, n)
        closer = "  }\n" if check.strip().endswith("{") else ""
        text = (
            f"__kernel void {name}(__global const {dtype}* {src}, __global {dtype}* {dst}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"{check}  {dst}[{i}] = {src}[{i}];\n{closer}}}\n"
        )
        return self._wrap(text, "copy", True, uses_shim)

    # ------------------------------------------------------------------
    # Defective archetypes (rejected once isolated from their projects).
    # ------------------------------------------------------------------

    def _build_broken_undeclared_type(self) -> GeneratedContentFile:
        """Device code using a project-specific type the shim does not know."""
        type_name = self._rng.choice(
            ["Particle", "cl_complex", "quaternion_t", "BigInteger", "RayHit", "node_state"]
        )
        x = self._pick("input")
        i, n = self._pick("index"), self._pick("size")
        text = (
            f"__kernel void update_{type_name.lower()}(__global {type_name}* {x}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} < {n}) {{\n"
            f"    {x}[{i}].value = {x}[{i}].value * 2.0f;\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "broken_undeclared_type", False, False)

    def _build_broken_undeclared_function(self) -> GeneratedContentFile:
        """Device code calling a helper that lives in a header we cannot see.

        With the shim these still fail (the shim defines types/constants, not
        functions), matching the residual 32% discard rate of the paper.
        """
        helper = self._rng.choice(
            ["compute_force", "project_lookup_table", "decode_block", "custom_rand", "interp2d"]
        )
        dtype, _ = self._float_type()
        x, y = self._pick("input"), self._pick("output")
        i, n = self._pick("index"), self._pick("size")
        text = (
            f"__kernel void apply_{helper}(__global {dtype}* {x}, __global {dtype}* {y}, const int {n}) {{\n"
            f"  int {i} = get_global_id(0);\n"
            f"  if ({i} < {n}) {{\n"
            f"    {y}[{i}] = {helper}({x}[{i}], {i});\n"
            f"  }}\n}}\n"
        )
        return self._wrap(text, "broken_undeclared_function", False, False)

    def _build_broken_syntax(self) -> GeneratedContentFile:
        """A truncated or otherwise syntactically broken file."""
        base = self._build_add().text
        kind = self._rng.random()
        if kind < 0.4:
            text = base[: int(len(base) * self._rng.uniform(0.4, 0.8))]
        elif kind < 0.7:
            text = base.replace("{", "", 1)
        else:
            text = "template <typename T>\n" + base.replace("__kernel void", "__kernel auto")
        return self._wrap(text, "broken_syntax", False, False)

    def _build_host_code_only(self) -> GeneratedContentFile:
        """A file with OpenCL-adjacent host code but no device kernel."""
        choice = self._rng.random()
        if choice < 0.5:
            text = (
                "/* Host-side helper, mistakenly matched by the search engine. */\n"
                "float dot3(float ax, float ay, float az, float bx, float by, float bz) {\n"
                "  return ax * bx + ay * by + az * bz;\n"
                "}\n\n"
                "float clampf(float x, float lo, float hi) {\n"
                "  return fmin(fmax(x, lo), hi);\n"
                "}\n"
            )
        else:
            text = (
                "// Shared constants for the renderer.\n"
                "#define MAX_LIGHTS 8\n"
                "#define SHADOW_BIAS 0.001f\n\n"
                "typedef struct {\n"
                "  float x;\n"
                "  float y;\n"
                "  float z;\n"
                "} vec3_t;\n"
            )
        return self._wrap(text, "host_code_only", False, False)
