"""The OpenCL language corpus (paper §4.1).

A :class:`Corpus` bundles mined content files with the preprocessing
pipeline output: the normalized kernel texts the language model trains on,
plus all the §4.1 statistics (file/line counts, discard rate, kernel count,
vocabulary reduction).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.corpus.github import GitHubMiner, MiningResult
from repro.preprocess.pipeline import (
    CorpusStatistics,
    PipelineResult,
    PreprocessingPipeline,
    count_lines,
)


@dataclass
class Corpus:
    """A preprocessed OpenCL language corpus ready for language modeling."""

    kernels: list[str] = field(default_factory=list)
    statistics: CorpusStatistics = field(default_factory=CorpusStatistics)
    content_files: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_content_files(
        cls,
        content_files: list[str],
        use_shim: bool = True,
        rename_identifiers: bool = True,
        min_static_instructions: int = 3,
        jobs: int | None = None,
        cache_dir: str | None = None,
    ) -> "Corpus":
        """Build a corpus by running the preprocessing pipeline."""
        pipeline = PreprocessingPipeline(
            use_shim=use_shim,
            rename_identifiers=rename_identifiers,
            min_static_instructions=min_static_instructions,
            jobs=jobs,
            cache_dir=cache_dir,
        )
        result: PipelineResult = pipeline.run(content_files)
        deduplicated = cls._deduplicate(result.corpus_texts)
        return cls(
            kernels=deduplicated,
            statistics=result.statistics,
            content_files=list(content_files),
        )

    @classmethod
    def mine_and_build(
        cls,
        repository_count: int = 100,
        seed: int = 0,
        use_shim: bool = True,
        rename_identifiers: bool = True,
        min_static_instructions: int = 3,
        jobs: int | None = None,
        cache_dir: str | None = None,
    ) -> "Corpus":
        """Mine synthetic GitHub repositories and build the corpus in one step."""
        mining: MiningResult = GitHubMiner(seed=seed).mine(repository_count)
        texts = [cf.text for cf in mining.content_files]
        return cls.from_content_files(
            texts,
            use_shim=use_shim,
            rename_identifiers=rename_identifiers,
            min_static_instructions=min_static_instructions,
            jobs=jobs,
            cache_dir=cache_dir,
        )

    @staticmethod
    def _deduplicate(texts: list[str]) -> list[str]:
        """Drop byte-identical duplicates (GitHub is full of forks)."""
        seen: set[str] = set()
        unique: list[str] = []
        for text in texts:
            digest = hashlib.sha1(text.encode("utf-8")).hexdigest()
            if digest in seen:
                continue
            seen.add(digest)
            unique.append(text)
        return unique

    # ------------------------------------------------------------------
    # Views used by the language model and the experiments.
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.kernels)

    @property
    def line_count(self) -> int:
        return sum(count_lines(text) for text in self.kernels)

    def training_text(self, separator: str = "\n\n", shuffle_seed: int | None = None) -> str:
        """The concatenated corpus text the character-level model trains on."""
        kernels = list(self.kernels)
        if shuffle_seed is not None:
            random.Random(shuffle_seed).shuffle(kernels)
        return separator.join(kernels)

    def character_vocabulary(self) -> set[str]:
        return set(self.training_text())

    def split(self, train_fraction: float = 0.9, seed: int = 0) -> tuple["Corpus", "Corpus"]:
        """Split into training and held-out corpora (for model evaluation)."""
        kernels = list(self.kernels)
        random.Random(seed).shuffle(kernels)
        cut = max(1, int(len(kernels) * train_fraction)) if kernels else 0
        train = Corpus(kernels=kernels[:cut], statistics=self.statistics)
        test = Corpus(kernels=kernels[cut:], statistics=self.statistics)
        return train, test

    def sample_kernels(self, count: int, seed: int = 0) -> list[str]:
        """A random sample of kernels (used as the human pool in the Turing test)."""
        if not self.kernels:
            return []
        rng = random.Random(seed)
        if count >= len(self.kernels):
            return list(self.kernels)
        return rng.sample(self.kernels, count)
