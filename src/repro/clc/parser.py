"""Recursive-descent parser for the OpenCL C subset.

The parser produces the AST defined in :mod:`repro.clc.ast_nodes`.  It aims
for the pragmatic coverage needed by the pipeline: every kernel in the
bundled benchmark suites, the corpus generator's output, and the shapes of
code the language model synthesizes.  Constructs outside the subset raise
:class:`ParseError`, which the rejection filter treats as "does not compile"
— exactly the role the Clang/PTX toolchain plays in the paper.
"""

from __future__ import annotations

from repro.clc import ast_nodes as ast
from repro.clc.lexer import Token, TokenKind, tokenize
from repro.clc.types import (
    AddressSpace,
    PointerType,
    StructType,
    Type,
    TypeTable,
    VOID,
)
from repro.errors import ParseError

_ADDRESS_SPACE_QUALIFIERS = {
    "__global",
    "global",
    "__local",
    "local",
    "__constant",
    "constant",
    "__private",
    "private",
}

_ACCESS_QUALIFIERS = {
    "__read_only",
    "read_only",
    "__write_only",
    "write_only",
    "__read_write",
    "read_write",
}

_TYPE_QUALIFIERS = {"const", "volatile", "restrict", "static", "register"}

_OPAQUE_TYPE_NAMES = (
    "image1d_t",
    "image2d_t",
    "image3d_t",
    "image2d_array_t",
    "sampler_t",
    "event_t",
    "queue_t",
)

_ASSIGNMENT_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses a token stream into a :class:`TranslationUnit`."""

    def __init__(self, tokens: list[Token], type_table: TypeTable | None = None):
        self._tokens = tokens
        self._pos = 0
        self._types = type_table.copy() if type_table else TypeTable()
        for name in _OPAQUE_TYPE_NAMES:
            if not self._types.is_type_name(name):
                self._types.define_typedef(name, StructType(name))

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind is not TokenKind.EOF

    def _check_kind(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if token.text != text or token.kind is TokenKind.EOF:
            raise ParseError(
                f"expected {text!r} but found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message + f" (near {token.text!r})", token.line, token.column)

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self._at_end():
            if self._match(";"):
                continue
            if self._check("typedef"):
                self._parse_typedef(unit)
            elif self._check("struct") and self._peek(2).text == "{":
                self._parse_struct_decl(unit)
            else:
                self._parse_function_or_global(unit)
        return unit

    @property
    def type_table(self) -> TypeTable:
        return self._types

    # ------------------------------------------------------------------
    # Top-level declarations.
    # ------------------------------------------------------------------

    def _parse_typedef(self, unit: ast.TranslationUnit) -> None:
        token = self._expect("typedef")
        if self._check("struct"):
            struct = self._parse_struct_body()
            name_token = self._advance()
            if name_token.kind is not TokenKind.IDENTIFIER:
                raise self._error("expected typedef struct name")
            named = StructType(name_token.text, struct.fields)
            self._types.define_struct(named)
            self._types.define_typedef(name_token.text, named)
            unit.typedefs.append(
                ast.TypedefDecl(
                    name=name_token.text,
                    target_type=named,
                    target_type_name=str(named),
                    line=token.line,
                )
            )
            self._expect(";")
            return
        target_type, type_name = self._parse_type_specifier()
        while self._match("*"):
            target_type = PointerType(target_type)
            type_name += "*"
        name_token = self._advance()
        if name_token.kind is not TokenKind.IDENTIFIER:
            raise self._error("expected typedef name")
        self._types.define_typedef(name_token.text, target_type)
        unit.typedefs.append(
            ast.TypedefDecl(
                name=name_token.text,
                target_type=target_type,
                target_type_name=type_name,
                line=token.line,
            )
        )
        self._expect(";")

    def _parse_struct_body(self) -> StructType:
        self._expect("struct")
        name = ""
        if self._check_kind(TokenKind.IDENTIFIER):
            name = self._advance().text
        fields: list[tuple[str, Type]] = []
        if self._check("{"):
            self._expect("{")
            while not self._check("}") and not self._at_end():
                field_type, _ = self._parse_type_specifier()
                while self._match("*"):
                    field_type = PointerType(field_type)
                field_name = self._advance().text
                if self._match("["):
                    self.parse_expression()
                    self._expect("]")
                fields.append((field_name, field_type))
                while self._match(","):
                    extra_name = self._advance().text
                    fields.append((extra_name, field_type))
                self._expect(";")
            self._expect("}")
        struct = StructType(name or "<anonymous>", tuple(fields))
        if name:
            self._types.define_struct(struct)
        return struct

    def _parse_struct_decl(self, unit: ast.TranslationUnit) -> None:
        line = self._peek().line
        struct = self._parse_struct_body()
        self._expect(";")
        unit.structs.append(
            ast.StructDecl(
                name=struct.name,
                fields=[
                    ast.Declarator(name=field_name, declared_type=field_type)
                    for field_name, field_type in struct.fields
                ],
                line=line,
            )
        )

    def _parse_function_or_global(self, unit: ast.TranslationUnit) -> None:
        start_line = self._peek().line
        is_kernel = False
        is_inline = False
        is_constant_global = False
        attributes: list[str] = []

        # Leading qualifiers in any order.
        while True:
            token = self._peek()
            if token.text in ("__kernel", "kernel"):
                is_kernel = True
                self._advance()
            elif token.text in ("inline", "static", "extern"):
                is_inline = is_inline or token.text == "inline"
                self._advance()
            elif token.text in ("__constant", "constant"):
                is_constant_global = True
                self._advance()
            elif token.text == "__attribute__":
                attributes.append(self._parse_attribute())
            else:
                break

        return_type, return_type_name = self._parse_type_specifier()
        while self._match("*"):
            return_type = PointerType(return_type)
            return_type_name += "*"

        while self._check("__attribute__"):
            attributes.append(self._parse_attribute())

        name_token = self._advance()
        if name_token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            raise self._error("expected function or variable name")
        name = name_token.text

        if self._check("("):
            function = self._parse_function_rest(
                name, return_type, return_type_name, is_kernel, is_inline, attributes
            )
            function.line = start_line
            unit.functions.append(function)
            return

        # Global variable declaration.
        declarator = self._parse_declarator_rest(name, return_type, return_type_name)
        unit.globals.append(
            ast.GlobalVarDecl(
                declarator=declarator, is_constant=is_constant_global, line=start_line
            )
        )
        while self._match(","):
            extra_name = self._advance().text
            extra = self._parse_declarator_rest(extra_name, return_type, return_type_name)
            unit.globals.append(
                ast.GlobalVarDecl(declarator=extra, is_constant=is_constant_global, line=start_line)
            )
        self._expect(";")

    def _parse_attribute(self) -> str:
        self._expect("__attribute__")
        self._expect("(")
        self._expect("(")
        depth = 2
        parts: list[str] = []
        while depth > 0 and not self._at_end():
            token = self._advance()
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    break
            parts.append(token.text)
        return " ".join(parts[:-1] if parts and parts[-1] == ")" else parts)

    def _parse_function_rest(
        self,
        name: str,
        return_type: Type,
        return_type_name: str,
        is_kernel: bool,
        is_inline: bool,
        attributes: list[str],
    ) -> ast.FunctionDecl:
        self._expect("(")
        parameters: list[ast.ParameterDecl] = []
        if not self._check(")"):
            if self._check("void") and self._peek(1).text == ")":
                self._advance()
            else:
                parameters.append(self._parse_parameter())
                while self._match(","):
                    parameters.append(self._parse_parameter())
        self._expect(")")

        while self._check("__attribute__"):
            attributes.append(self._parse_attribute())

        body: ast.CompoundStmt | None = None
        if self._check("{"):
            body = self._parse_compound_statement()
        else:
            self._expect(";")

        return ast.FunctionDecl(
            name=name,
            return_type=return_type,
            return_type_name=return_type_name,
            parameters=parameters,
            body=body,
            is_kernel=is_kernel,
            is_inline=is_inline,
            attributes=attributes,
        )

    def _parse_parameter(self) -> ast.ParameterDecl:
        line = self._peek().line
        address_space = AddressSpace.PRIVATE
        is_const = False
        access: str | None = None

        while True:
            token = self._peek()
            if token.text in _ADDRESS_SPACE_QUALIFIERS:
                address_space = AddressSpace.from_qualifier(token.text)
                self._advance()
            elif token.text in _ACCESS_QUALIFIERS:
                access = token.text.lstrip("_")
                self._advance()
            elif token.text in _TYPE_QUALIFIERS:
                is_const = is_const or token.text == "const"
                self._advance()
            else:
                break

        base_type, type_name = self._parse_type_specifier()

        # Trailing qualifiers between type and '*' or name ("float const * a").
        while self._peek().text in _TYPE_QUALIFIERS:
            is_const = is_const or self._peek().text == "const"
            self._advance()

        pointer_depth = 0
        while self._match("*"):
            pointer_depth += 1
            while self._peek().text in _TYPE_QUALIFIERS | {"restrict", "__restrict"}:
                self._advance()

        declared_type: Type = base_type
        for _ in range(pointer_depth):
            declared_type = PointerType(declared_type, address_space, is_const, access)

        name = ""
        if self._check_kind(TokenKind.IDENTIFIER):
            name = self._advance().text
        if self._match("["):
            if not self._check("]"):
                self.parse_expression()
            self._expect("]")
            declared_type = PointerType(base_type, address_space, is_const, access)
            pointer_depth = 1

        rendered = type_name + "*" * pointer_depth
        return ast.ParameterDecl(
            name=name,
            declared_type=declared_type,
            type_name=rendered,
            address_space=address_space,
            is_const=is_const,
            access=access,
            line=line,
        )

    # ------------------------------------------------------------------
    # Types.
    # ------------------------------------------------------------------

    def _looks_like_type(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.text in ("unsigned", "signed", "struct", "void"):
            return True
        if token.text in _ADDRESS_SPACE_QUALIFIERS or token.text in _TYPE_QUALIFIERS:
            return True
        return self._types.is_type_name(token.text)

    def _parse_type_specifier(self) -> tuple[Type, str]:
        token = self._peek()
        if token.text == "struct":
            struct = self._parse_struct_body()
            return struct, str(struct)
        if token.text in ("unsigned", "signed"):
            words = [self._advance().text]
            while self._peek().text in ("int", "char", "short", "long"):
                words.append(self._advance().text)
            spelled = " ".join(words)
            resolved = self._types.lookup(spelled) or self._types.lookup(
                " ".join(words[1:]) or "int"
            )
            if resolved is None:
                resolved = self._types.lookup("uint" if words[0] == "unsigned" else "int")
            assert resolved is not None
            return resolved, spelled
        if token.text == "long" and self._peek(1).text in ("long", "int"):
            words = [self._advance().text]
            while self._peek().text in ("long", "int"):
                words.append(self._advance().text)
            return self._types.lookup("long"), " ".join(words)  # type: ignore[return-value]
        if token.text == "void":
            self._advance()
            return VOID, "void"
        resolved = self._types.lookup(token.text)
        if resolved is not None:
            self._advance()
            return resolved, token.text
        raise ParseError(f"unknown type name {token.text!r}", token.line, token.column)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _parse_compound_statement(self) -> ast.CompoundStmt:
        open_token = self._expect("{")
        statements: list[ast.Statement] = []
        while not self._check("}"):
            if self._at_end():
                raise ParseError("unexpected end of input in block", open_token.line)
            statements.append(self.parse_statement())
        self._expect("}")
        return ast.CompoundStmt(statements=statements, line=open_token.line)

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        text = token.text

        if text == "{":
            return self._parse_compound_statement()
        if text == ";":
            self._advance()
            return ast.EmptyStmt(line=token.line)
        if text == "if":
            return self._parse_if()
        if text == "for":
            return self._parse_for()
        if text == "while":
            return self._parse_while()
        if text == "do":
            return self._parse_do_while()
        if text == "switch":
            return self._parse_switch()
        if text == "return":
            self._advance()
            value = None if self._check(";") else self.parse_expression()
            self._expect(";")
            return ast.ReturnStmt(value=value, line=token.line)
        if text == "break":
            self._advance()
            self._expect(";")
            return ast.BreakStmt(line=token.line)
        if text == "continue":
            self._advance()
            self._expect(";")
            return ast.ContinueStmt(line=token.line)
        if self._starts_declaration():
            return self._parse_declaration_statement()

        expression = self.parse_expression()
        self._expect(";")
        return ast.ExprStmt(expression=expression, line=token.line)

    def _starts_declaration(self) -> bool:
        token = self._peek()
        if token.text in _ADDRESS_SPACE_QUALIFIERS or token.text in _TYPE_QUALIFIERS:
            return True
        if token.text in ("unsigned", "signed", "struct"):
            return True
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD) and self._types.is_type_name(
            token.text
        ):
            # "float x" or "float4 v" — a type name followed by an identifier
            # or '*' begins a declaration; "float(x)" would not (and is not
            # valid C anyway).
            nxt = self._peek(1)
            return nxt.kind is TokenKind.IDENTIFIER or nxt.text == "*"
        return False

    def _parse_declaration_statement(self) -> ast.DeclStmt:
        line = self._peek().line
        address_space = AddressSpace.PRIVATE
        while True:
            token = self._peek()
            if token.text in _ADDRESS_SPACE_QUALIFIERS:
                address_space = AddressSpace.from_qualifier(token.text)
                self._advance()
            elif token.text in _TYPE_QUALIFIERS:
                self._advance()
            else:
                break

        base_type, type_name = self._parse_type_specifier()
        declarators: list[ast.Declarator] = []

        while True:
            pointer_depth = 0
            while self._match("*"):
                pointer_depth += 1
            name_token = self._advance()
            if name_token.kind is not TokenKind.IDENTIFIER:
                raise ParseError(
                    f"expected identifier in declaration, found {name_token.text!r}",
                    name_token.line,
                    name_token.column,
                )
            declared_type: Type = base_type
            for _ in range(pointer_depth):
                declared_type = PointerType(declared_type, address_space)

            array_size: ast.Expression | None = None
            if self._match("["):
                if not self._check("]"):
                    array_size = self.parse_expression()
                self._expect("]")
                declared_type = PointerType(base_type, address_space)

            initializer: ast.Expression | None = None
            if self._match("="):
                if self._check("{"):
                    initializer = self._parse_initializer_list()
                else:
                    initializer = self.parse_assignment_expression()

            declarators.append(
                ast.Declarator(
                    name=name_token.text,
                    declared_type=declared_type,
                    type_name=type_name + "*" * pointer_depth,
                    array_size=array_size,
                    initializer=initializer,
                    address_space=address_space,
                    line=name_token.line,
                )
            )
            if not self._match(","):
                break

        self._expect(";")
        return ast.DeclStmt(declarators=declarators, line=line)

    def _parse_declarator_rest(
        self, name: str, declared_type: Type, type_name: str
    ) -> ast.Declarator:
        """The ``[size]`` / ``= initializer`` tail of a global declarator.

        Called by :meth:`_parse_function_or_global` once the declared name
        has been consumed (pointer stars are already folded into
        *declared_type* at that point).
        """
        line = self._peek().line
        array_size: ast.Expression | None = None
        if self._match("["):
            if not self._check("]"):
                array_size = self.parse_expression()
            self._expect("]")
            declared_type = PointerType(declared_type)

        initializer: ast.Expression | None = None
        if self._match("="):
            if self._check("{"):
                initializer = self._parse_initializer_list()
            else:
                initializer = self.parse_assignment_expression()

        return ast.Declarator(
            name=name,
            declared_type=declared_type,
            type_name=type_name,
            array_size=array_size,
            initializer=initializer,
            line=line,
        )

    def _parse_initializer_list(self) -> ast.InitializerList:
        open_token = self._expect("{")
        elements: list[ast.Expression] = []
        if not self._check("}"):
            if self._check("{"):
                elements.append(self._parse_initializer_list())
            else:
                elements.append(self.parse_assignment_expression())
            while self._match(","):
                if self._check("}"):
                    break
                if self._check("{"):
                    elements.append(self._parse_initializer_list())
                else:
                    elements.append(self.parse_assignment_expression())
        self._expect("}")
        return ast.InitializerList(elements=elements, line=open_token.line)

    def _parse_if(self) -> ast.IfStmt:
        token = self._expect("if")
        self._expect("(")
        condition = self.parse_expression()
        self._expect(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self._match("else"):
            else_branch = self.parse_statement()
        return ast.IfStmt(
            condition=condition, then_branch=then_branch, else_branch=else_branch, line=token.line
        )

    def _parse_for(self) -> ast.ForStmt:
        token = self._expect("for")
        self._expect("(")
        init: ast.Statement | None = None
        if not self._check(";"):
            if self._starts_declaration():
                init = self._parse_declaration_statement()
            else:
                expression = self.parse_expression()
                self._expect(";")
                init = ast.ExprStmt(expression=expression)
        else:
            self._advance()
        condition = None if self._check(";") else self.parse_expression()
        self._expect(";")
        increment = None if self._check(")") else self.parse_expression()
        self._expect(")")
        body = self.parse_statement()
        return ast.ForStmt(
            init=init, condition=condition, increment=increment, body=body, line=token.line
        )

    def _parse_while(self) -> ast.WhileStmt:
        token = self._expect("while")
        self._expect("(")
        condition = self.parse_expression()
        self._expect(")")
        body = self.parse_statement()
        return ast.WhileStmt(condition=condition, body=body, line=token.line)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        token = self._expect("do")
        body = self.parse_statement()
        self._expect("while")
        self._expect("(")
        condition = self.parse_expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhileStmt(body=body, condition=condition, line=token.line)

    def _parse_switch(self) -> ast.SwitchStmt:
        token = self._expect("switch")
        self._expect("(")
        condition = self.parse_expression()
        self._expect(")")
        self._expect("{")
        cases: list[ast.SwitchCase] = []
        current: ast.SwitchCase | None = None
        while not self._check("}") and not self._at_end():
            if self._match("case"):
                value = self.parse_expression()
                self._expect(":")
                current = ast.SwitchCase(value=value)
                cases.append(current)
            elif self._match("default"):
                self._expect(":")
                current = ast.SwitchCase(value=None)
                cases.append(current)
            else:
                if current is None:
                    raise self._error("statement outside of case in switch")
                current.body.append(self.parse_statement())
        self._expect("}")
        return ast.SwitchStmt(condition=condition, cases=cases, line=token.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing).
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        expression = self.parse_assignment_expression()
        while self._match(","):
            right = self.parse_assignment_expression()
            expression = ast.BinaryOp(op=",", left=expression, right=right)
        return expression

    def parse_assignment_expression(self) -> ast.Expression:
        left = self._parse_ternary()
        token = self._peek()
        if token.text in _ASSIGNMENT_OPS:
            self._advance()
            value = self.parse_assignment_expression()
            return ast.Assignment(
                op=token.text, target=left, value=value, line=token.line, column=token.column
            )
        return left

    def _parse_ternary(self) -> ast.Expression:
        condition = self._parse_binary(0)
        if self._match("?"):
            if_true = self.parse_assignment_expression()
            self._expect(":")
            if_false = self.parse_assignment_expression()
            return ast.TernaryOp(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    _BINARY_LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> ast.Expression:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        operators = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().text in operators and self._peek().kind is TokenKind.PUNCTUATOR:
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(
                op=op_token.text, left=left, right=right, line=op_token.line, column=op_token.column
            )
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.text in ("-", "+", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand, line=token.line)
        if token.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand, line=token.line)
        if token.text == "sizeof":
            self._advance()
            if self._match("("):
                if self._looks_like_type():
                    _, type_name = self._parse_type_specifier()
                    while self._match("*"):
                        type_name += "*"
                    self._expect(")")
                    return ast.SizeOf(target_type_name=type_name, line=token.line)
                inner = self.parse_expression()
                self._expect(")")
                return ast.SizeOf(target_type_name=str(inner), line=token.line)
            operand = self._parse_unary()
            return ast.SizeOf(target_type_name="<expr>", line=token.line)
        if token.text == "(" and self._is_cast_expression():
            return self._parse_cast()
        return self._parse_postfix()

    def _is_cast_expression(self) -> bool:
        """A '(' starts a cast when it is immediately followed by a type."""
        assert self._check("(")
        offset = 1
        token = self._peek(offset)
        if token.text in _ADDRESS_SPACE_QUALIFIERS or token.text in _TYPE_QUALIFIERS:
            return True
        if token.text in ("unsigned", "signed", "struct", "void"):
            return True
        if not self._types.is_type_name(token.text):
            return False
        # Confirm the next token closes the cast (allowing pointer stars).
        offset += 1
        while self._peek(offset).text == "*":
            offset += 1
        return self._peek(offset).text == ")"

    def _parse_cast(self) -> ast.Expression:
        open_token = self._expect("(")
        while self._peek().text in _ADDRESS_SPACE_QUALIFIERS | _TYPE_QUALIFIERS:
            self._advance()
        target_type, type_name = self._parse_type_specifier()
        pointer_depth = 0
        while self._match("*"):
            pointer_depth += 1
        for _ in range(pointer_depth):
            target_type = PointerType(target_type)
        self._expect(")")

        # OpenCL vector literal: (float4)(a, b, c, d).
        if target_type.is_vector and self._check("("):
            self._expect("(")
            elements = [self.parse_assignment_expression()]
            while self._match(","):
                elements.append(self.parse_assignment_expression())
            self._expect(")")
            return ast.VectorLiteral(
                target_type=target_type,
                target_type_name=type_name + "*" * pointer_depth,
                elements=elements,
                line=open_token.line,
            )

        operand = self._parse_unary()
        return ast.Cast(
            target_type=target_type,
            target_type_name=type_name + "*" * pointer_depth,
            operand=operand,
            line=open_token.line,
        )

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while True:
            token = self._peek()
            if token.text == "[":
                self._advance()
                index = self.parse_expression()
                self._expect("]")
                expression = ast.Index(base=expression, index=index, line=token.line)
            elif token.text == "(" and isinstance(expression, ast.Identifier):
                self._advance()
                arguments: list[ast.Expression] = []
                if not self._check(")"):
                    arguments.append(self.parse_assignment_expression())
                    while self._match(","):
                        arguments.append(self.parse_assignment_expression())
                self._expect(")")
                expression = ast.Call(
                    callee=expression.name, arguments=arguments, line=token.line
                )
            elif token.text in (".", "->"):
                self._advance()
                member_token = self._advance()
                expression = ast.Member(
                    base=expression,
                    member=member_token.text,
                    arrow=token.text == "->",
                    line=token.line,
                )
            elif token.text in ("++", "--"):
                self._advance()
                expression = ast.PostfixOp(op=token.text, operand=expression, line=token.line)
            else:
                return expression

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(
                value=_parse_int_literal(token.text), text=token.text, line=token.line
            )
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return ast.FloatLiteral(
                value=_parse_float_literal(token.text), text=token.text, line=token.line
            )
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.CharLiteral(value=token.text, line=token.line)
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            return ast.StringLiteral(value=token.text, line=token.line)
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return ast.Identifier(name=token.text, line=token.line, column=token.column)
        if token.text == "(":
            self._advance()
            expression = self.parse_expression()
            self._expect(")")
            return expression
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def _parse_int_literal(text: str) -> int:
    stripped = text.rstrip("uUlL")
    try:
        return int(stripped, 0)
    except ValueError:
        return 0


def _parse_float_literal(text: str) -> float:
    stripped = text.rstrip("fFhHlL")
    try:
        return float(stripped)
    except ValueError:
        return 0.0


def parse(source: str, type_table: TypeTable | None = None) -> ast.TranslationUnit:
    """Parse preprocessed OpenCL C *source* into a translation unit."""
    tokens = tokenize(source)
    return Parser(tokens, type_table).parse_translation_unit()


def parse_kernel(source: str) -> ast.FunctionDecl:
    """Parse *source* and return its first kernel function.

    Raises :class:`ParseError` if the source contains no kernel.
    """
    unit = parse(source)
    kernels = unit.kernels
    if not kernels:
        raise ParseError("no __kernel function found")
    return kernels[0]
