"""Tokenizer for the OpenCL C subset understood by this reproduction.

The lexer is deliberately permissive: it recognises the full C operator set,
integer/floating literals with OpenCL suffixes, character and string
literals, identifiers and keywords.  Anything else raises :class:`LexerError`
with a line/column so the rejection filter can report *why* a GitHub content
file failed to compile.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import LexerError


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENTIFIER = auto()
    KEYWORD = auto()
    INT_LITERAL = auto()
    FLOAT_LITERAL = auto()
    CHAR_LITERAL = auto()
    STRING_LITERAL = auto()
    PUNCTUATOR = auto()
    EOF = auto()


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: The lexical category.
        text: The exact source text of the token.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


#: Keywords of the OpenCL C language subset (C99 keywords plus OpenCL
#: qualifiers).  Type names are handled by the parser via the type table so
#: that typedefs behave uniformly.
KEYWORDS = frozenset(
    {
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
        "goto",
        "sizeof",
        "struct",
        "union",
        "enum",
        "typedef",
        "const",
        "volatile",
        "restrict",
        "static",
        "inline",
        "extern",
        "register",
        "signed",
        "unsigned",
        "void",
        # OpenCL address space / access qualifiers.
        "__kernel",
        "kernel",
        "__global",
        "global",
        "__local",
        "local",
        "__constant",
        "constant",
        "__private",
        "private",
        "__read_only",
        "read_only",
        "__write_only",
        "write_only",
        "__read_write",
        "read_write",
        "__attribute__",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ".",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")

#: Batched scanners for the hot paths: runs of whitespace and identifier
#: characters are consumed in one regex match instead of one method call per
#: character.  ``[^\x00-\x7f]`` mirrors the permissive ``ord(ch) > 127``
#: identifier rule exactly.
_WHITESPACE_RE = re.compile(r"[ \t\r\n\f\v]+")
_IDENTIFIER_RE = re.compile(r"(?:[A-Za-z_]|[^\x00-\x7f])(?:[A-Za-z0-9_]|[^\x00-\x7f])*")
#: One-match equivalent of the character-by-character number scanner: hex
#: digits, or decimal digits with an optional fraction and an exponent that
#: only binds when digits follow, then any run of OpenCL suffixes.
_NUMBER_RE = re.compile(
    r"0[xX][0-9a-fA-F]*[uUlLfFhH]*|[0-9]*(?:\.[0-9]*)?(?:[eE][+-]?[0-9]+)?[uUlLfFhH]*"
)

#: Punctuators bucketed by first character (global longest-first order is
#: preserved within each bucket, so maximal munch still applies).
_PUNCTUATORS_BY_FIRST: dict[str, tuple[str, ...]] = {}
for _punct in _PUNCTUATORS:
    _PUNCTUATORS_BY_FIRST.setdefault(_punct[0], ())
    _PUNCTUATORS_BY_FIRST[_punct[0]] += (_punct,)
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
# Sets, not strings: ``"" in "uUlL..."`` is True, so testing ``_peek()``
# (which returns "" at end of input) against a plain string loops forever
# on sources that end in a numeric literal.
_NUMBER_SUFFIXES = frozenset("uUlLfFhH")
_FLOAT_SUFFIXES = frozenset("fFhH")
_SIGNS = frozenset("+-")

#: One alternation covering every token class, tried in the same precedence
#: order as :meth:`Lexer._next_token`: whitespace/comment runs, identifiers,
#: numbers (guarded by the same digit-or-dot-digit trigger), string and
#: character literals, then punctuators (longest first, so maximal munch is
#: preserved).  The ``bad`` group catches an unterminated block comment
#: opener that would otherwise mis-lex as ``/`` ``*`` punctuators; it and
#: every non-match route through the character-by-character machinery, which
#: raises the exact same :class:`LexerError`s as before.
_MASTER_RE = re.compile(
    r"(?P<ws>(?:[ \t\r\n\f\v]+|//[^\n]*|/\*[\s\S]*?\*/|\\\n)+)"
    r"|(?P<id>(?:[A-Za-z_]|[^\x00-\x7f])(?:[A-Za-z0-9_]|[^\x00-\x7f])*)"
    r"|(?P<num>(?=[0-9]|\.[0-9])"
    r"(?:0[xX][0-9a-fA-F]*[uUlLfFhH]*|[0-9]*(?:\.[0-9]*)?(?:[eE][+-]?[0-9]+)?[uUlLfFhH]*))"
    r'|(?P<str>"(?:\\[\s\S]|[^"\\])*")'
    r"|(?P<char>'(?:\\[\s\S]|[^'\\])*')"
    r"|(?P<bad>/\*)"
    r"|(?P<punct>#|"
    + "|".join(re.escape(p) for p in sorted(_PUNCTUATORS, key=len, reverse=True))
    + r")"
)


def _classify_number(text: str) -> TokenKind:
    """INT vs FLOAT literal, identically to the character scanner."""
    if text[:2] in ("0x", "0X"):
        # The hex-digit run greedily claims f/F, so only suffix characters
        # that cannot be hex digits (after a u/U/l/L) remain in the tail —
        # an h/H or trailing f/F there marks a float, exactly as the
        # character-by-character scanner classified it.
        tail = text[2:].lstrip("0123456789abcdefABCDEF")
        is_float = any(c in _FLOAT_SUFFIXES for c in tail)
    else:
        body = text.rstrip("uUlLfFhH")
        suffixes = text[len(body):]
        is_float = (
            "." in body
            or "e" in body
            or "E" in body
            or any(c in _FLOAT_SUFFIXES for c in suffixes)
        )
    return TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL


class Lexer:
    """Converts OpenCL C source text into a list of :class:`Token`."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token stream, terminated by an EOF token.

        Drives :data:`_MASTER_RE` down the source — one regex match and one
        ``Token`` construction per token — and drops to the per-character
        :meth:`_next_token` machinery only where the master pattern does not
        apply (unterminated comments/strings, unexpected characters), so the
        token stream and every error message are identical to the scanner it
        replaces.
        """
        source = self._source
        length = len(source)
        tokens: list[Token] = []
        append = tokens.append
        master = _MASTER_RE.match
        pos = 0
        line = 1
        line_start = 0  # index just past the most recent newline
        while pos < length:
            match = master(source, pos)
            if match is None or match.lastgroup == "bad":
                # Sync the slow scanner, let it produce the token or raise
                # the precise error, then resume the fast loop after it.
                self._pos = pos
                self._line = line
                self._column = pos - line_start + 1
                append(self._next_token())
                pos = self._pos
                line = self._line
                line_start = self._pos - self._column + 1
                continue
            group = match.lastgroup
            text = match.group()
            end = match.end()
            if group == "ws":
                newlines = text.count("\n")
                if newlines:
                    line += newlines
                    line_start = pos + text.rfind("\n") + 1
                pos = end
                continue
            token_line = line
            column = pos - line_start + 1
            if group == "id":
                # Interning collapses the many repeats of each identifier or
                # keyword across a corpus into one string object, cutting
                # parse-time memory and making dict lookups keyed on token
                # text pointer-comparison fast.
                text = sys.intern(text)
                kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
            elif group == "punct":
                kind = TokenKind.PUNCTUATOR
            elif group == "num":
                kind = _classify_number(text)
            else:  # str / char — literals may span lines via escaped newlines
                kind = TokenKind.STRING_LITERAL if group == "str" else TokenKind.CHAR_LITERAL
                newlines = text.count("\n")
                if newlines:
                    line += newlines
                    line_start = pos + text.rfind("\n") + 1
            append(Token(kind, text, token_line, column))
            pos = end
        append(Token(TokenKind.EOF, "", line, length - line_start + 1))
        return tokens

    # ------------------------------------------------------------------
    # Internal machinery.
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        newlines = text.count("\n")
        if newlines:
            self._line += newlines
            self._column = len(text) - text.rfind("\n")
        else:
            self._column += len(text)
        self._pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        source = self._source
        while self._pos < len(source):
            ch = source[self._pos]
            if ch in " \t\r\n\f\v":
                match = _WHITESPACE_RE.match(source, self._pos)
                self._advance(match.end() - self._pos)
            elif ch == "/" and self._peek(1) == "/":
                newline = source.find("\n", self._pos)
                end = newline if newline != -1 else len(source)
                self._advance(end - self._pos)
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._column
                terminator = source.find("*/", self._pos + 2)
                if terminator == -1:
                    self._advance(len(source) - self._pos)
                    raise LexerError("unterminated block comment", start_line, start_col)
                self._advance(terminator + 2 - self._pos)
            elif ch == "\\" and self._peek(1) == "\n":
                # Line continuation outside of the preprocessor; harmless.
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", self._line, self._column)

        line, column = self._line, self._column
        ch = self._peek()

        # Non-ASCII text (identifiers in other scripts, stray unicode from
        # README-grade content files) lexes as identifier characters: the
        # lexer is deliberately permissive and later stages reject what is
        # not real OpenCL.
        if ch in _IDENT_START or ord(ch) > 127:
            return self._lex_identifier(line, column)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        if ch == "#":
            # Stray preprocessor directives after preprocessing are an error,
            # but hash tokens inside macros may survive; treat as punctuator.
            self._advance()
            return Token(TokenKind.PUNCTUATOR, "#", line, column)

        for punct in _PUNCTUATORS_BY_FIRST.get(ch, ()):
            if self._source.startswith(punct, self._pos):
                self._pos += len(punct)
                self._column += len(punct)
                return Token(TokenKind.PUNCTUATOR, punct, line, column)

        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        match = _IDENTIFIER_RE.match(self._source, self._pos)
        # Interning collapses the many repeats of each identifier/keyword
        # across a corpus into one string object, cutting parse-time memory
        # and making the dict lookups keyed on token text (parser type
        # table, interpreter environments) pointer-comparison fast.
        text = sys.intern(match.group())
        self._pos = match.end()
        self._column += len(text)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        match = _NUMBER_RE.match(self._source, self._pos)
        text = match.group()
        self._pos = match.end()
        self._column += len(text)
        return Token(_classify_number(text), text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while True:
            if self._pos >= len(self._source):
                raise LexerError("unterminated string literal", line, column)
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
            elif ch == '"':
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenKind.STRING_LITERAL, self._source[start : self._pos], line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while True:
            if self._pos >= len(self._source):
                raise LexerError("unterminated character literal", line, column)
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
            elif ch == "'":
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenKind.CHAR_LITERAL, self._source[start : self._pos], line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a list of tokens ending with EOF."""
    return Lexer(source).tokenize()
