"""Tokenizer for the OpenCL C subset understood by this reproduction.

The lexer is deliberately permissive: it recognises the full C operator set,
integer/floating literals with OpenCL suffixes, character and string
literals, identifiers and keywords.  Anything else raises :class:`LexerError`
with a line/column so the rejection filter can report *why* a GitHub content
file failed to compile.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import LexerError


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENTIFIER = auto()
    KEYWORD = auto()
    INT_LITERAL = auto()
    FLOAT_LITERAL = auto()
    CHAR_LITERAL = auto()
    STRING_LITERAL = auto()
    PUNCTUATOR = auto()
    EOF = auto()


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: The lexical category.
        text: The exact source text of the token.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


#: Keywords of the OpenCL C language subset (C99 keywords plus OpenCL
#: qualifiers).  Type names are handled by the parser via the type table so
#: that typedefs behave uniformly.
KEYWORDS = frozenset(
    {
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
        "goto",
        "sizeof",
        "struct",
        "union",
        "enum",
        "typedef",
        "const",
        "volatile",
        "restrict",
        "static",
        "inline",
        "extern",
        "register",
        "signed",
        "unsigned",
        "void",
        # OpenCL address space / access qualifiers.
        "__kernel",
        "kernel",
        "__global",
        "global",
        "__local",
        "local",
        "__constant",
        "constant",
        "__private",
        "private",
        "__read_only",
        "read_only",
        "__write_only",
        "write_only",
        "__read_write",
        "read_write",
        "__attribute__",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ".",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
# Sets, not strings: ``"" in "uUlL..."`` is True, so testing ``_peek()``
# (which returns "" at end of input) against a plain string loops forever
# on sources that end in a numeric literal.
_NUMBER_SUFFIXES = frozenset("uUlLfFhH")
_FLOAT_SUFFIXES = frozenset("fFhH")
_SIGNS = frozenset("+-")


class Lexer:
    """Converts OpenCL C source text into a list of :class:`Token`."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token stream, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Internal machinery.
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._column
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexerError("unterminated block comment", start_line, start_col)
            elif ch == "\\" and self._peek(1) == "\n":
                # Line continuation outside of the preprocessor; harmless.
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", self._line, self._column)

        line, column = self._line, self._column
        ch = self._peek()

        # Non-ASCII text (identifiers in other scripts, stray unicode from
        # README-grade content files) lexes as identifier characters: the
        # lexer is deliberately permissive and later stages reject what is
        # not real OpenCL.
        if ch in _IDENT_START or ord(ch) > 127:
            return self._lex_identifier(line, column)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        if ch == "#":
            # Stray preprocessor directives after preprocessing are an error,
            # but hash tokens inside macros may survive; treat as punctuator.
            self._advance()
            return Token(TokenKind.PUNCTUATOR, "#", line, column)

        for punct in _PUNCTUATORS:
            if self._source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCTUATOR, punct, line, column)

        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source):
            ch = self._peek()
            if ch not in _IDENT_CONT and ord(ch) <= 127:
                break
            self._advance()
        # Interning collapses the many repeats of each identifier/keyword
        # across a corpus into one string object, cutting parse-time memory
        # and making the dict lookups keyed on token text (parser type
        # table, interpreter environments) pointer-comparison fast.
        text = sys.intern(self._source[start : self._pos])
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        is_float = False

        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in _HEX_DIGITS:
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() in ("e", "E") and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in _SIGNS and self._peek(2) in _DIGITS)
            ):
                is_float = True
                self._advance()
                if self._peek() in _SIGNS:
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()

        # Suffixes: u, U, l, L, f, F, h (half) in any reasonable combination.
        while self._peek() in _NUMBER_SUFFIXES:
            if self._peek() in _FLOAT_SUFFIXES:
                is_float = True
            self._advance()

        text = self._source[start : self._pos]
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while True:
            if self._pos >= len(self._source):
                raise LexerError("unterminated string literal", line, column)
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
            elif ch == '"':
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenKind.STRING_LITERAL, self._source[start : self._pos], line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()  # opening quote
        while True:
            if self._pos >= len(self._source):
                raise LexerError("unterminated character literal", line, column)
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
            elif ch == "'":
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenKind.CHAR_LITERAL, self._source[start : self._pos], line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a list of tokens ending with EOF."""
    return Lexer(source).tokenize()
