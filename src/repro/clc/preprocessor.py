"""A small C preprocessor for OpenCL content files.

The paper's toolchain relies on the Clang preprocessor; here we implement the
subset needed to process real-world OpenCL device code:

* comment stripping,
* ``#include`` resolution through a caller-supplied header resolver
  (used both by the rejection filter's shim header and by the corpus
  miner's recursive header inliner),
* object-like and function-like ``#define`` macros and ``#undef``,
* conditional compilation (``#if``/``#ifdef``/``#ifndef``/``#elif``/
  ``#else``/``#endif``) with ``defined()`` and integer expressions,
* ``#pragma`` (ignored) and ``#error`` (raises).

The output is plain OpenCL C text suitable for the lexer/parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PreprocessorError

#: Signature of an include resolver: maps a header name (as written between
#: quotes or angle brackets) to its text, or returns ``None`` when unknown.
IncludeResolver = Callable[[str], "str | None"]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
#: Expansion scanner: a string literal (escapes included, closing quote
#: optional so an unterminated literal still consumes to end of line) or an
#: identifier.  Text between matches cannot start a string or a macro name.
_EXPAND_SCAN_RE = re.compile(r'"(?:\\[\s\S]|[^"\\])*"?|[A-Za-z_][A-Za-z0-9_]*')
_DEFINED_CALL_RE = re.compile(r"defined\s*(?:\(\s*(\w+)\s*\)|(\w+))")


@dataclass
class MacroDefinition:
    """A single ``#define`` entry."""

    name: str
    body: str
    parameters: list[str] | None = None
    variadic: bool = False

    @property
    def is_function_like(self) -> bool:
        return self.parameters is not None


@dataclass
class PreprocessorResult:
    """Output of a preprocessing run."""

    text: str
    macros: dict[str, MacroDefinition] = field(default_factory=dict)
    included_headers: list[str] = field(default_factory=list)
    unresolved_headers: list[str] = field(default_factory=list)


def strip_comments(source: str) -> str:
    """Remove block and line comments, preserving newlines for line numbers."""
    # No comment opener anywhere (even inside a string, where it would be
    # copied verbatim) means the scan below is the identity.
    if "//" not in source and "/*" not in source:
        return source
    out: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i < n and not (source[i] == "*" and i + 1 < n and source[i + 1] == "/"):
                if source[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
            out.append(" ")
        elif ch == '"':
            out.append(ch)
            i += 1
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    out.append(source[i : i + 2])
                    i += 2
                    continue
                out.append(source[i])
                i += 1
            if i < n:
                out.append('"')
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _join_continuations(source: str) -> str:
    """Join lines ending with a backslash into single logical lines."""
    return re.sub(r"\\\s*\n", " ", source)


class Preprocessor:
    """Expands macros, resolves includes and evaluates conditionals."""

    def __init__(
        self,
        include_resolver: IncludeResolver | None = None,
        predefined: dict[str, str] | None = None,
        max_include_depth: int = 16,
        max_expansion_passes: int = 8,
        macro_table: dict[str, MacroDefinition] | None = None,
    ):
        self._include_resolver = include_resolver
        self._max_include_depth = max_include_depth
        self._max_expansion_passes = max_expansion_passes
        self._macros: dict[str, MacroDefinition] = {}
        if macro_table:
            # A prebuilt table (e.g. from a pre-compiled prelude header);
            # MacroDefinition values are immutable so sharing them is safe.
            self._macros.update(macro_table)
        predefined = predefined or {}
        for name, body in predefined.items():
            self._macros[name] = MacroDefinition(name=name, body=body)
        self._included: list[str] = []
        self._unresolved: list[str] = []

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def preprocess(self, source: str) -> PreprocessorResult:
        """Preprocess *source* and return the expanded text plus macro table."""
        text = self._process(source, depth=0)
        return PreprocessorResult(
            text=text,
            macros=dict(self._macros),
            included_headers=list(self._included),
            unresolved_headers=list(self._unresolved),
        )

    # ------------------------------------------------------------------
    # Directive processing.
    # ------------------------------------------------------------------

    def _process(self, source: str, depth: int) -> str:
        if depth > self._max_include_depth:
            raise PreprocessorError("maximum include depth exceeded")
        source = strip_comments(source)
        source = _join_continuations(source)

        output_lines: list[str] = []
        # Conditional stack entries: (taking, has_taken_branch)
        cond_stack: list[list[bool]] = []

        for lineno, raw_line in enumerate(source.split("\n"), start=1):
            stripped = raw_line.lstrip()
            if stripped.startswith("#"):
                self._handle_directive(
                    stripped, lineno, depth, cond_stack, output_lines
                )
                continue
            if self._active(cond_stack):
                output_lines.append(self._expand_line(raw_line))

        if cond_stack:
            raise PreprocessorError("unterminated conditional directive")
        return "\n".join(output_lines)

    def _active(self, cond_stack: list[list[bool]]) -> bool:
        return all(entry[0] for entry in cond_stack)

    def _handle_directive(
        self,
        line: str,
        lineno: int,
        depth: int,
        cond_stack: list[list[bool]],
        output_lines: list[str],
    ) -> None:
        body = line[1:].strip()
        match = _IDENT_RE.match(body)
        directive = match.group(0) if match else ""
        rest = body[len(directive) :].strip()

        if directive in ("ifdef", "ifndef", "if"):
            if not self._active(cond_stack):
                # Nested under an inactive branch: push an always-false frame so
                # the matching #endif pops correctly.
                cond_stack.append([False, True])
                return
            if directive == "ifdef":
                taking = rest.split()[0] in self._macros if rest else False
            elif directive == "ifndef":
                taking = rest.split()[0] not in self._macros if rest else True
            else:
                taking = self._evaluate_condition(rest, lineno)
            cond_stack.append([taking, taking])
        elif directive == "elif":
            if not cond_stack:
                raise PreprocessorError("#elif without #if", lineno)
            frame = cond_stack[-1]
            if frame[1]:
                frame[0] = False
            else:
                frame[0] = self._evaluate_condition(rest, lineno)
                frame[1] = frame[1] or frame[0]
        elif directive == "else":
            if not cond_stack:
                raise PreprocessorError("#else without #if", lineno)
            frame = cond_stack[-1]
            frame[0] = not frame[1]
            frame[1] = True
        elif directive == "endif":
            if not cond_stack:
                raise PreprocessorError("#endif without #if", lineno)
            cond_stack.pop()
        elif not self._active(cond_stack):
            return
        elif directive == "define":
            self._handle_define(rest, lineno)
        elif directive == "undef":
            name = rest.split()[0] if rest else ""
            self._macros.pop(name, None)
        elif directive == "include":
            self._handle_include(rest, lineno, depth, output_lines)
        elif directive == "pragma":
            return
        elif directive == "error":
            raise PreprocessorError(f"#error: {rest}", lineno)
        elif directive == "warning" or directive == "line" or directive == "":
            return
        else:
            # Unknown directive: ignore, matching Clang's -Wunknown-pragmas spirit.
            return

    def _handle_define(self, rest: str, lineno: int) -> None:
        match = _IDENT_RE.match(rest)
        if not match:
            raise PreprocessorError("malformed #define", lineno)
        name = match.group(0)
        after = rest[len(name) :]
        if after.startswith("("):
            close = after.find(")")
            if close == -1:
                raise PreprocessorError("unterminated macro parameter list", lineno)
            params_text = after[1:close].strip()
            body = after[close + 1 :].strip()
            variadic = False
            parameters: list[str] = []
            if params_text:
                for param in params_text.split(","):
                    param = param.strip()
                    if param == "...":
                        variadic = True
                    elif param:
                        parameters.append(param)
            self._macros[name] = MacroDefinition(name, body, parameters, variadic)
        else:
            self._macros[name] = MacroDefinition(name, after.strip())

    def _handle_include(
        self, rest: str, lineno: int, depth: int, output_lines: list[str]
    ) -> None:
        header = rest.strip()
        if header.startswith('"') and header.endswith('"'):
            header_name = header[1:-1]
        elif header.startswith("<") and header.endswith(">"):
            header_name = header[1:-1]
        else:
            raise PreprocessorError(f"malformed #include: {rest!r}", lineno)

        text = self._include_resolver(header_name) if self._include_resolver else None
        if text is None:
            self._unresolved.append(header_name)
            return
        self._included.append(header_name)
        output_lines.append(self._process(text, depth + 1))

    # ------------------------------------------------------------------
    # Conditional expression evaluation.
    # ------------------------------------------------------------------

    def _evaluate_condition(self, expression: str, lineno: int) -> bool:
        def replace_defined(match: re.Match[str]) -> str:
            name = match.group(1) or match.group(2)
            return "1" if name in self._macros else "0"

        expr = _DEFINED_CALL_RE.sub(replace_defined, expression)
        expr = self._expand_line(expr)
        # Any remaining identifier evaluates to 0, per the C standard.
        expr = _IDENT_RE.sub("0", expr)
        expr = expr.replace("&&", " and ").replace("||", " or ").replace("!", " not ")
        expr = expr.replace(" not =", " !=")  # repair '!=' broken by the replace above
        expr = re.sub(r"\b0+(\d)", r"\1", expr)  # avoid octal-looking literals
        if not expr.strip():
            return False
        try:
            return bool(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - integer expr
        except Exception:
            return False

    # ------------------------------------------------------------------
    # Macro expansion.
    # ------------------------------------------------------------------

    def _expand_line(self, line: str) -> str:
        text = line
        for _ in range(self._max_expansion_passes):
            expanded = self._expand_once(text)
            if expanded == text:
                break
            text = expanded
        return text

    def _expand_once(self, text: str) -> str:
        # Jump from string literal to identifier with one regex search
        # instead of visiting every character: everything between matches is
        # copied through in slices, strings verbatim, and only identifiers
        # hit the macro table.
        macros = self._macros
        search = _EXPAND_SCAN_RE.search
        out: list[str] = []
        i = 0
        n = len(text)
        while i < n:
            match = search(text, i)
            if match is None:
                out.append(text[i:])
                break
            start = match.start()
            if start > i:
                out.append(text[i:start])
            name = match.group()
            i = match.end()
            if name[0] == '"':
                out.append(name)
                continue
            macro = macros.get(name)
            if macro is None:
                out.append(name)
                continue
            if not macro.is_function_like:
                out.append(macro.body)
                continue
            # Function-like macro: require an argument list.
            j = i
            while j < n and text[j] in " \t":
                j += 1
            if j >= n or text[j] != "(":
                out.append(name)
                continue
            args, end = self._parse_macro_args(text, j)
            out.append(self._substitute(macro, args))
            i = end
        return "".join(out)

    def _parse_macro_args(self, text: str, open_paren: int) -> tuple[list[str], int]:
        depth = 0
        args: list[str] = []
        current: list[str] = []
        i = open_paren
        n = len(text)
        while i < n:
            ch = text[i]
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    return args, i + 1
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
            i += 1
        raise PreprocessorError("unterminated macro argument list")

    def _substitute(self, macro: MacroDefinition, args: list[str]) -> str:
        parameters = macro.parameters or []
        if len(args) == 1 and args[0] == "" and not parameters:
            args = []
        mapping = dict(zip(parameters, args))
        if macro.variadic:
            extra = args[len(parameters) :]
            mapping["__VA_ARGS__"] = ", ".join(extra)

        def replace(match: re.Match[str]) -> str:
            name = match.group(0)
            return mapping.get(name, name)

        body = _IDENT_RE.sub(replace, macro.body)
        # Token pasting and stringification are rare in OpenCL device code;
        # handle the common "a ## b" case and drop stray '#'.
        body = re.sub(r"\s*##\s*", "", body)
        return body


def preprocess(
    source: str,
    include_resolver: IncludeResolver | None = None,
    predefined: dict[str, str] | None = None,
) -> PreprocessorResult:
    """Convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(include_resolver, predefined).preprocess(source)
