"""Lowering from the OpenCL C AST to the PTX-like IR.

The goal of this pass is *not* to produce runnable machine code (kernel
execution is handled by the AST interpreter in :mod:`repro.execution`), but
to provide the two static artefacts the paper's toolchain derives from PTX:

* a static instruction count for the rejection filter (≥ 3 instructions), and
* per-kernel static operation counts for the Grewe et al. features
  (compute operations, global/local memory accesses, coalesced accesses,
  branches).

The lowering therefore mirrors how a simple compiler would translate the
source: one arithmetic instruction per source-level operation, explicit
loads/stores for pointer dereferences annotated with their address space and
a coalescing classification, and explicit branch instructions for control
flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import ast_nodes as ast
from repro.clc.builtins import (
    MATH_FUNCTIONS,
    SYNC_FUNCTIONS,
    WORK_ITEM_FUNCTIONS,
    is_builtin_function,
)
from repro.clc.ir import Instruction, IRFunction, IRModule
from repro.clc.types import AddressSpace, PointerType, Type
from repro.errors import CodegenError

_BINARY_OPCODES = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "&&": "and",
    "||": "or",
}

_COMPARISON_OPS = {"==", "!=", "<", ">", "<=", ">="}

_MATH_OPCODES = {
    "sqrt": "sqrt",
    "native_sqrt": "sqrt",
    "half_sqrt": "sqrt",
    "rsqrt": "rsqrt",
    "native_rsqrt": "rsqrt",
    "sin": "sin",
    "native_sin": "sin",
    "cos": "cos",
    "native_cos": "cos",
    "exp": "ex2",
    "exp2": "ex2",
    "native_exp": "ex2",
    "log": "lg2",
    "log2": "lg2",
    "native_log": "lg2",
    "fabs": "abs",
    "abs": "abs",
    "fmin": "min",
    "min": "min",
    "fmax": "max",
    "max": "max",
    "fma": "fma",
    "mad": "mad",
    "pow": "ex2",
}


@dataclass
class _FunctionContext:
    """Mutable state while lowering a single function."""

    function: IRFunction
    address_spaces: dict[str, str] = field(default_factory=dict)
    gid_aliases: set[str] = field(default_factory=set)
    lid_aliases: set[str] = field(default_factory=set)
    next_register: int = 0
    next_label: int = 0

    def new_register(self, prefix: str = "r") -> str:
        name = f"%{prefix}{self.next_register}"
        self.next_register += 1
        return name

    def new_label(self, prefix: str = "L") -> str:
        name = f"{prefix}_{self.next_label}"
        self.next_label += 1
        return name

    def emit(self, instruction: Instruction) -> str | None:
        self.function.instructions.append(instruction)
        return instruction.result


class CodeGenerator:
    """Lowers a :class:`TranslationUnit` to an :class:`IRModule`."""

    def __init__(self, unit: ast.TranslationUnit):
        self._unit = unit
        self._global_spaces = {
            g.declarator.name: ("constant" if g.is_constant else "private")
            for g in unit.globals
            if g.declarator
        }

    def lower(self) -> IRModule:
        module = IRModule()
        for function in self._unit.functions:
            if function.body is None:
                continue
            module.functions.append(self._lower_function(function))
        return module

    # ------------------------------------------------------------------
    # Functions.
    # ------------------------------------------------------------------

    def _lower_function(self, function: ast.FunctionDecl) -> IRFunction:
        ir_function = IRFunction(
            name=function.name,
            is_kernel=function.is_kernel,
            parameters=tuple(p.name for p in function.parameters),
        )
        context = _FunctionContext(function=ir_function)
        context.address_spaces.update(self._global_spaces)

        for parameter in function.parameters:
            space = self._space_of_type(parameter.declared_type, parameter.address_space)
            context.address_spaces[parameter.name] = space
            register = context.new_register("p")
            context.emit(
                Instruction(
                    opcode="ld",
                    result=register,
                    operands=(f"[{parameter.name}]",),
                    address_space="param",
                    type_suffix=self._type_suffix(parameter.declared_type),
                    comment=f"parameter {parameter.name}",
                )
            )

        self._lower_statement(function.body, context)
        if not ir_function.instructions or ir_function.instructions[-1].opcode != "ret":
            context.emit(Instruction(opcode="ret"))
        return ir_function

    @staticmethod
    def _space_of_type(declared_type: Type | None, default: AddressSpace) -> str:
        if isinstance(declared_type, PointerType):
            return declared_type.address_space.value
        return default.value if isinstance(default, AddressSpace) else "private"

    @staticmethod
    def _type_suffix(declared_type: Type | None) -> str:
        if declared_type is None:
            return "b32"
        if isinstance(declared_type, PointerType):
            return "u64"
        text = str(declared_type)
        if text.startswith("float") or text.startswith("half"):
            return "f32"
        if text.startswith("double"):
            return "f64"
        if text.startswith(("uint", "uchar", "ushort", "ulong", "size_t", "bool")):
            return "u32"
        return "s32"

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _lower_statement(self, statement: ast.Statement | None, context: _FunctionContext) -> None:
        if statement is None or isinstance(statement, (ast.EmptyStmt,)):
            return
        if isinstance(statement, ast.CompoundStmt):
            for child in statement.statements:
                self._lower_statement(child, context)
        elif isinstance(statement, ast.DeclStmt):
            self._lower_declaration(statement, context)
        elif isinstance(statement, ast.ExprStmt):
            if statement.expression is not None:
                self._lower_expression(statement.expression, context)
        elif isinstance(statement, ast.IfStmt):
            self._lower_if(statement, context)
        elif isinstance(statement, ast.ForStmt):
            self._lower_for(statement, context)
        elif isinstance(statement, ast.WhileStmt):
            self._lower_while(statement, context)
        elif isinstance(statement, ast.DoWhileStmt):
            self._lower_do_while(statement, context)
        elif isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                self._lower_expression(statement.value, context)
            context.emit(Instruction(opcode="ret"))
        elif isinstance(statement, (ast.BreakStmt, ast.ContinueStmt)):
            context.emit(Instruction(opcode="bra", operands=(context.new_label("EXIT"),)))
        elif isinstance(statement, ast.SwitchStmt):
            self._lower_switch(statement, context)
        else:
            raise CodegenError(f"cannot lower statement {type(statement).__name__}")

    def _lower_declaration(self, statement: ast.DeclStmt, context: _FunctionContext) -> None:
        for declarator in statement.declarators:
            space = declarator.address_space.value
            if isinstance(declarator.declared_type, PointerType):
                space = declarator.declared_type.address_space.value
            context.address_spaces[declarator.name] = space
            if declarator.initializer is not None:
                value = self._lower_expression(declarator.initializer, context)
                context.emit(
                    Instruction(
                        opcode="mov",
                        result=context.new_register(),
                        operands=(value or declarator.name,),
                        type_suffix=self._type_suffix(declarator.declared_type),
                        comment=f"init {declarator.name}",
                    )
                )
                if self._is_gid_expression(declarator.initializer, context):
                    context.gid_aliases.add(declarator.name)
                if self._is_lid_expression(declarator.initializer):
                    context.lid_aliases.add(declarator.name)

    def _lower_condition_and_branch(
        self, condition: ast.Expression | None, context: _FunctionContext, target: str
    ) -> None:
        if condition is not None:
            value = self._lower_expression(condition, context)
            predicate = context.new_register("p")
            context.emit(
                Instruction(
                    opcode="setp",
                    result=predicate,
                    operands=(value or "0", "0"),
                    comment="branch condition",
                )
            )
        context.emit(Instruction(opcode="bra", operands=(target,), comment="conditional"))

    def _lower_if(self, statement: ast.IfStmt, context: _FunctionContext) -> None:
        else_label = context.new_label("ELSE")
        end_label = context.new_label("ENDIF")
        self._lower_condition_and_branch(statement.condition, context, else_label)
        self._lower_statement(statement.then_branch, context)
        if statement.else_branch is not None:
            context.emit(Instruction(opcode="bra", operands=(end_label,)))
            context.emit(Instruction(opcode="label", operands=(else_label,)))
            self._lower_statement(statement.else_branch, context)
            context.emit(Instruction(opcode="label", operands=(end_label,)))
        else:
            context.emit(Instruction(opcode="label", operands=(else_label,)))

    def _lower_for(self, statement: ast.ForStmt, context: _FunctionContext) -> None:
        self._lower_statement(statement.init, context)
        head = context.new_label("FOR")
        exit_label = context.new_label("ENDFOR")
        context.emit(Instruction(opcode="label", operands=(head,)))
        self._lower_condition_and_branch(statement.condition, context, exit_label)
        self._lower_statement(statement.body, context)
        if statement.increment is not None:
            self._lower_expression(statement.increment, context)
        context.emit(Instruction(opcode="bra", operands=(head,), comment="loop back-edge"))
        context.emit(Instruction(opcode="label", operands=(exit_label,)))

    def _lower_while(self, statement: ast.WhileStmt, context: _FunctionContext) -> None:
        head = context.new_label("WHILE")
        exit_label = context.new_label("ENDWHILE")
        context.emit(Instruction(opcode="label", operands=(head,)))
        self._lower_condition_and_branch(statement.condition, context, exit_label)
        self._lower_statement(statement.body, context)
        context.emit(Instruction(opcode="bra", operands=(head,), comment="loop back-edge"))
        context.emit(Instruction(opcode="label", operands=(exit_label,)))

    def _lower_do_while(self, statement: ast.DoWhileStmt, context: _FunctionContext) -> None:
        head = context.new_label("DO")
        context.emit(Instruction(opcode="label", operands=(head,)))
        self._lower_statement(statement.body, context)
        self._lower_condition_and_branch(statement.condition, context, head)

    def _lower_switch(self, statement: ast.SwitchStmt, context: _FunctionContext) -> None:
        value = self._lower_expression(statement.condition, context)
        end_label = context.new_label("ENDSWITCH")
        for case in statement.cases:
            case_label = context.new_label("CASE")
            if case.value is not None:
                case_value = self._lower_expression(case.value, context)
                predicate = context.new_register("p")
                context.emit(
                    Instruction(
                        opcode="setp",
                        result=predicate,
                        operands=(value or "0", case_value or "0"),
                    )
                )
            context.emit(Instruction(opcode="bra", operands=(case_label,)))
            context.emit(Instruction(opcode="label", operands=(case_label,)))
            for child in case.body:
                self._lower_statement(child, context)
        context.emit(Instruction(opcode="label", operands=(end_label,)))

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _lower_expression(self, expression: ast.Expression, context: _FunctionContext) -> str | None:
        if isinstance(expression, (ast.IntLiteral,)):
            return str(expression.value)
        if isinstance(expression, ast.FloatLiteral):
            return repr(expression.value)
        if isinstance(expression, (ast.CharLiteral, ast.StringLiteral)):
            return "0"
        if isinstance(expression, ast.Identifier):
            return f"%{expression.name}"
        if isinstance(expression, ast.BinaryOp):
            return self._lower_binary(expression, context)
        if isinstance(expression, ast.UnaryOp):
            return self._lower_unary(expression, context)
        if isinstance(expression, ast.PostfixOp):
            operand = self._lower_expression(expression.operand, context)
            result = context.new_register()
            context.emit(
                Instruction(
                    opcode="add" if expression.op == "++" else "sub",
                    result=result,
                    operands=(operand or "0", "1"),
                )
            )
            return result
        if isinstance(expression, ast.Assignment):
            return self._lower_assignment(expression, context)
        if isinstance(expression, ast.TernaryOp):
            condition = self._lower_expression(expression.condition, context)
            if_true = self._lower_expression(expression.if_true, context)
            if_false = self._lower_expression(expression.if_false, context)
            predicate = context.new_register("p")
            context.emit(Instruction(opcode="setp", result=predicate, operands=(condition or "0", "0")))
            result = context.new_register()
            context.emit(
                Instruction(
                    opcode="selp",
                    result=result,
                    operands=(if_true or "0", if_false or "0", predicate),
                )
            )
            return result
        if isinstance(expression, ast.Call):
            return self._lower_call(expression, context)
        if isinstance(expression, ast.Index):
            return self._lower_load(expression, context)
        if isinstance(expression, ast.Member):
            base = self._lower_expression(expression.base, context)
            result = context.new_register()
            context.emit(
                Instruction(
                    opcode="mov",
                    result=result,
                    operands=(f"{base}.{expression.member}",),
                    comment="vector/struct component read",
                )
            )
            return result
        if isinstance(expression, ast.Cast):
            operand = self._lower_expression(expression.operand, context)
            result = context.new_register()
            context.emit(
                Instruction(
                    opcode="cvt",
                    result=result,
                    operands=(operand or "0",),
                    type_suffix=self._type_suffix(expression.target_type),
                )
            )
            return result
        if isinstance(expression, ast.VectorLiteral):
            result = context.new_register("v")
            for element in expression.elements:
                value = self._lower_expression(element, context)
                context.emit(
                    Instruction(
                        opcode="mov",
                        result=context.new_register(),
                        operands=(value or "0",),
                        comment="vector literal element",
                    )
                )
            return result
        if isinstance(expression, ast.SizeOf):
            return "8"
        if isinstance(expression, ast.InitializerList):
            for element in expression.elements:
                self._lower_expression(element, context)
            return context.new_register()
        raise CodegenError(f"cannot lower expression {type(expression).__name__}")

    def _lower_binary(self, expression: ast.BinaryOp, context: _FunctionContext) -> str:
        left = self._lower_expression(expression.left, context)
        right = self._lower_expression(expression.right, context)
        result = context.new_register()
        if expression.op in _COMPARISON_OPS:
            context.emit(
                Instruction(
                    opcode="setp",
                    result=result,
                    operands=(left or "0", right or "0"),
                    comment=f"compare {expression.op}",
                )
            )
            return result
        if expression.op == ",":
            return right or "0"
        opcode = _BINARY_OPCODES.get(expression.op)
        if opcode is None:
            raise CodegenError(f"unsupported binary operator {expression.op!r}")
        context.emit(Instruction(opcode=opcode, result=result, operands=(left or "0", right or "0")))
        return result

    def _lower_unary(self, expression: ast.UnaryOp, context: _FunctionContext) -> str:
        if expression.op == "*":
            return self._lower_pointer_dereference(expression.operand, context)
        if expression.op == "&":
            operand = self._lower_expression(expression.operand, context)
            return operand or "0"
        operand = self._lower_expression(expression.operand, context)
        result = context.new_register()
        opcode = {"-": "neg", "+": "mov", "!": "not", "~": "not", "++": "add", "--": "sub"}[
            expression.op
        ]
        operands = (operand or "0", "1") if expression.op in ("++", "--") else (operand or "0",)
        context.emit(Instruction(opcode=opcode, result=result, operands=operands))
        return result

    def _lower_assignment(self, expression: ast.Assignment, context: _FunctionContext) -> str:
        value = self._lower_expression(expression.value, context)

        # Compound assignment implies a read-modify-write of the target.
        if expression.op != "=":
            self._lower_read_of_target(expression.target, context)
            operator = expression.op[:-1]
            opcode = _BINARY_OPCODES.get(operator, "add")
            combined = context.new_register()
            context.emit(Instruction(opcode=opcode, result=combined, operands=(value or "0", "0")))
            value = combined

        target = expression.target
        if isinstance(target, ast.Index):
            self._lower_store(target, value, context)
        elif isinstance(target, ast.Member) and isinstance(target.base, ast.Index):
            self._lower_store(target.base, value, context)
        elif isinstance(target, ast.Member):
            context.emit(
                Instruction(
                    opcode="mov",
                    result=context.new_register(),
                    operands=(value or "0",),
                    comment="vector component write",
                )
            )
        elif isinstance(target, ast.UnaryOp) and target.op == "*":
            self._lower_store_through_pointer(target.operand, value, context)
        elif isinstance(target, ast.Identifier):
            context.emit(
                Instruction(
                    opcode="mov",
                    result=f"%{target.name}",
                    operands=(value or "0",),
                )
            )
            if expression.op == "=" and self._is_gid_expression(expression.value, context):
                context.gid_aliases.add(target.name)
        else:
            context.emit(
                Instruction(opcode="mov", result=context.new_register(), operands=(value or "0",))
            )
        return value or "0"

    def _lower_read_of_target(self, target: ast.Expression, context: _FunctionContext) -> None:
        if isinstance(target, ast.Index):
            self._lower_load(target, context)
        elif isinstance(target, ast.Member) and isinstance(target.base, ast.Index):
            self._lower_load(target.base, context)

    def _lower_call(self, expression: ast.Call, context: _FunctionContext) -> str:
        name = expression.callee
        arguments = [self._lower_expression(a, context) for a in expression.arguments]
        result = context.new_register()

        if name in WORK_ITEM_FUNCTIONS:
            register_name = {
                "get_global_id": "%tid_global",
                "get_local_id": "%tid_local",
                "get_group_id": "%ctaid",
                "get_global_size": "%ntid_global",
                "get_local_size": "%ntid",
                "get_num_groups": "%nctaid",
            }.get(name, "%sreg")
            context.emit(
                Instruction(
                    opcode="mov",
                    result=result,
                    operands=(register_name,),
                    comment=name,
                )
            )
            return result
        if name in SYNC_FUNCTIONS:
            context.emit(Instruction(opcode="bar", operands=("0",), comment=name))
            return result
        if name in _MATH_OPCODES:
            context.emit(
                Instruction(
                    opcode=_MATH_OPCODES[name],
                    result=result,
                    operands=tuple(a or "0" for a in arguments),
                    type_suffix="f32",
                )
            )
            return result
        if name.startswith(("as_", "convert_")):
            context.emit(
                Instruction(opcode="cvt", result=result, operands=tuple(a or "0" for a in arguments))
            )
            return result
        if name.startswith(("atomic_", "atom_")):
            context.emit(
                Instruction(
                    opcode="atom",
                    result=result,
                    operands=tuple(a or "0" for a in arguments),
                    address_space="global",
                    comment=name,
                )
            )
            return result
        if name.startswith("vload"):
            context.emit(
                Instruction(
                    opcode="ld",
                    result=result,
                    operands=tuple(a or "0" for a in arguments),
                    address_space=self._space_of_call_pointer(expression, context),
                    comment=name,
                )
            )
            return result
        if name.startswith("vstore"):
            context.emit(
                Instruction(
                    opcode="st",
                    operands=tuple(a or "0" for a in arguments),
                    address_space=self._space_of_call_pointer(expression, context),
                    comment=name,
                )
            )
            return result
        if is_builtin_function(name):
            context.emit(
                Instruction(
                    opcode="add" if name in MATH_FUNCTIONS else "call",
                    result=result,
                    operands=tuple(a or "0" for a in arguments),
                    comment=name,
                )
            )
            return result
        context.emit(
            Instruction(
                opcode="call",
                result=result,
                operands=(name,) + tuple(a or "0" for a in arguments),
            )
        )
        return result

    def _space_of_call_pointer(self, expression: ast.Call, context: _FunctionContext) -> str:
        for argument in expression.arguments:
            if isinstance(argument, ast.Identifier):
                space = context.address_spaces.get(argument.name)
                if space in ("global", "local", "constant"):
                    return space
        return "global"

    # ------------------------------------------------------------------
    # Memory accesses.
    # ------------------------------------------------------------------

    def _base_name(self, expression: ast.Expression) -> str | None:
        if isinstance(expression, ast.Identifier):
            return expression.name
        if isinstance(expression, ast.Index):
            return self._base_name(expression.base)
        if isinstance(expression, ast.Member):
            return self._base_name(expression.base)
        if isinstance(expression, ast.UnaryOp):
            return self._base_name(expression.operand)
        if isinstance(expression, ast.BinaryOp):
            return self._base_name(expression.left) or self._base_name(expression.right)
        if isinstance(expression, ast.Cast):
            return self._base_name(expression.operand)
        return None

    def _space_of_access(self, base: ast.Expression, context: _FunctionContext) -> str:
        name = self._base_name(base)
        if name is None:
            return "private"
        return context.address_spaces.get(name, "private")

    def _lower_load(self, expression: ast.Index, context: _FunctionContext) -> str:
        index_value = self._lower_expression(expression.index, context)
        space = self._space_of_access(expression.base, context)
        result = context.new_register()
        context.emit(
            Instruction(
                opcode="ld",
                result=result,
                operands=(f"[{self._base_name(expression.base) or 'ptr'} + {index_value}]",),
                address_space=space,
                coalesced=space == "global"
                and self._is_coalesced_index(expression.index, context),
            )
        )
        return result

    def _lower_store(self, target: ast.Index, value: str | None, context: _FunctionContext) -> None:
        index_value = self._lower_expression(target.index, context)
        space = self._space_of_access(target.base, context)
        context.emit(
            Instruction(
                opcode="st",
                operands=(
                    f"[{self._base_name(target.base) or 'ptr'} + {index_value}]",
                    value or "0",
                ),
                address_space=space,
                coalesced=space == "global" and self._is_coalesced_index(target.index, context),
            )
        )

    def _lower_pointer_dereference(self, pointer: ast.Expression, context: _FunctionContext) -> str:
        self._lower_expression(pointer, context)
        space = self._space_of_access(pointer, context)
        result = context.new_register()
        context.emit(
            Instruction(
                opcode="ld",
                result=result,
                operands=(f"[{self._base_name(pointer) or 'ptr'}]",),
                address_space=space,
                coalesced=False,
            )
        )
        return result

    def _lower_store_through_pointer(
        self, pointer: ast.Expression, value: str | None, context: _FunctionContext
    ) -> None:
        space = self._space_of_access(pointer, context)
        context.emit(
            Instruction(
                opcode="st",
                operands=(f"[{self._base_name(pointer) or 'ptr'}]", value or "0"),
                address_space=space,
            )
        )

    # ------------------------------------------------------------------
    # Coalescing analysis.
    # ------------------------------------------------------------------

    def _is_gid_expression(self, expression: ast.Expression | None, context: _FunctionContext) -> bool:
        """True if *expression* evaluates (syntactically) to a global-id-like value."""
        if expression is None:
            return False
        if isinstance(expression, ast.Call) and expression.callee == "get_global_id":
            return True
        if isinstance(expression, ast.Identifier):
            return expression.name in context.gid_aliases
        if isinstance(expression, ast.Cast):
            return self._is_gid_expression(expression.operand, context)
        if isinstance(expression, ast.BinaryOp) and expression.op in ("+", "-"):
            return self._is_gid_expression(expression.left, context) or self._is_gid_expression(
                expression.right, context
            )
        # get_group_id(0) * get_local_size(0) + get_local_id(0) is also gid-linear.
        if isinstance(expression, ast.BinaryOp) and expression.op == "*":
            left_is_group = self._mentions_call(expression.left, "get_group_id") or self._mentions_call(
                expression.right, "get_group_id"
            )
            right_is_size = self._mentions_call(expression.left, "get_local_size") or self._mentions_call(
                expression.right, "get_local_size"
            )
            return left_is_group and right_is_size
        return False

    @staticmethod
    def _is_lid_expression(expression: ast.Expression | None) -> bool:
        return isinstance(expression, ast.Call) and expression.callee == "get_local_id"

    @staticmethod
    def _mentions_call(expression: ast.Expression, callee: str) -> bool:
        for node in ast.walk(expression):
            if isinstance(node, ast.Call) and node.callee == callee:
                return True
        return False

    def _is_coalesced_index(self, index: ast.Expression, context: _FunctionContext) -> bool:
        """Heuristic coalescing classification of a global-memory index.

        An access ``a[i]`` is counted as coalesced when consecutive work-items
        touch consecutive addresses: the index is the global id (possibly via
        a local alias), optionally plus/minus a work-item-invariant term.  An
        index in which the global id is multiplied or divided (strided
        access), or an index that does not depend on the work-item id at all,
        is not coalesced.
        """
        if self._is_gid_expression(index, context):
            return True
        if isinstance(index, ast.BinaryOp) and index.op in ("+", "-"):
            return self._is_coalesced_index(index.left, context) or self._is_coalesced_index(
                index.right, context
            )
        if isinstance(index, ast.BinaryOp) and index.op == "%":
            # Wrapping a coalesced index by a work-item-invariant bound keeps
            # consecutive work-items on consecutive addresses almost everywhere.
            return self._is_coalesced_index(index.left, context)
        if isinstance(index, ast.Cast):
            return self._is_coalesced_index(index.operand, context)
        return False


def lower(unit: ast.TranslationUnit) -> IRModule:
    """Lower *unit* to the PTX-like IR."""
    return CodeGenerator(unit).lower()
