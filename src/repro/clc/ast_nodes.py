"""Abstract syntax tree node definitions for the OpenCL C subset.

Nodes are plain dataclasses with no behaviour beyond structural equality;
all analyses (semantic checks, IR lowering, interpretation, feature
extraction, identifier rewriting) are implemented as external visitors so
the tree stays a pure data model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc.types import AddressSpace, Type


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------------


@dataclass
class Expression(Node):
    pass


@dataclass
class IntLiteral(Expression):
    value: int
    text: str = ""


@dataclass
class FloatLiteral(Expression):
    value: float
    text: str = ""


@dataclass
class CharLiteral(Expression):
    value: str


@dataclass
class StringLiteral(Expression):
    value: str


@dataclass
class Identifier(Expression):
    name: str


@dataclass
class UnaryOp(Expression):
    """Prefix unary operator: ``-``, ``+``, ``!``, ``~``, ``*``, ``&``, ``++``, ``--``."""

    op: str
    operand: Expression


@dataclass
class PostfixOp(Expression):
    """Postfix ``++`` or ``--``."""

    op: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass
class Assignment(Expression):
    """Assignment, including compound forms (``+=``, ``*=``, ...)."""

    op: str
    target: Expression
    value: Expression


@dataclass
class TernaryOp(Expression):
    condition: Expression
    if_true: Expression
    if_false: Expression


@dataclass
class Call(Expression):
    callee: str
    arguments: list[Expression] = field(default_factory=list)


@dataclass
class Index(Expression):
    base: Expression
    index: Expression


@dataclass
class Member(Expression):
    """Member access, used for vector components (``v.x``, ``v.s3``) and structs."""

    base: Expression
    member: str
    arrow: bool = False


@dataclass
class Cast(Expression):
    target_type: Type
    target_type_name: str
    operand: Expression


@dataclass
class VectorLiteral(Expression):
    """An OpenCL vector construction, e.g. ``(float4)(0.0f, 1.0f, x, y)``."""

    target_type: Type
    target_type_name: str
    elements: list[Expression] = field(default_factory=list)


@dataclass
class SizeOf(Expression):
    target_type_name: str


@dataclass
class InitializerList(Expression):
    elements: list[Expression] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------------


@dataclass
class Statement(Node):
    pass


@dataclass
class CompoundStmt(Statement):
    statements: list[Statement] = field(default_factory=list)


@dataclass
class Declarator(Node):
    """A single declared name within a declaration statement."""

    name: str
    declared_type: Type
    type_name: str = ""
    array_size: Expression | None = None
    initializer: Expression | None = None
    address_space: AddressSpace = AddressSpace.PRIVATE


@dataclass
class DeclStmt(Statement):
    declarators: list[Declarator] = field(default_factory=list)


@dataclass
class ExprStmt(Statement):
    expression: Expression | None = None


@dataclass
class IfStmt(Statement):
    condition: Expression = None  # type: ignore[assignment]
    then_branch: Statement = None  # type: ignore[assignment]
    else_branch: Statement | None = None


@dataclass
class ForStmt(Statement):
    init: Statement | None = None
    condition: Expression | None = None
    increment: Expression | None = None
    body: Statement = None  # type: ignore[assignment]


@dataclass
class WhileStmt(Statement):
    condition: Expression = None  # type: ignore[assignment]
    body: Statement = None  # type: ignore[assignment]


@dataclass
class DoWhileStmt(Statement):
    body: Statement = None  # type: ignore[assignment]
    condition: Expression = None  # type: ignore[assignment]


@dataclass
class ReturnStmt(Statement):
    value: Expression | None = None


@dataclass
class BreakStmt(Statement):
    pass


@dataclass
class ContinueStmt(Statement):
    pass


@dataclass
class SwitchCase(Node):
    value: Expression | None = None  # ``None`` means ``default:``
    body: list[Statement] = field(default_factory=list)


@dataclass
class SwitchStmt(Statement):
    condition: Expression = None  # type: ignore[assignment]
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class EmptyStmt(Statement):
    pass


# ---------------------------------------------------------------------------
# Declarations / top level.
# ---------------------------------------------------------------------------


@dataclass
class ParameterDecl(Node):
    name: str
    declared_type: Type = None  # type: ignore[assignment]
    type_name: str = ""
    address_space: AddressSpace = AddressSpace.PRIVATE
    is_const: bool = False
    access: str | None = None


@dataclass
class FunctionDecl(Node):
    name: str
    return_type: Type = None  # type: ignore[assignment]
    return_type_name: str = "void"
    parameters: list[ParameterDecl] = field(default_factory=list)
    body: CompoundStmt | None = None
    is_kernel: bool = False
    is_inline: bool = False
    attributes: list[str] = field(default_factory=list)


@dataclass
class TypedefDecl(Node):
    name: str
    target_type: Type = None  # type: ignore[assignment]
    target_type_name: str = ""


@dataclass
class StructDecl(Node):
    name: str
    fields: list[Declarator] = field(default_factory=list)


@dataclass
class GlobalVarDecl(Node):
    declarator: Declarator = None  # type: ignore[assignment]
    is_constant: bool = False


@dataclass
class TranslationUnit(Node):
    """Root of the AST for one content file or one synthesized kernel."""

    functions: list[FunctionDecl] = field(default_factory=list)
    typedefs: list[TypedefDecl] = field(default_factory=list)
    structs: list[StructDecl] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)

    @property
    def kernels(self) -> list[FunctionDecl]:
        """Kernel functions (``__kernel``-qualified, with a body)."""
        return [f for f in self.functions if f.is_kernel and f.body is not None]

    @property
    def helper_functions(self) -> list[FunctionDecl]:
        """Non-kernel functions with bodies."""
        return [f for f in self.functions if not f.is_kernel and f.body is not None]

    def kernel(self, name: str) -> FunctionDecl:
        """Return the kernel named *name* (raises ``KeyError`` if absent)."""
        for function in self.kernels:
            if function.name == name:
                return function
        raise KeyError(name)


def walk(node: Node):
    """Yield *node* and all of its descendant nodes, depth-first.

    This generic traversal is the backbone of the feature extractors and of
    several invariants tested with hypothesis.
    """
    yield node
    for value in vars(node).values():
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
