"""Abstract syntax tree node definitions for the OpenCL C subset.

Nodes are plain dataclasses with no behaviour beyond structural equality;
all analyses (semantic checks, IR lowering, interpretation, feature
extraction, identifier rewriting) are implemented as external visitors so
the tree stays a pure data model.  Every node is slotted: corpus
preprocessing parses tens of thousands of content files, and per-instance
``__dict__``s dominated parse-time memory before ``slots=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.clc.types import AddressSpace, Type


@dataclass(slots=True)
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Expression(Node):
    pass


@dataclass(slots=True)
class IntLiteral(Expression):
    value: int
    text: str = ""


@dataclass(slots=True)
class FloatLiteral(Expression):
    value: float
    text: str = ""


@dataclass(slots=True)
class CharLiteral(Expression):
    value: str


@dataclass(slots=True)
class StringLiteral(Expression):
    value: str


@dataclass(slots=True)
class Identifier(Expression):
    name: str


@dataclass(slots=True)
class UnaryOp(Expression):
    """Prefix unary operator: ``-``, ``+``, ``!``, ``~``, ``*``, ``&``, ``++``, ``--``."""

    op: str
    operand: Expression


@dataclass(slots=True)
class PostfixOp(Expression):
    """Postfix ``++`` or ``--``."""

    op: str
    operand: Expression


@dataclass(slots=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression


@dataclass(slots=True)
class Assignment(Expression):
    """Assignment, including compound forms (``+=``, ``*=``, ...)."""

    op: str
    target: Expression
    value: Expression


@dataclass(slots=True)
class TernaryOp(Expression):
    condition: Expression
    if_true: Expression
    if_false: Expression


@dataclass(slots=True)
class Call(Expression):
    callee: str
    arguments: list[Expression] = field(default_factory=list)


@dataclass(slots=True)
class Index(Expression):
    base: Expression
    index: Expression


@dataclass(slots=True)
class Member(Expression):
    """Member access, used for vector components (``v.x``, ``v.s3``) and structs."""

    base: Expression
    member: str
    arrow: bool = False


@dataclass(slots=True)
class Cast(Expression):
    target_type: Type
    target_type_name: str
    operand: Expression


@dataclass(slots=True)
class VectorLiteral(Expression):
    """An OpenCL vector construction, e.g. ``(float4)(0.0f, 1.0f, x, y)``."""

    target_type: Type
    target_type_name: str
    elements: list[Expression] = field(default_factory=list)


@dataclass(slots=True)
class SizeOf(Expression):
    target_type_name: str


@dataclass(slots=True)
class InitializerList(Expression):
    elements: list[Expression] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Statement(Node):
    pass


@dataclass(slots=True)
class CompoundStmt(Statement):
    statements: list[Statement] = field(default_factory=list)


@dataclass(slots=True)
class Declarator(Node):
    """A single declared name within a declaration statement."""

    name: str
    declared_type: Type
    type_name: str = ""
    array_size: Expression | None = None
    initializer: Expression | None = None
    address_space: AddressSpace = AddressSpace.PRIVATE


@dataclass(slots=True)
class DeclStmt(Statement):
    declarators: list[Declarator] = field(default_factory=list)


@dataclass(slots=True)
class ExprStmt(Statement):
    expression: Expression | None = None


@dataclass(slots=True)
class IfStmt(Statement):
    condition: Expression = None  # type: ignore[assignment]
    then_branch: Statement = None  # type: ignore[assignment]
    else_branch: Statement | None = None


@dataclass(slots=True)
class ForStmt(Statement):
    init: Statement | None = None
    condition: Expression | None = None
    increment: Expression | None = None
    body: Statement = None  # type: ignore[assignment]


@dataclass(slots=True)
class WhileStmt(Statement):
    condition: Expression = None  # type: ignore[assignment]
    body: Statement = None  # type: ignore[assignment]


@dataclass(slots=True)
class DoWhileStmt(Statement):
    body: Statement = None  # type: ignore[assignment]
    condition: Expression = None  # type: ignore[assignment]


@dataclass(slots=True)
class ReturnStmt(Statement):
    value: Expression | None = None


@dataclass(slots=True)
class BreakStmt(Statement):
    pass


@dataclass(slots=True)
class ContinueStmt(Statement):
    pass


@dataclass(slots=True)
class SwitchCase(Node):
    value: Expression | None = None  # ``None`` means ``default:``
    body: list[Statement] = field(default_factory=list)


@dataclass(slots=True)
class SwitchStmt(Statement):
    condition: Expression = None  # type: ignore[assignment]
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass(slots=True)
class EmptyStmt(Statement):
    pass


# ---------------------------------------------------------------------------
# Declarations / top level.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ParameterDecl(Node):
    name: str
    declared_type: Type = None  # type: ignore[assignment]
    type_name: str = ""
    address_space: AddressSpace = AddressSpace.PRIVATE
    is_const: bool = False
    access: str | None = None


@dataclass(slots=True)
class FunctionDecl(Node):
    name: str
    return_type: Type = None  # type: ignore[assignment]
    return_type_name: str = "void"
    parameters: list[ParameterDecl] = field(default_factory=list)
    body: CompoundStmt | None = None
    is_kernel: bool = False
    is_inline: bool = False
    attributes: list[str] = field(default_factory=list)


@dataclass(slots=True)
class TypedefDecl(Node):
    name: str
    target_type: Type = None  # type: ignore[assignment]
    target_type_name: str = ""


@dataclass(slots=True)
class StructDecl(Node):
    name: str
    fields: list[Declarator] = field(default_factory=list)


@dataclass(slots=True)
class GlobalVarDecl(Node):
    declarator: Declarator = None  # type: ignore[assignment]
    is_constant: bool = False


@dataclass(slots=True, weakref_slot=True)
class TranslationUnit(Node):
    """Root of the AST for one content file or one synthesized kernel.

    The weakref slot lets the compilation cache key compiled kernels by unit
    identity without keeping dead translation units alive.
    """

    functions: list[FunctionDecl] = field(default_factory=list)
    typedefs: list[TypedefDecl] = field(default_factory=list)
    structs: list[StructDecl] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)

    @property
    def kernels(self) -> list[FunctionDecl]:
        """Kernel functions (``__kernel``-qualified, with a body)."""
        return [f for f in self.functions if f.is_kernel and f.body is not None]

    @property
    def helper_functions(self) -> list[FunctionDecl]:
        """Non-kernel functions with bodies."""
        return [f for f in self.functions if not f.is_kernel and f.body is not None]

    def kernel(self, name: str) -> FunctionDecl:
        """Return the kernel named *name* (raises ``KeyError`` if absent)."""
        for function in self.kernels:
            if function.name == name:
                return function
        raise KeyError(name)


#: Per-class field-name cache for :func:`walk` (slotted nodes have no
#: ``__dict__``, and ``dataclasses.fields`` is too slow to call per node).
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(node_type: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(node_type)
    if names is None:
        names = tuple(f.name for f in fields(node_type))
        _FIELD_NAMES[node_type] = names
    return names


def walk(node: Node):
    """Yield *node* and all of its descendant nodes, depth-first.

    This generic traversal is the backbone of the feature extractors and of
    several invariants tested with hypothesis.
    """
    yield node
    for name in _field_names(type(node)):
        value = getattr(node, name)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
