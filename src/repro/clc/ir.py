"""A small PTX-like intermediate representation.

The paper's rejection filter compiles candidate kernels to NVIDIA PTX and
requires a minimum static instruction count of three.  We lower our AST to
this register-based IR to provide the same signal, and the static feature
extractor (Grewe et al. features, Table 2a) is computed over the same
instructions so that "compute operation", "global memory access",
"local memory access" and "branch" have a single, consistent definition
throughout the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto


class OpCategory(Enum):
    """Coarse instruction categories used by instruction counting and features."""

    ARITHMETIC = auto()
    COMPARISON = auto()
    LOGICAL = auto()
    CONVERSION = auto()
    MOVE = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    CALL = auto()
    SYNC = auto()
    RETURN = auto()
    LABEL = auto()
    OTHER = auto()


#: Mapping from opcode mnemonics to categories.
_OPCODE_CATEGORIES: dict[str, OpCategory] = {
    "add": OpCategory.ARITHMETIC,
    "sub": OpCategory.ARITHMETIC,
    "mul": OpCategory.ARITHMETIC,
    "div": OpCategory.ARITHMETIC,
    "rem": OpCategory.ARITHMETIC,
    "mad": OpCategory.ARITHMETIC,
    "neg": OpCategory.ARITHMETIC,
    "abs": OpCategory.ARITHMETIC,
    "min": OpCategory.ARITHMETIC,
    "max": OpCategory.ARITHMETIC,
    "fma": OpCategory.ARITHMETIC,
    "sqrt": OpCategory.ARITHMETIC,
    "rsqrt": OpCategory.ARITHMETIC,
    "sin": OpCategory.ARITHMETIC,
    "cos": OpCategory.ARITHMETIC,
    "ex2": OpCategory.ARITHMETIC,
    "lg2": OpCategory.ARITHMETIC,
    "and": OpCategory.LOGICAL,
    "or": OpCategory.LOGICAL,
    "xor": OpCategory.LOGICAL,
    "not": OpCategory.LOGICAL,
    "shl": OpCategory.LOGICAL,
    "shr": OpCategory.LOGICAL,
    "setp": OpCategory.COMPARISON,
    "selp": OpCategory.MOVE,
    "cvt": OpCategory.CONVERSION,
    "mov": OpCategory.MOVE,
    "ld": OpCategory.LOAD,
    "st": OpCategory.STORE,
    "bra": OpCategory.BRANCH,
    "call": OpCategory.CALL,
    "bar": OpCategory.SYNC,
    "ret": OpCategory.RETURN,
    "label": OpCategory.LABEL,
    "atom": OpCategory.STORE,
}


@dataclass
class Instruction:
    """A single IR instruction.

    Attributes:
        opcode: Mnemonic, e.g. ``"add"``, ``"ld"``, ``"bra"``.
        result: Destination register name, or ``None``.
        operands: Source operands (register names, immediates or labels).
        address_space: For loads/stores, the OpenCL address space
            (``"global"``, ``"local"``, ``"constant"``, ``"private"``,
            ``"param"``).
        type_suffix: Textual operand type, e.g. ``"f32"``, ``"s32"``.
        coalesced: For global loads/stores, whether the access pattern is
            coalesced (consecutive work-items touch consecutive elements).
        comment: Free-form annotation used in dumps and tests.
    """

    opcode: str
    result: str | None = None
    operands: tuple[str, ...] = ()
    address_space: str | None = None
    type_suffix: str = "b32"
    coalesced: bool = False
    comment: str = ""

    @property
    def category(self) -> OpCategory:
        return _OPCODE_CATEGORIES.get(self.opcode, OpCategory.OTHER)

    @property
    def is_memory_access(self) -> bool:
        return self.category in (OpCategory.LOAD, OpCategory.STORE)

    def render(self) -> str:
        """Render the instruction in a PTX-flavoured textual form."""
        if self.category is OpCategory.LABEL:
            return f"{self.operands[0]}:"
        parts = [self.opcode]
        if self.address_space:
            parts[0] = f"{self.opcode}.{self.address_space}"
        parts[0] = f"{parts[0]}.{self.type_suffix}"
        rendered_operands = []
        if self.result:
            rendered_operands.append(self.result)
        rendered_operands.extend(self.operands)
        text = f"    {parts[0]} " + ", ".join(rendered_operands) + ";"
        if self.comment:
            text += f"  // {self.comment}"
        return text


@dataclass
class IRFunction:
    """The lowered form of a single OpenCL function."""

    name: str
    is_kernel: bool = False
    parameters: tuple[str, ...] = ()
    instructions: list[Instruction] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Static counting helpers (the numbers the rejection filter and the
    # Grewe feature extractor are built from).
    # ------------------------------------------------------------------

    @property
    def static_instruction_count(self) -> int:
        """Number of real (non-label) static instructions."""
        return sum(1 for inst in self.instructions if inst.category is not OpCategory.LABEL)

    def count_category(self, category: OpCategory) -> int:
        return sum(1 for inst in self.instructions if inst.category is category)

    @property
    def compute_operations(self) -> int:
        """Arithmetic, logical, comparison and conversion operations."""
        return sum(
            1
            for inst in self.instructions
            if inst.category
            in (OpCategory.ARITHMETIC, OpCategory.LOGICAL, OpCategory.COMPARISON, OpCategory.CONVERSION)
        )

    @property
    def global_memory_accesses(self) -> int:
        return sum(
            1 for inst in self.instructions if inst.is_memory_access and inst.address_space == "global"
        )

    @property
    def local_memory_accesses(self) -> int:
        return sum(
            1 for inst in self.instructions if inst.is_memory_access and inst.address_space == "local"
        )

    @property
    def coalesced_memory_accesses(self) -> int:
        return sum(
            1
            for inst in self.instructions
            if inst.is_memory_access and inst.address_space == "global" and inst.coalesced
        )

    @property
    def branch_operations(self) -> int:
        return self.count_category(OpCategory.BRANCH)

    def render(self) -> str:
        """Render the function as PTX-flavoured text."""
        qualifier = ".entry" if self.is_kernel else ".func"
        header = f"{qualifier} {self.name}(" + ", ".join(self.parameters) + ")"
        body = "\n".join(inst.render() for inst in self.instructions)
        return f"{header}\n{{\n{body}\n}}\n"


@dataclass
class IRModule:
    """The lowered form of a translation unit."""

    functions: list[IRFunction] = field(default_factory=list)

    @property
    def kernels(self) -> list[IRFunction]:
        return [f for f in self.functions if f.is_kernel]

    def function(self, name: str) -> IRFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    @property
    def static_instruction_count(self) -> int:
        return sum(f.static_instruction_count for f in self.functions)

    def render(self) -> str:
        header = "//\n// Generated by repro.clc (PTX-like IR)\n//\n.version 5.0\n.target sm_52\n\n"
        return header + "\n".join(f.render() for f in self.functions)
