"""Pretty-printer: AST back to normalized OpenCL C source.

The code rewriter (paper §4.1, step 3) enforces "a variant of the Google C++
code style ... to ensure consistent use of braces, parentheses, and white
space".  We achieve the same effect by unparsing the AST with a single
canonical style: two-space indentation, braces on the same line, one space
around binary operators, mandatory braces around control-flow bodies.
Because the printer emits resolved type names, typedef aliases introduced by
project headers or the shim disappear from the normalized code, further
shrinking the vocabulary the language model has to learn.
"""

from __future__ import annotations

from repro.clc import ast_nodes as ast
from repro.clc.types import AddressSpace, PointerType, Type

_INDENT = "  "


class SourcePrinter:
    """Renders AST nodes as canonical OpenCL C text."""

    def __init__(self, indent: str = _INDENT):
        self._indent = indent

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------

    def print_translation_unit(self, unit: ast.TranslationUnit) -> str:
        chunks: list[str] = []
        for typedef in unit.typedefs:
            chunks.append(f"typedef {typedef.target_type_name} {typedef.name};")
        for declaration in unit.globals:
            chunks.append(self._print_global(declaration))
        for function in unit.functions:
            if function.body is None:
                continue
            chunks.append(self.print_function(function))
        return "\n\n".join(chunks) + "\n"

    def print_function(self, function: ast.FunctionDecl) -> str:
        qualifiers = []
        if function.is_kernel:
            qualifiers.append("__kernel")
        if function.is_inline:
            qualifiers.append("inline")
        qualifiers.append(self._type_name(function.return_type, function.return_type_name))
        header = " ".join(qualifiers) + " " + function.name + "("
        parameters = ", ".join(self._print_parameter(p) for p in function.parameters)
        header += parameters + ")"
        if function.body is None:
            return header + ";"
        body = self._print_block(function.body, 0)
        return header + " " + body

    def _print_global(self, declaration: ast.GlobalVarDecl) -> str:
        declarator = declaration.declarator
        qualifier = "__constant " if declaration.is_constant else ""
        text = qualifier + self._print_declarator(declarator)
        return text + ";"

    def _print_parameter(self, parameter: ast.ParameterDecl) -> str:
        parts: list[str] = []
        declared = parameter.declared_type
        if isinstance(declared, PointerType):
            if declared.address_space is AddressSpace.GLOBAL:
                parts.append("__global")
            elif declared.address_space is AddressSpace.LOCAL:
                parts.append("__local")
            elif declared.address_space is AddressSpace.CONSTANT:
                parts.append("__constant")
            if parameter.is_const or declared.is_const:
                parts.append("const")
            parts.append(f"{self._type_name(declared.pointee, parameter.type_name.rstrip('*'))}*")
        else:
            if parameter.is_const:
                parts.append("const")
            parts.append(self._type_name(declared, parameter.type_name))
        if parameter.name:
            parts.append(parameter.name)
        return " ".join(parts)

    @staticmethod
    def _type_name(declared: Type | None, fallback: str) -> str:
        if declared is None:
            return fallback or "void"
        text = str(declared)
        if text.startswith("struct <anonymous>"):
            return fallback or "int"
        return text

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _print_block(self, block: ast.CompoundStmt, depth: int) -> str:
        inner = self._indent * (depth + 1)
        lines = ["{"]
        for statement in block.statements:
            rendered = self.print_statement(statement, depth + 1)
            if rendered:
                lines.append(inner + rendered if not rendered.startswith(inner) else rendered)
        lines.append(self._indent * depth + "}")
        return "\n".join(lines)

    def print_statement(self, statement: ast.Statement, depth: int = 0) -> str:
        indent = self._indent * depth
        if isinstance(statement, ast.CompoundStmt):
            return self._print_block(statement, depth)
        if isinstance(statement, ast.DeclStmt):
            rendered = "; ".join(self._print_declarator(d) for d in statement.declarators)
            return rendered + ";"
        if isinstance(statement, ast.ExprStmt):
            if statement.expression is None:
                return ";"
            return self.print_expression(statement.expression) + ";"
        if isinstance(statement, ast.IfStmt):
            text = f"if ({self.print_expression(statement.condition)}) "
            text += self._statement_as_block(statement.then_branch, depth)
            if statement.else_branch is not None:
                text += " else "
                if isinstance(statement.else_branch, ast.IfStmt):
                    text += self.print_statement(statement.else_branch, depth)
                else:
                    text += self._statement_as_block(statement.else_branch, depth)
            return text
        if isinstance(statement, ast.ForStmt):
            init = ""
            if isinstance(statement.init, ast.DeclStmt):
                init = "; ".join(self._print_declarator(d) for d in statement.init.declarators)
            elif isinstance(statement.init, ast.ExprStmt) and statement.init.expression is not None:
                init = self.print_expression(statement.init.expression)
            condition = self.print_expression(statement.condition) if statement.condition else ""
            increment = self.print_expression(statement.increment) if statement.increment else ""
            text = f"for ({init}; {condition}; {increment}) "
            return text + self._statement_as_block(statement.body, depth)
        if isinstance(statement, ast.WhileStmt):
            text = f"while ({self.print_expression(statement.condition)}) "
            return text + self._statement_as_block(statement.body, depth)
        if isinstance(statement, ast.DoWhileStmt):
            text = "do " + self._statement_as_block(statement.body, depth)
            return text + f" while ({self.print_expression(statement.condition)});"
        if isinstance(statement, ast.ReturnStmt):
            if statement.value is None:
                return "return;"
            return f"return {self.print_expression(statement.value)};"
        if isinstance(statement, ast.BreakStmt):
            return "break;"
        if isinstance(statement, ast.ContinueStmt):
            return "continue;"
        if isinstance(statement, ast.SwitchStmt):
            lines = [f"switch ({self.print_expression(statement.condition)}) {{"]
            for case in statement.cases:
                if case.value is None:
                    lines.append(self._indent * (depth + 1) + "default:")
                else:
                    lines.append(
                        self._indent * (depth + 1) + f"case {self.print_expression(case.value)}:"
                    )
                for child in case.body:
                    lines.append(self._indent * (depth + 2) + self.print_statement(child, depth + 2))
            lines.append(indent + "}")
            return "\n".join(lines)
        if isinstance(statement, ast.EmptyStmt):
            return ";"
        return "/* unsupported statement */;"

    def _statement_as_block(self, statement: ast.Statement, depth: int) -> str:
        if isinstance(statement, ast.CompoundStmt):
            return self._print_block(statement, depth)
        wrapper = ast.CompoundStmt(statements=[statement])
        return self._print_block(wrapper, depth)

    def _print_declarator(self, declarator: ast.Declarator) -> str:
        declared = declarator.declared_type
        prefix = ""
        if declarator.address_space is AddressSpace.LOCAL:
            prefix = "__local "
        elif declarator.address_space is AddressSpace.CONSTANT:
            prefix = "__constant "
        if declarator.array_size is not None and isinstance(declared, PointerType):
            base = self._type_name(declared.pointee, declarator.type_name.rstrip("*"))
            size = self.print_expression(declarator.array_size)
            text = f"{prefix}{base} {declarator.name}[{size}]"
        elif isinstance(declared, PointerType):
            base = self._type_name(declared.pointee, declarator.type_name.rstrip("*"))
            text = f"{prefix}{base}* {declarator.name}"
        else:
            text = f"{prefix}{self._type_name(declared, declarator.type_name)} {declarator.name}"
        if declarator.initializer is not None:
            text += f" = {self.print_expression(declarator.initializer)}"
        return text

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def print_expression(self, expression: ast.Expression | None) -> str:
        if expression is None:
            return ""
        if isinstance(expression, ast.IntLiteral):
            return expression.text or str(expression.value)
        if isinstance(expression, ast.FloatLiteral):
            return expression.text or repr(expression.value)
        if isinstance(expression, (ast.CharLiteral, ast.StringLiteral)):
            return expression.value
        if isinstance(expression, ast.Identifier):
            return expression.name
        if isinstance(expression, ast.UnaryOp):
            operand = self.print_expression(expression.operand)
            if isinstance(expression.operand, (ast.BinaryOp, ast.TernaryOp, ast.Assignment)):
                operand = f"({operand})"
            return f"{expression.op}{operand}"
        if isinstance(expression, ast.PostfixOp):
            return f"{self.print_expression(expression.operand)}{expression.op}"
        if isinstance(expression, ast.BinaryOp):
            left = self.print_expression(expression.left)
            right = self.print_expression(expression.right)
            if isinstance(expression.left, (ast.BinaryOp, ast.TernaryOp, ast.Assignment)):
                left = f"({left})"
            if isinstance(expression.right, (ast.BinaryOp, ast.TernaryOp, ast.Assignment)):
                right = f"({right})"
            if expression.op == ",":
                return f"{left}, {right}"
            return f"{left} {expression.op} {right}"
        if isinstance(expression, ast.Assignment):
            return (
                f"{self.print_expression(expression.target)} {expression.op} "
                f"{self.print_expression(expression.value)}"
            )
        if isinstance(expression, ast.TernaryOp):
            return (
                f"({self.print_expression(expression.condition)}) ? "
                f"{self.print_expression(expression.if_true)} : "
                f"{self.print_expression(expression.if_false)}"
            )
        if isinstance(expression, ast.Call):
            arguments = ", ".join(self.print_expression(a) for a in expression.arguments)
            return f"{expression.callee}({arguments})"
        if isinstance(expression, ast.Index):
            return f"{self.print_expression(expression.base)}[{self.print_expression(expression.index)}]"
        if isinstance(expression, ast.Member):
            connector = "->" if expression.arrow else "."
            return f"{self.print_expression(expression.base)}{connector}{expression.member}"
        if isinstance(expression, ast.Cast):
            operand = self.print_expression(expression.operand)
            if isinstance(expression.operand, (ast.BinaryOp, ast.TernaryOp, ast.Assignment)):
                operand = f"({operand})"
            return f"({self._type_name(expression.target_type, expression.target_type_name)}){operand}"
        if isinstance(expression, ast.VectorLiteral):
            elements = ", ".join(self.print_expression(e) for e in expression.elements)
            return f"({self._type_name(expression.target_type, expression.target_type_name)})({elements})"
        if isinstance(expression, ast.SizeOf):
            return f"sizeof({expression.target_type_name})"
        if isinstance(expression, ast.InitializerList):
            elements = ", ".join(self.print_expression(e) for e in expression.elements)
            return "{" + elements + "}"
        return "/* ? */"


def print_source(unit: ast.TranslationUnit) -> str:
    """Render a translation unit as normalized OpenCL C source."""
    return SourcePrinter().print_translation_unit(unit)


def print_kernel(function: ast.FunctionDecl) -> str:
    """Render a single function as normalized OpenCL C source."""
    return SourcePrinter().print_function(function) + "\n"
