"""Semantic checks over the parsed AST.

The dominant cause of rejected GitHub content files in the paper is the use
of undeclared identifiers after device code has been isolated from its host
project (§4.1).  This module reproduces that check: every identifier used in
a function body must resolve to a parameter, a local declaration, a global
variable, a user-defined function, or an OpenCL built-in.  The shim header
(:mod:`repro.preprocess.shim`) reduces these failures exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import ast_nodes as ast
from repro.clc.builtins import is_builtin, is_builtin_function
from repro.errors import SemanticError


@dataclass
class SemanticIssue:
    """One problem detected during semantic analysis."""

    kind: str  # "undeclared-identifier" | "undeclared-function" | "no-kernel" | ...
    message: str
    name: str = ""
    function: str = ""
    line: int = 0


@dataclass
class SemanticReport:
    """Aggregate result of checking a translation unit."""

    issues: list[SemanticIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def undeclared_identifiers(self) -> list[str]:
        return [issue.name for issue in self.issues if issue.kind == "undeclared-identifier"]

    def raise_if_failed(self) -> None:
        if self.issues:
            first = self.issues[0]
            raise SemanticError(first.message, first.line or None)


class _Scope:
    """A lexical scope holding declared names."""

    def __init__(self, parent: "_Scope | None" = None):
        self._names: set[str] = set()
        self._parent = parent

    def declare(self, name: str) -> None:
        self._names.add(name)

    def is_declared(self, name: str) -> bool:
        if name in self._names:
            return True
        if self._parent is not None:
            return self._parent.is_declared(name)
        return False


class SemanticChecker:
    """Checks name resolution and basic call validity for a translation unit."""

    def __init__(self, unit: ast.TranslationUnit, require_kernel: bool = True):
        self._unit = unit
        self._require_kernel = require_kernel
        self._report = SemanticReport()
        self._function_names = {f.name for f in unit.functions}
        #: Arity of every user-defined function (``f(void)`` parses to an
        #: empty parameter list, so the count is exact).  Builtins are not
        #: checked — several are genuinely overloaded.
        self._function_arity = {f.name: len(f.parameters) for f in unit.functions}
        self._global_names = {g.declarator.name for g in unit.globals if g.declarator}
        self._typedef_names = {t.name for t in unit.typedefs}

    def check(self) -> SemanticReport:
        """Run all checks and return the report."""
        if self._require_kernel and not self._unit.kernels:
            self._report.issues.append(
                SemanticIssue(kind="no-kernel", message="translation unit contains no __kernel function")
            )
        for function in self._unit.functions:
            if function.body is not None:
                self._check_function(function)
        return self._report

    # ------------------------------------------------------------------

    def _check_function(self, function: ast.FunctionDecl) -> None:
        scope = _Scope()
        for name in self._global_names:
            scope.declare(name)
        for parameter in function.parameters:
            if parameter.name:
                scope.declare(parameter.name)
        self._check_statement(function.body, scope, function.name)

    def _check_statement(self, statement: ast.Statement | None, scope: _Scope, function: str) -> None:
        if statement is None:
            return
        if isinstance(statement, ast.CompoundStmt):
            inner = _Scope(scope)
            for child in statement.statements:
                self._check_statement(child, inner, function)
        elif isinstance(statement, ast.DeclStmt):
            for declarator in statement.declarators:
                if declarator.array_size is not None:
                    self._check_expression(declarator.array_size, scope, function)
                if declarator.initializer is not None:
                    self._check_expression(declarator.initializer, scope, function)
                scope.declare(declarator.name)
        elif isinstance(statement, ast.ExprStmt):
            self._check_expression(statement.expression, scope, function)
        elif isinstance(statement, ast.IfStmt):
            self._check_expression(statement.condition, scope, function)
            self._check_statement(statement.then_branch, scope, function)
            self._check_statement(statement.else_branch, scope, function)
        elif isinstance(statement, ast.ForStmt):
            inner = _Scope(scope)
            self._check_statement(statement.init, inner, function)
            self._check_expression(statement.condition, inner, function)
            self._check_expression(statement.increment, inner, function)
            self._check_statement(statement.body, inner, function)
        elif isinstance(statement, ast.WhileStmt):
            self._check_expression(statement.condition, scope, function)
            self._check_statement(statement.body, scope, function)
        elif isinstance(statement, ast.DoWhileStmt):
            self._check_statement(statement.body, scope, function)
            self._check_expression(statement.condition, scope, function)
        elif isinstance(statement, ast.ReturnStmt):
            self._check_expression(statement.value, scope, function)
        elif isinstance(statement, ast.SwitchStmt):
            self._check_expression(statement.condition, scope, function)
            for case in statement.cases:
                self._check_expression(case.value, scope, function)
                inner = _Scope(scope)
                for child in case.body:
                    self._check_statement(child, inner, function)
        # Break/Continue/Empty have nothing to check.

    def _check_expression(self, expression: ast.Expression | None, scope: _Scope, function: str) -> None:
        if expression is None:
            return
        if isinstance(expression, ast.Identifier):
            name = expression.name
            if (
                not scope.is_declared(name)
                and name not in self._function_names
                and name not in self._typedef_names
                and not is_builtin(name)
            ):
                self._report.issues.append(
                    SemanticIssue(
                        kind="undeclared-identifier",
                        message=f"use of undeclared identifier '{name}'",
                        name=name,
                        function=function,
                        line=expression.line,
                    )
                )
        elif isinstance(expression, ast.Call):
            if expression.callee not in self._function_names and not is_builtin_function(
                expression.callee
            ):
                self._report.issues.append(
                    SemanticIssue(
                        kind="undeclared-function",
                        message=f"call to undeclared function '{expression.callee}'",
                        name=expression.callee,
                        function=function,
                        line=expression.line,
                    )
                )
            elif expression.callee in self._function_arity:
                expected = self._function_arity[expression.callee]
                supplied = len(expression.arguments)
                if supplied != expected:
                    self._report.issues.append(
                        SemanticIssue(
                            kind="wrong-arity",
                            message=(
                                f"call to '{expression.callee}' with {supplied} "
                                f"argument(s); it takes {expected}"
                            ),
                            name=expression.callee,
                            function=function,
                            line=expression.line,
                        )
                    )
            for argument in expression.arguments:
                self._check_expression(argument, scope, function)
        elif isinstance(expression, (ast.UnaryOp, ast.PostfixOp)):
            self._check_expression(expression.operand, scope, function)
        elif isinstance(expression, ast.BinaryOp):
            self._check_expression(expression.left, scope, function)
            self._check_expression(expression.right, scope, function)
        elif isinstance(expression, ast.Assignment):
            self._check_expression(expression.target, scope, function)
            self._check_expression(expression.value, scope, function)
        elif isinstance(expression, ast.TernaryOp):
            self._check_expression(expression.condition, scope, function)
            self._check_expression(expression.if_true, scope, function)
            self._check_expression(expression.if_false, scope, function)
        elif isinstance(expression, ast.Index):
            self._check_expression(expression.base, scope, function)
            self._check_expression(expression.index, scope, function)
        elif isinstance(expression, ast.Member):
            self._check_expression(expression.base, scope, function)
        elif isinstance(expression, (ast.Cast,)):
            self._check_expression(expression.operand, scope, function)
        elif isinstance(expression, ast.VectorLiteral):
            for element in expression.elements:
                self._check_expression(element, scope, function)
        elif isinstance(expression, ast.InitializerList):
            for element in expression.elements:
                self._check_expression(element, scope, function)
        # Literals and SizeOf need no checking.


def check(unit: ast.TranslationUnit, require_kernel: bool = True) -> SemanticReport:
    """Run semantic analysis on *unit* and return a :class:`SemanticReport`."""
    return SemanticChecker(unit, require_kernel=require_kernel).check()
