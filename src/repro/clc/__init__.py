"""``repro.clc`` — a pure-Python OpenCL C frontend.

This package stands in for the Clang/LLVM + PTX toolchain used by the paper.
It provides preprocessing, lexing, parsing, semantic checking and lowering to
a PTX-like IR, and the single high-level entry point :func:`compile_source`
used by the rejection filter, the feature extractor and the execution
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import ast_nodes
from repro.clc.ast_nodes import FunctionDecl, TranslationUnit
from repro.clc.codegen import lower
from repro.clc.ir import IRModule
from repro.clc.lexer import Token, TokenKind, tokenize
from repro.clc.parser import Parser, parse, parse_kernel
from repro.clc.preprocessor import IncludeResolver, Preprocessor, preprocess
from repro.clc.semantics import SemanticReport, check
from repro.clc.types import (
    AddressSpace,
    PointerType,
    ScalarType,
    StructType,
    Type,
    TypeTable,
    VectorType,
)
from repro.errors import CompileError

__all__ = [
    "AddressSpace",
    "CompilationResult",
    "CompileError",
    "FunctionDecl",
    "IRModule",
    "IncludeResolver",
    "Parser",
    "PointerType",
    "Preprocessor",
    "ScalarType",
    "SemanticReport",
    "StructType",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "Type",
    "TypeTable",
    "VectorType",
    "ast_nodes",
    "check",
    "compile_source",
    "lower",
    "parse",
    "parse_kernel",
    "preprocess",
    "tokenize",
]


@dataclass
class CompilationResult:
    """Everything produced by a successful compilation of one source input."""

    source: str
    preprocessed: str
    unit: TranslationUnit
    ir: IRModule
    semantics: SemanticReport
    included_headers: list[str] = field(default_factory=list)

    @property
    def kernels(self) -> list[FunctionDecl]:
        return self.unit.kernels

    @property
    def static_instruction_count(self) -> int:
        return self.ir.static_instruction_count


def compile_source(
    source: str,
    include_resolver: IncludeResolver | None = None,
    require_kernel: bool = True,
    strict: bool = True,
) -> CompilationResult:
    """Compile OpenCL C *source* through the full frontend.

    Runs the preprocessor, parser, semantic checker and IR lowering.  With
    ``strict=True`` (the default, matching the rejection filter's behaviour)
    any semantic issue raises :class:`~repro.errors.CompileError`; with
    ``strict=False`` the issues are recorded on the result instead.

    Args:
        source: OpenCL C source text (a content file or a single kernel).
        include_resolver: Optional resolver for ``#include`` directives
            (for example, the shim header resolver).
        require_kernel: Require at least one ``__kernel`` function.
        strict: Raise on semantic issues instead of recording them.

    Returns:
        A :class:`CompilationResult`.

    Raises:
        CompileError: On preprocessing, lexing, parsing, semantic or
            lowering failures.
    """
    result = preprocess(source, include_resolver=include_resolver)
    unit = parse(result.text)
    report = check(unit, require_kernel=require_kernel)
    if strict:
        report.raise_if_failed()
    ir = lower(unit)
    return CompilationResult(
        source=source,
        preprocessed=result.text,
        unit=unit,
        ir=ir,
        semantics=report,
        included_headers=result.included_headers,
    )
