"""``repro.clc`` — a pure-Python OpenCL C frontend.

This package stands in for the Clang/LLVM + PTX toolchain used by the paper.
It provides preprocessing, lexing, parsing, semantic checking and lowering to
a PTX-like IR, and the single high-level entry point :func:`compile_source`
used by the rejection filter, the feature extractor and the execution
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import ast_nodes
from repro.clc.ast_nodes import FunctionDecl, TranslationUnit
from repro.clc.codegen import lower
from repro.clc.ir import IRModule
from repro.clc.lexer import Token, TokenKind, tokenize
from repro.clc.parser import Parser, parse, parse_kernel
from repro.clc.preprocessor import IncludeResolver, Preprocessor, preprocess
from repro.clc.semantics import SemanticReport, check
from repro.clc.types import (
    AddressSpace,
    PointerType,
    ScalarType,
    StructType,
    Type,
    TypeTable,
    VectorType,
)
from repro.errors import CompileError

__all__ = [
    "AddressSpace",
    "CompilationResult",
    "CompileError",
    "FunctionDecl",
    "IRModule",
    "IncludeResolver",
    "Parser",
    "PointerType",
    "Preprocessor",
    "ScalarType",
    "SemanticReport",
    "StructType",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "Type",
    "TypeTable",
    "VectorType",
    "ast_nodes",
    "check",
    "compile_parsed_body",
    "compile_source",
    "lower",
    "parse",
    "parse_kernel",
    "preprocess",
    "register_prelude",
    "tokenize",
]


@dataclass
class CompilationResult:
    """Everything produced by a successful compilation of one source input."""

    source: str
    preprocessed: str
    unit: TranslationUnit
    ir: IRModule
    semantics: SemanticReport
    included_headers: list[str] = field(default_factory=list)
    #: The translation unit of the input *body* alone: when a registered
    #: prelude fast-path compiled this source, ``unit`` is the merged
    #: prelude+body tree and this is the body subtree (sharing nodes with
    #: ``unit``); without a prelude the body is the whole unit.  The code
    #: rewriter's AST-reuse path consumes it to skip a second parse.
    body_unit: TranslationUnit | None = None

    @property
    def kernels(self) -> list[FunctionDecl]:
        return self.unit.kernels

    @property
    def static_instruction_count(self) -> int:
        return self.ir.static_instruction_count


class _Prelude:
    """A pre-compiled constant header shared by many compilations.

    The rejection filter and the host driver prepend the same shim header
    (~3 KB of typedefs and ``#define``s) to every input, and re-compiling it
    dominated frontend time for small kernels.  A registered prelude is
    preprocessed and parsed exactly once; sources that start with its text
    then compile only their body, seeded with the prelude's macro table and
    typedef type table, and the results are merged.
    """

    def __init__(self, text: str, include_resolver: IncludeResolver | None):
        self.text = text
        result = preprocess(text, include_resolver=include_resolver)
        self.preprocessed = result.text
        self.macros = result.macros
        self.included_headers = list(result.included_headers)
        parser = Parser(tokenize(self.preprocessed))
        self.unit = parser.parse_translation_unit()
        self.type_table = parser.type_table


_PRELUDES: dict[str, _Prelude] = {}


def register_prelude(text: str, include_resolver: IncludeResolver | None = None) -> None:
    """Pre-compile the constant header *text* for the compile fast path."""
    if text and text not in _PRELUDES:
        _PRELUDES[text] = _Prelude(text, include_resolver)


def _compile_with_prelude(
    prelude: _Prelude,
    body: str,
    source: str,
    include_resolver: IncludeResolver | None,
    require_kernel: bool,
    strict: bool,
) -> CompilationResult:
    preprocessor = Preprocessor(include_resolver, macro_table=prelude.macros)
    result = preprocessor.preprocess(body)
    parser = Parser(tokenize(result.text), type_table=prelude.type_table)
    body_unit = parser.parse_translation_unit()
    unit = TranslationUnit(
        functions=prelude.unit.functions + body_unit.functions,
        typedefs=prelude.unit.typedefs + body_unit.typedefs,
        structs=prelude.unit.structs + body_unit.structs,
        globals=prelude.unit.globals + body_unit.globals,
    )
    report = check(unit, require_kernel=require_kernel)
    if strict:
        report.raise_if_failed()
    ir = lower(unit)
    return CompilationResult(
        source=source,
        preprocessed=prelude.preprocessed + result.text,
        unit=unit,
        ir=ir,
        semantics=report,
        included_headers=prelude.included_headers + result.included_headers,
        body_unit=body_unit,
    )


def compile_parsed_body(
    source: str,
    body_unit: TranslationUnit,
    include_resolver: IncludeResolver | None = None,
    require_kernel: bool = True,
    strict: bool = False,
) -> CompilationResult | None:
    """Compile *source* reusing *body_unit* as its already-parsed body.

    The synthesizer's normalization path prints the accepted candidate's
    renamed AST — so when the measurement harness later compiles that
    printed text, the tokenize + parse it pays would only rebuild the very
    tree the printer just consumed.  This entry point builds the
    :class:`CompilationResult` that :func:`compile_source` would return for
    *source*, skipping tokenize and parse: the body's translation unit is
    taken from *body_unit*, and only preprocessing (for the ``preprocessed``
    field), semantic checking and IR lowering run, all on the merged
    prelude+body tree exactly as in the prelude fast path.

    Soundness gates — returns ``None`` (caller falls back to a real
    compile) unless every one holds:

    * a registered prelude prefixes *source* (the shim header), so the
      parse environment *body_unit* was built under is the one a fresh
      compile would use; and
    * preprocessing the body is the identity (no directives, no macro
      expansion), so the text a fresh compile would parse is byte-for-byte
      the text *body_unit* prints as.

    Under those gates the result is interchangeable with a fresh
    ``compile_source(source, ...)`` — the parser/printer round-trip
    invariant (``parse(print(unit))`` re-prints identically) is covered by
    the seed-fidelity tests.  The one known divergence is AST ``line``/
    ``column`` metadata (the reused tree keeps pre-rename token positions);
    positions are consumed only by parse/semantic *error* reporting, which
    an accepted, issue-free body never reaches, and by nothing the
    analyzer, the execution engines or the feature extractor record.
    """
    for prelude in _PRELUDES.values():
        if source.startswith(prelude.text):
            break
    else:
        return None
    body_text = source[len(prelude.text):]
    preprocessor = Preprocessor(include_resolver, macro_table=prelude.macros)
    result = preprocessor.preprocess(body_text)
    if result.text != body_text:
        # A directive or macro expansion changed the body: a fresh compile
        # would parse different text than body_unit represents.
        return None
    unit = TranslationUnit(
        functions=prelude.unit.functions + body_unit.functions,
        typedefs=prelude.unit.typedefs + body_unit.typedefs,
        structs=prelude.unit.structs + body_unit.structs,
        globals=prelude.unit.globals + body_unit.globals,
    )
    report = check(unit, require_kernel=require_kernel)
    if strict:
        report.raise_if_failed()
    ir = lower(unit)
    return CompilationResult(
        source=source,
        preprocessed=prelude.preprocessed + result.text,
        unit=unit,
        ir=ir,
        semantics=report,
        included_headers=prelude.included_headers + result.included_headers,
        body_unit=body_unit,
    )


def compile_source(
    source: str,
    include_resolver: IncludeResolver | None = None,
    require_kernel: bool = True,
    strict: bool = True,
) -> CompilationResult:
    """Compile OpenCL C *source* through the full frontend.

    Runs the preprocessor, parser, semantic checker and IR lowering.  With
    ``strict=True`` (the default, matching the rejection filter's behaviour)
    any semantic issue raises :class:`~repro.errors.CompileError`; with
    ``strict=False`` the issues are recorded on the result instead.

    Args:
        source: OpenCL C source text (a content file or a single kernel).
        include_resolver: Optional resolver for ``#include`` directives
            (for example, the shim header resolver).
        require_kernel: Require at least one ``__kernel`` function.
        strict: Raise on semantic issues instead of recording them.

    Returns:
        A :class:`CompilationResult`.

    Raises:
        CompileError: On preprocessing, lexing, parsing, semantic or
            lowering failures.
    """
    for prelude in _PRELUDES.values():
        if source.startswith(prelude.text):
            return _compile_with_prelude(
                prelude,
                source[len(prelude.text):],
                source,
                include_resolver,
                require_kernel,
                strict,
            )

    result = preprocess(source, include_resolver=include_resolver)
    unit = parse(result.text)
    report = check(unit, require_kernel=require_kernel)
    if strict:
        report.raise_if_failed()
    ir = lower(unit)
    return CompilationResult(
        source=source,
        preprocessed=result.text,
        unit=unit,
        ir=ir,
        semantics=report,
        included_headers=result.included_headers,
        body_unit=unit,
    )
