"""Catalogue of OpenCL C built-in functions and identifiers.

The semantic checker consults this module to decide whether an identifier is
"undeclared" (the single largest cause of rejected GitHub content files in
the paper, §4.1), the code rewriter uses it to avoid renaming language
built-ins, and the execution simulator maps these names to Python
implementations.
"""

from __future__ import annotations

#: Work-item query functions (take a single dimension index argument).
WORK_ITEM_FUNCTIONS = frozenset(
    {
        "get_global_id",
        "get_local_id",
        "get_group_id",
        "get_global_size",
        "get_local_size",
        "get_num_groups",
        "get_work_dim",
        "get_global_offset",
    }
)

#: Synchronization functions.
SYNC_FUNCTIONS = frozenset({"barrier", "mem_fence", "read_mem_fence", "write_mem_fence"})

#: Common math built-ins (component-wise over vectors).
MATH_FUNCTIONS = frozenset(
    {
        "sqrt",
        "rsqrt",
        "cbrt",
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "atan2",
        "sinh",
        "cosh",
        "tanh",
        "exp",
        "exp2",
        "exp10",
        "log",
        "log2",
        "log10",
        "pow",
        "pown",
        "powr",
        "fabs",
        "fma",
        "mad",
        "fmin",
        "fmax",
        "fmod",
        "floor",
        "ceil",
        "round",
        "trunc",
        "rint",
        "hypot",
        "copysign",
        "sign",
        "native_sin",
        "native_cos",
        "native_exp",
        "native_log",
        "native_sqrt",
        "native_rsqrt",
        "native_divide",
        "native_recip",
        "half_sqrt",
        "half_exp",
        "half_log",
        "degrees",
        "radians",
        "erf",
        "erfc",
        "tgamma",
        "lgamma",
    }
)

#: Integer built-ins.
INTEGER_FUNCTIONS = frozenset(
    {
        "abs",
        "abs_diff",
        "add_sat",
        "sub_sat",
        "hadd",
        "rhadd",
        "clz",
        "popcount",
        "rotate",
        "mad24",
        "mul24",
        "mad_hi",
        "mul_hi",
        "upsample",
    }
)

#: Common built-ins shared between integer and floating types.
COMMON_FUNCTIONS = frozenset(
    {
        "min",
        "max",
        "clamp",
        "mix",
        "step",
        "smoothstep",
        "select",
        "bitselect",
        "isnan",
        "isinf",
        "isfinite",
        "isnormal",
        "signbit",
        "any",
        "all",
    }
)

#: Geometric built-ins.
GEOMETRIC_FUNCTIONS = frozenset(
    {"dot", "cross", "length", "distance", "normalize", "fast_length", "fast_normalize"}
)

#: Vector data load/store built-ins.
VECTOR_DATA_FUNCTIONS = frozenset(
    {
        "vload2",
        "vload3",
        "vload4",
        "vload8",
        "vload16",
        "vstore2",
        "vstore3",
        "vstore4",
        "vstore8",
        "vstore16",
    }
)

#: Atomic built-ins.
ATOMIC_FUNCTIONS = frozenset(
    {
        "atomic_add",
        "atomic_sub",
        "atomic_inc",
        "atomic_dec",
        "atomic_xchg",
        "atomic_cmpxchg",
        "atomic_min",
        "atomic_max",
        "atomic_and",
        "atomic_or",
        "atomic_xor",
        "atom_add",
        "atom_sub",
        "atom_inc",
        "atom_dec",
        "atom_xchg",
        "atom_cmpxchg",
        "atom_min",
        "atom_max",
    }
)

#: Reinterpretation / conversion builtin prefixes (``as_float4``,
#: ``convert_int4``...).  Checked by prefix rather than enumerated.
CONVERSION_PREFIXES = ("as_", "convert_")

#: Asynchronous copy / prefetch functions.
ASYNC_FUNCTIONS = frozenset(
    {"async_work_group_copy", "async_work_group_strided_copy", "wait_group_events", "prefetch"}
)

#: printf is available in OpenCL 1.2+ device code found on GitHub.
MISC_FUNCTIONS = frozenset({"printf"})

#: Built-in constant-like identifiers.
BUILTIN_CONSTANTS = frozenset(
    {
        "CLK_LOCAL_MEM_FENCE",
        "CLK_GLOBAL_MEM_FENCE",
        "MAXFLOAT",
        "HUGE_VALF",
        "INFINITY",
        "NAN",
        "FLT_MAX",
        "FLT_MIN",
        "FLT_EPSILON",
        "DBL_MAX",
        "DBL_MIN",
        "INT_MAX",
        "INT_MIN",
        "UINT_MAX",
        "LONG_MAX",
        "LONG_MIN",
        "ULONG_MAX",
        "CHAR_MAX",
        "CHAR_MIN",
        "M_PI",
        "M_PI_F",
        "M_E",
        "M_E_F",
        "true",
        "false",
        "NULL",
    }
)

ALL_BUILTIN_FUNCTIONS = (
    WORK_ITEM_FUNCTIONS
    | SYNC_FUNCTIONS
    | MATH_FUNCTIONS
    | INTEGER_FUNCTIONS
    | COMMON_FUNCTIONS
    | GEOMETRIC_FUNCTIONS
    | VECTOR_DATA_FUNCTIONS
    | ATOMIC_FUNCTIONS
    | ASYNC_FUNCTIONS
    | MISC_FUNCTIONS
)


def is_builtin_function(name: str) -> bool:
    """True if *name* is an OpenCL built-in function (including ``as_``/``convert_`` forms)."""
    if name in ALL_BUILTIN_FUNCTIONS:
        return True
    return name.startswith(CONVERSION_PREFIXES)


def is_builtin_constant(name: str) -> bool:
    """True if *name* is a built-in constant identifier."""
    return name in BUILTIN_CONSTANTS


def is_builtin(name: str) -> bool:
    """True if *name* refers to any OpenCL built-in (function or constant)."""
    return is_builtin_function(name) or is_builtin_constant(name)
