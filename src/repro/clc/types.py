"""Type system for the OpenCL C subset.

Types are modelled as immutable dataclasses.  The parser resolves type names
(including typedefs introduced by the shim header) against
:class:`TypeTable`, and the execution simulator uses the same objects to
allocate buffers and interpret vector component accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AddressSpace(Enum):
    """OpenCL address space qualifiers."""

    PRIVATE = "private"
    GLOBAL = "global"
    LOCAL = "local"
    CONSTANT = "constant"

    @classmethod
    def from_qualifier(cls, qualifier: str) -> "AddressSpace":
        name = qualifier.lstrip("_")
        mapping = {
            "global": cls.GLOBAL,
            "local": cls.LOCAL,
            "constant": cls.CONSTANT,
            "private": cls.PRIVATE,
        }
        return mapping.get(name, cls.PRIVATE)


@dataclass(frozen=True)
class Type:
    """Base class for all types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "type"

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, ScalarType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, ScalarType) and self.kind in _INTEGER_KINDS

    @property
    def is_floating(self) -> bool:
        return isinstance(self, ScalarType) and self.kind in _FLOAT_KINDS


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ScalarType(Type):
    """A scalar OpenCL type such as ``int``, ``float`` or ``ulong``."""

    kind: str  # e.g. "int", "uint", "float", ...

    def __str__(self) -> str:
        return self.kind

    @property
    def size_in_bytes(self) -> int:
        return _SCALAR_SIZES[self.kind]

    @property
    def is_signed(self) -> bool:
        return self.kind in ("char", "short", "int", "long", "half", "float", "double")


@dataclass(frozen=True)
class VectorType(Type):
    """An OpenCL vector type such as ``float4`` or ``int16``."""

    element: ScalarType
    width: int

    def __str__(self) -> str:
        return f"{self.element.kind}{self.width}"

    @property
    def size_in_bytes(self) -> int:
        return self.element.size_in_bytes * self.width


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer, carrying its address space and access qualifiers."""

    pointee: Type
    address_space: AddressSpace = AddressSpace.PRIVATE
    is_const: bool = False
    access: str | None = None  # "read_only" / "write_only" / None

    def __str__(self) -> str:
        space = f"__{self.address_space.value} " if self.address_space != AddressSpace.PRIVATE else ""
        const = "const " if self.is_const else ""
        return f"{space}{const}{self.pointee}*"


@dataclass(frozen=True)
class StructType(Type):
    """A (possibly incompletely parsed) struct type."""

    name: str
    fields: tuple[tuple[str, Type], ...] = ()

    def __str__(self) -> str:
        return f"struct {self.name}"

    @property
    def size_in_bytes(self) -> int:
        return sum(
            field_type.size_in_bytes if hasattr(field_type, "size_in_bytes") else 4
            for _, field_type in self.fields
        ) or 4


_INTEGER_KINDS = frozenset(
    {"bool", "char", "uchar", "short", "ushort", "int", "uint", "long", "ulong", "size_t"}
)
_FLOAT_KINDS = frozenset({"half", "float", "double"})

_SCALAR_SIZES = {
    "bool": 1,
    "char": 1,
    "uchar": 1,
    "short": 2,
    "ushort": 2,
    "int": 4,
    "uint": 4,
    "long": 8,
    "ulong": 8,
    "size_t": 8,
    "half": 2,
    "float": 4,
    "double": 8,
}

#: Scalar type singletons.
VOID = VoidType()
BOOL = ScalarType("bool")
CHAR = ScalarType("char")
UCHAR = ScalarType("uchar")
SHORT = ScalarType("short")
USHORT = ScalarType("ushort")
INT = ScalarType("int")
UINT = ScalarType("uint")
LONG = ScalarType("long")
ULONG = ScalarType("ulong")
SIZE_T = ScalarType("size_t")
HALF = ScalarType("half")
FLOAT = ScalarType("float")
DOUBLE = ScalarType("double")

_SCALARS: dict[str, ScalarType] = {
    scalar.kind: scalar
    for scalar in (
        BOOL,
        CHAR,
        UCHAR,
        SHORT,
        USHORT,
        INT,
        UINT,
        LONG,
        ULONG,
        SIZE_T,
        HALF,
        FLOAT,
        DOUBLE,
    )
}

_VECTOR_WIDTHS = (2, 3, 4, 8, 16)


def _builtin_type_names() -> dict[str, Type]:
    names: dict[str, Type] = {"void": VOID}
    names.update(_SCALARS)
    # C-style spellings.
    names["unsigned"] = UINT
    names["unsigned int"] = UINT
    names["unsigned char"] = UCHAR
    names["unsigned short"] = USHORT
    names["unsigned long"] = ULONG
    names["signed int"] = INT
    names["long long"] = LONG
    names["unsigned long long"] = ULONG
    for scalar in _SCALARS.values():
        if scalar.kind in ("bool", "size_t"):
            continue
        for width in _VECTOR_WIDTHS:
            names[f"{scalar.kind}{width}"] = VectorType(scalar, width)
    return names


#: Built once and copied per table: every compile makes a TypeTable, and the
#: Type values are immutable, so only the dict itself needs to be fresh.
_BUILTIN_TYPE_NAMES = _builtin_type_names()


class TypeTable:
    """Maps type names (builtins plus typedefs) to :class:`Type` objects."""

    def __init__(self) -> None:
        self._names: dict[str, Type] = dict(_BUILTIN_TYPE_NAMES)
        self._structs: dict[str, StructType] = {}

    def is_type_name(self, name: str) -> bool:
        return name in self._names

    def lookup(self, name: str) -> Type | None:
        return self._names.get(name)

    def define_typedef(self, name: str, target: Type) -> None:
        self._names[name] = target

    def define_struct(self, struct: StructType) -> None:
        self._structs[struct.name] = struct
        self._names[f"struct {struct.name}"] = struct

    def lookup_struct(self, name: str) -> StructType | None:
        return self._structs.get(name)

    def copy(self) -> "TypeTable":
        table = TypeTable()
        table._names = dict(self._names)
        table._structs = dict(self._structs)
        return table


def scalar(name: str) -> ScalarType:
    """Return the scalar type named *name* (raises ``KeyError`` if unknown)."""
    return _SCALARS[name]


def vector(element_name: str, width: int) -> VectorType:
    """Return the vector type ``<element_name><width>``."""
    return VectorType(scalar(element_name), width)


def parse_type_name(name: str) -> Type | None:
    """Best-effort parse of a type spelled as a plain string (used by the
    payload generator when only textual signatures are available)."""
    table = TypeTable()
    name = name.strip()
    is_pointer = name.endswith("*")
    if is_pointer:
        name = name[:-1].strip()
    space = AddressSpace.PRIVATE
    for qualifier in ("__global", "global", "__local", "local", "__constant", "constant"):
        if name.startswith(qualifier + " "):
            space = AddressSpace.from_qualifier(qualifier)
            name = name[len(qualifier) :].strip()
    is_const = False
    if name.startswith("const "):
        is_const = True
        name = name[len("const ") :].strip()
    base = table.lookup(name)
    if base is None:
        return None
    if is_pointer:
        return PointerType(base, space, is_const)
    return base
