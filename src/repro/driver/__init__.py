"""``repro.driver`` — the host driver (paper §5).

Payload generation, the four-execution dynamic checker and the benchmark
harness that executes kernels on the simulated platforms and records the
measurements used for predictive modeling.
"""

from repro.driver.checker import CheckOutcome, DynamicChecker, DynamicCheckResult
from repro.driver.harness import (
    DriverConfig,
    HostDriver,
    KernelMeasurement,
    is_useful_benchmark,
)
from repro.driver.payload import Payload, PayloadConfig, PayloadGenerator

__all__ = [
    "CheckOutcome",
    "DriverConfig",
    "DynamicCheckResult",
    "DynamicChecker",
    "HostDriver",
    "KernelMeasurement",
    "Payload",
    "PayloadConfig",
    "PayloadGenerator",
    "is_useful_benchmark",
]
