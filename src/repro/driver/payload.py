"""Payload generation (paper §5.1).

"A payload encapsulates all of the arguments of an OpenCL compute kernel.
After parsing the input kernel to derive argument types, a rule-based
approach is used to generate synthetic payloads.  For a given global size
Sg: host buffers of Sg elements are allocated and populated with random
values for global pointer arguments, device-only buffers of Sg elements are
allocated for local pointer arguments, integral arguments are given the
value Sg, and all other scalar arguments are given random values.  Host to
device data transfers are enqueued for all non-write-only global buffers,
and all non-read-only global buffers are transferred back to the host after
kernel execution."

The only deliberate deviation: local buffers are sized to the *work-group*
size rather than the global size, which is what every real reduction kernel
in the corpus expects and what keeps simulated local memory plausible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clc import parse
from repro.clc.ast_nodes import FunctionDecl
from repro.clc.types import PointerType, ScalarType, VectorType
from repro.errors import PayloadError
from repro.execution.memory import Buffer, MemoryPool
from repro.execution.ndrange import NDRange


@dataclass
class Payload:
    """All arguments for one kernel launch, plus transfer accounting."""

    pool: MemoryPool
    scalar_args: dict[str, object]
    ndrange: NDRange
    transfer_to_device_bytes: int = 0
    transfer_from_device_bytes: int = 0
    transfer_count: int = 0

    @property
    def transfer_bytes(self) -> int:
        """Total host↔device traffic for one execution."""
        return self.transfer_to_device_bytes + self.transfer_from_device_bytes

    def clone(self) -> "Payload":
        """Deep-copy the payload (identical input values, fresh buffers)."""
        pool = MemoryPool()
        for name, buffer in self.pool.buffers.items():
            pool.buffers[name] = buffer.clone()
        return Payload(
            pool=pool,
            scalar_args=dict(self.scalar_args),
            ndrange=self.ndrange,
            transfer_to_device_bytes=self.transfer_to_device_bytes,
            transfer_from_device_bytes=self.transfer_from_device_bytes,
            transfer_count=self.transfer_count,
        )

    def global_buffers(self) -> list[Buffer]:
        return self.pool.global_buffers


@dataclass
class PayloadConfig:
    """Payload-generation parameters.

    ``global_size`` is the number of work-items Sg.  The paper's host driver
    synthesizes payloads between 128 B and 130 MB; experiments here use a
    smaller executed size and scale runtimes analytically (see the device
    cost models).
    """

    global_size: int = 256
    local_size: int = 64
    seed: int = 0
    value_range: tuple[float, float] = (-10.0, 10.0)


_ELEMENT_SIZES = {"char": 1, "uchar": 1, "short": 2, "ushort": 2, "half": 2, "int": 4,
                  "uint": 4, "float": 4, "long": 8, "ulong": 8, "double": 8, "size_t": 8,
                  "bool": 1}


class PayloadGenerator:
    """Generates rule-based payloads for arbitrary kernel signatures."""

    def __init__(self, config: PayloadConfig | None = None):
        self.config = config or PayloadConfig()

    # ------------------------------------------------------------------

    def generate_for_source(self, source: str, kernel_name: str | None = None) -> Payload:
        """Parse *source* and build a payload for its (first) kernel."""
        unit = parse(source)
        kernels = unit.kernels
        if not kernels:
            raise PayloadError("source contains no kernel function")
        kernel = unit.kernel(kernel_name) if kernel_name else kernels[0]
        return self.generate(kernel)

    def generate(self, kernel: FunctionDecl, work_dim: int = 1) -> Payload:
        """Build a payload for a parsed kernel."""
        config = self.config
        rng = random.Random(config.seed)
        global_size = max(1, config.global_size)
        local_size = max(1, min(config.local_size, global_size))

        if work_dim == 1:
            ndrange = NDRange((global_size,), (local_size,))
        else:
            side = max(1, int(round(global_size ** 0.5)))
            local_side = max(1, min(8, side))
            ndrange = NDRange((side, side), (local_side, local_side))

        pool = MemoryPool()
        scalar_args: dict[str, object] = {}
        to_device = 0
        from_device = 0
        transfers = 0

        for parameter in kernel.parameters:
            name = parameter.name or f"arg{len(pool.buffers) + len(scalar_args)}"
            declared = parameter.declared_type
            if isinstance(declared, PointerType):
                element_kind, vector_width = self._element_of(declared)
                if declared.address_space.value == "local":
                    size = ndrange.work_group_size
                else:
                    size = global_size
                buffer = pool.allocate(
                    name,
                    size,
                    element_kind=element_kind,
                    vector_width=vector_width,
                    address_space=declared.address_space.value
                    if declared.address_space.value in ("global", "local", "constant")
                    else "global",
                )
                if buffer.address_space in ("global", "constant"):
                    self._fill_random(buffer, rng)
                    access = parameter.access or ""
                    if "write_only" not in access:
                        to_device += buffer.size_in_bytes
                        transfers += 1
                    if "read_only" not in access and not declared.is_const:
                        from_device += buffer.size_in_bytes
                        transfers += 1
            elif isinstance(declared, (ScalarType, VectorType)) or declared is None:
                scalar_args[name] = self._scalar_value(declared, global_size, rng)
            else:
                scalar_args[name] = 0

        return Payload(
            pool=pool,
            scalar_args=scalar_args,
            ndrange=ndrange,
            transfer_to_device_bytes=to_device,
            transfer_from_device_bytes=from_device,
            transfer_count=max(transfers, 1),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _element_of(pointer: PointerType) -> tuple[str, int]:
        pointee = pointer.pointee
        if isinstance(pointee, VectorType):
            return pointee.element.kind, pointee.width
        if isinstance(pointee, ScalarType):
            return pointee.kind, 1
        return "float", 1

    def _fill_random(self, buffer: Buffer, rng: random.Random) -> None:
        low, high = self.config.value_range
        if buffer.element_kind in ("float", "double", "half"):
            values = [rng.uniform(low, high) for _ in range(buffer.size)]
        else:
            values = [rng.randint(0, max(1, buffer.size - 1)) for _ in range(buffer.size)]
        if buffer.vector_width > 1:
            from repro.execution.values import VectorValue

            values = [
                VectorValue.from_components(
                    buffer.element_kind,
                    buffer.vector_width,
                    [v + offset * 0.5 for offset in range(buffer.vector_width)],
                )
                for v in values
            ]
        # The values above are generated in the buffer's element type, so
        # the element-by-element coercion of copy_from() is pure overhead.
        buffer.fill_trusted(values)

    def _scalar_value(self, declared, global_size: int, rng: random.Random):
        low, high = self.config.value_range
        if declared is None:
            return global_size
        if isinstance(declared, VectorType):
            from repro.execution.values import VectorValue

            return VectorValue.broadcast(declared.element.kind, declared.width, rng.uniform(low, high))
        kind = declared.kind if isinstance(declared, ScalarType) else "int"
        if kind in ("float", "double", "half"):
            return rng.uniform(1.0, 4.0)
        # "integral arguments are given the value Sg"
        return global_size
