"""The benchmark driver: execute kernels and gather performance data.

This is the right-hand half of Figure 4: synthesized (or suite) benchmarks
plus generated payloads are executed and profiled, producing the
measurements that the feature extractor and the predictive model consume.
Execution happens on the NDRange interpreter at a modest size; runtimes for
the paper's CPU/GPU platforms are then estimated by the analytic device
models on a profile scaled to the requested dataset size, which is how this
reproduction covers the paper's 128 B – 130 MB payload range without
executing millions of work-items in Python.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field

from repro.clc import CompilationResult
from repro.clc.ast_nodes import Call, walk
from repro.driver.checker import CheckOutcome, DynamicChecker, DynamicCheckResult
from repro.driver.payload import Payload, PayloadConfig, PayloadGenerator
from repro.errors import CompileError, ExecutionError, KernelTimeoutError
from repro.execution.cache import cached_compile_source, run_kernel
from repro.execution.device import KernelProfile, Platform, all_platforms
from repro.execution.interpreter import ExecutionStats
from repro.execution.memory import LaneArena
from repro.preprocess.shim import shim_include_resolver, with_shim


@dataclass
class KernelMeasurement:
    """One kernel's complete measurement record.

    Pickles slim: the embedded :class:`CompilationResult` is a pure function
    of ``source`` (via the shimmed frontend cache) and dominates the pickled
    size by an order of magnitude, so ``__getstate__`` drops it and the
    ``compilation`` attribute is recompiled lazily on first access after
    unpickling.  Everything downstream — the feature extractor is the sole
    consumer — sees an identical object because the recompile is the exact
    call that produced the original.
    """

    name: str
    source: str
    kernel_name: str
    compilation: CompilationResult
    stats: ExecutionStats
    profile: KernelProfile
    executed_global_size: int
    dataset_scale: float
    transfer_bytes: float
    work_group_size: int
    runtimes: dict[str, dict[str, float]] = field(default_factory=dict)
    oracles: dict[str, str] = field(default_factory=dict)
    check: DynamicCheckResult | None = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("compilation", None)
        return state

    def __getattr__(self, name: str):
        if name == "compilation":
            compilation = cached_compile_source(
                with_shim(self.source),
                include_resolver=shim_include_resolver,
                strict=False,
            )
            self.compilation = compilation
            return compilation
        raise AttributeError(name)

    def runtime(self, platform: str, device: str) -> float:
        return self.runtimes[platform][device]

    def oracle(self, platform: str) -> str:
        return self.oracles[platform]

    def speedup_of(self, platform: str, device: str) -> float:
        """Speedup of choosing *device* over the other device on *platform*."""
        times = self.runtimes[platform]
        other = "gpu" if device == "cpu" else "cpu"
        return times[other] / max(times[device], 1e-12)


@dataclass
class DriverConfig:
    """Host-driver configuration."""

    executed_global_size: int = 256
    local_size: int = 64
    dataset_scale: float = 1.0
    payload_seed: int = 0
    max_steps_per_item: int = 50_000
    run_dynamic_check: bool = False
    #: Execution engine: "auto" (default) runs vectorizable kernels on the
    #: lockstep SIMT tier and everything else (plus dynamic bailouts) on the
    #: closure engine; "compiled" forces the closure engine; "interpreter"
    #: forces the legacy tree walker.
    engine: str = "auto"
    #: Worker processes for :meth:`HostDriver.measure_many`.  0 (default)
    #: measures sequentially; the ``REPRO_MEASURE_WORKERS`` environment
    #: variable supplies a default when unset.  Kernel measurement is
    #: embarrassingly parallel across *distinct* kernels, so the pool pays
    #: off for large synthetic batches (workers do not share the in-process
    #: execution caches).
    measure_workers: int = 0
    #: Standard deviation of the multiplicative log-normal measurement noise
    #: applied to every runtime estimate.  Real systems are noisy (the paper
    #: averages five repetitions per measurement); a deterministic,
    #: per-kernel noise term keeps the simulated world from being perfectly
    #: learnable from a handful of observations.
    measurement_noise: float = 0.25


@dataclass
class _ExecutionRecord:
    """Everything one execution contributes to any number of measurements.

    Execution is deterministic given (source, kernel, launch config, payload
    seed); dataset scales only rescale the resulting profile.  Caching the
    record means a benchmark measured across five datasets executes once.
    """

    compilation: CompilationResult
    kernel_name: str
    stats: ExecutionStats
    coalesced_fraction: float
    transfer_bytes: float
    work_group_size: int
    transfer_count: int
    #: The unscaled profile, built once per execution: dataset scales only
    #: rescale it, so N datasets share one ``KernelProfile.from_stats``.
    base_profile: KernelProfile = None  # type: ignore[assignment]


class HostDriver:
    """Executes and profiles kernels on the simulated platforms."""

    #: Bound on the per-driver execution-record cache.
    _EXECUTION_CACHE_LIMIT = 4096

    def __init__(
        self,
        platforms: list[Platform] | None = None,
        config: DriverConfig | None = None,
    ):
        self.platforms = platforms or all_platforms()
        self.config = config or DriverConfig()
        #: (source sha1, kernel name) -> _ExecutionRecord | None (None caches
        #: a compile/execution failure so it is not retried per dataset).
        self._execution_cache: dict[tuple[str, str | None], _ExecutionRecord | None] = {}
        #: Lane-buffer arena shared by every execution on this driver: the
        #: lockstep tier recycles its per-launch NumPy allocations through
        #: it instead of re-allocating per kernel.
        self._arena = LaneArena()
        #: Payload generation is configured once per driver; the generator
        #: itself is stateless across ``generate`` calls (each draws from a
        #: fresh seeded RNG), so one instance serves the whole batch.
        self._generator = PayloadGenerator(
            PayloadConfig(
                global_size=self.config.executed_global_size,
                local_size=self.config.local_size,
                seed=self.config.payload_seed,
            )
        )
        self._checker = DynamicChecker(
            payload_config=PayloadConfig(
                global_size=min(self.config.executed_global_size, 128),
                local_size=self.config.local_size,
                seed=self.config.payload_seed,
            ),
            max_steps_per_item=self.config.max_steps_per_item,
            engine=self.config.engine,
        )

    # ------------------------------------------------------------------

    def measure_source(
        self,
        source: str,
        name: str | None = None,
        kernel_name: str | None = None,
        dataset_scale: float | None = None,
    ) -> KernelMeasurement | None:
        """Compile, execute and profile one kernel.

        Returns ``None`` when the kernel cannot be compiled or executed —
        callers (the experiment harness) treat that as "benchmark excluded",
        mirroring how a crashing benchmark would be dropped from a study.
        """
        scale = self.config.dataset_scale if dataset_scale is None else dataset_scale
        record = self._execution_record(source, kernel_name)
        if record is None:
            return None

        profile = record.base_profile.scaled(scale)

        runtimes: dict[str, dict[str, float]] = {}
        oracles: dict[str, str] = {}
        for platform in self.platforms:
            times = platform.runtimes(profile)
            times = {
                device: value
                * self._noise_factor(name or record.kernel_name, platform.name, device)
                for device, value in times.items()
            }
            runtimes[platform.name] = times
            oracles[platform.name] = "cpu" if times["cpu"] <= times["gpu"] else "gpu"

        check = None
        if self.config.run_dynamic_check:
            check = self._checker.check(record.compilation.unit, record.kernel_name)

        return KernelMeasurement(
            name=name or record.kernel_name,
            source=source,
            kernel_name=record.kernel_name,
            compilation=record.compilation,
            stats=dataclasses.replace(record.stats),
            profile=profile,
            executed_global_size=self.config.executed_global_size,
            dataset_scale=scale,
            transfer_bytes=record.transfer_bytes * scale,
            work_group_size=record.work_group_size,
            runtimes=runtimes,
            oracles=oracles,
            check=check,
        )

    def _execution_record(
        self, source: str, kernel_name: str | None
    ) -> _ExecutionRecord | None:
        """Compile and execute *source* once; repeats are served from cache.

        Executions are deterministic for a fixed driver configuration, so a
        benchmark measured across N dataset scales (or repeatedly by several
        experiments) pays for one execution.  Failures are cached too —
        ``None`` mirrors the "benchmark excluded" contract.
        """
        key = (hashlib.sha1(source.encode("utf-8", "replace")).hexdigest(), kernel_name)
        if key in self._execution_cache:
            return self._execution_cache[key]

        record = self._execute_for_record(source, kernel_name)
        if len(self._execution_cache) >= self._EXECUTION_CACHE_LIMIT:
            self._execution_cache.clear()
        self._execution_cache[key] = record
        return record

    def _execute_for_record(
        self, source: str, kernel_name: str | None
    ) -> _ExecutionRecord | None:
        try:
            compilation = cached_compile_source(
                with_shim(source), include_resolver=shim_include_resolver, strict=False
            )
        except CompileError:
            return None
        kernels = compilation.unit.kernels
        if not kernels:
            return None
        kernel = compilation.unit.kernel(kernel_name) if kernel_name else kernels[0]

        work_dim = self._kernel_work_dim(kernel)
        payload = self._generator.generate(kernel, work_dim=work_dim)

        try:
            execution = run_kernel(
                compilation.unit,
                payload.pool,
                payload.scalar_args,
                payload.ndrange,
                kernel_name=kernel.name,
                max_steps_per_item=self.config.max_steps_per_item,
                engine=self.config.engine,
                arena=self._arena,
            )
        except (KernelTimeoutError, ExecutionError):
            return None

        ir_kernel = self._ir_function(compilation, kernel.name)
        coalesced_fraction = 1.0
        if ir_kernel is not None and ir_kernel.global_memory_accesses > 0:
            coalesced_fraction = (
                ir_kernel.coalesced_memory_accesses / ir_kernel.global_memory_accesses
            )

        base_profile = KernelProfile.from_stats(
            execution.stats,
            coalesced_fraction=coalesced_fraction,
            transfer_bytes=float(payload.transfer_bytes),
            work_group_size=payload.ndrange.work_group_size,
            transfer_count=payload.transfer_count,
        )
        return _ExecutionRecord(
            compilation=compilation,
            kernel_name=kernel.name,
            stats=execution.stats,
            coalesced_fraction=coalesced_fraction,
            transfer_bytes=float(payload.transfer_bytes),
            work_group_size=payload.ndrange.work_group_size,
            transfer_count=payload.transfer_count,
            base_profile=base_profile,
        )

    def measure_benchmark(self, benchmark) -> list[KernelMeasurement]:
        """Measure one suite benchmark across all of its datasets.

        *benchmark* is any object with ``source``, ``qualified_name`` and
        ``datasets`` (each with ``name`` and ``scale``) — i.e. a
        :class:`repro.suites.registry.Benchmark`, duck-typed so this layer
        stays independent of the suites registry.  This is the single
        implementation behind both the experiment harness and the stage
        graph's ``execute`` stage.
        """
        measurements = []
        for dataset in benchmark.datasets:
            measurement = self.measure_source(
                benchmark.source,
                name=f"{benchmark.qualified_name}.{dataset.name}",
                dataset_scale=dataset.scale,
            )
            if measurement is not None:
                measurements.append(measurement)
        return measurements

    def measure_many(
        self,
        sources: list[str],
        names: list[str] | None = None,
        dataset_scales: list[float] | None = None,
        workers: int | None = None,
    ) -> list[KernelMeasurement]:
        """Measure several kernels, silently skipping failures.

        With ``workers > 1`` (explicit argument, ``DriverConfig.measure_workers``
        or the ``REPRO_MEASURE_WORKERS`` environment variable) the batch is
        fanned out over a process pool, one fresh driver per worker; results
        come back in input order, identical to a sequential run because each
        measurement is deterministic in (source, config).  Falls back to
        sequential measurement if the pool cannot be used (e.g. an
        unpicklable measurement).
        """
        workers = self._resolve_workers(workers)
        if workers > 1 and len(sources) > 1:
            import pickle
            import warnings
            from concurrent.futures import BrokenExecutor

            try:
                return self._measure_many_parallel(sources, names, dataset_scales, workers)
            except (pickle.PicklingError, AttributeError, TypeError, OSError,
                    ImportError, BrokenExecutor) as error:
                # Unpicklable configs/measurements or an unusable pool: fall
                # back to in-process measurement, but say so — a silently
                # dead opt-in would rot undetected.
                warnings.warn(
                    f"measure_many worker pool unavailable ({error!r}); measuring sequentially",
                    RuntimeWarning,
                    stacklevel=2,
                )
        # Batched measure loop: the job list is zipped once, and the
        # per-measurement fixed costs (payload generator, lane arena,
        # unscaled profile) live on the driver, shared across the batch.
        measure = self.measure_source
        measurements = [
            measurement
            for source, name, scale in self._batch_jobs(sources, names, dataset_scales)
            if (measurement := measure(source, name=name, dataset_scale=scale)) is not None
        ]
        return measurements

    @staticmethod
    def _batch_jobs(
        sources: list[str],
        names: list[str] | None,
        dataset_scales: list[float] | None,
    ) -> list[tuple[str, str | None, float | None]]:
        """Zip one (source, name, scale) job tuple per batch entry."""
        return [
            (source, names[index] if names else None,
             dataset_scales[index] if dataset_scales else None)
            for index, source in enumerate(sources)
        ]

    def _resolve_workers(self, workers: int | None) -> int:
        if workers is not None:
            return max(workers, 0)
        if self.config.measure_workers:
            return max(self.config.measure_workers, 0)
        # Malformed values fall back to 0 (sequential) with a warning
        # rather than crashing a measurement batch over an env typo.
        from repro.envutil import env_int

        return env_int("REPRO_MEASURE_WORKERS", default=0, minimum=0)

    def _measure_many_parallel(
        self,
        sources: list[str],
        names: list[str] | None,
        dataset_scales: list[float] | None,
        workers: int,
    ) -> list[KernelMeasurement]:
        from concurrent.futures import ProcessPoolExecutor

        jobs = self._batch_jobs(sources, names, dataset_scales)
        workers = min(workers, len(jobs))
        chunk_size = (len(jobs) + workers - 1) // workers
        chunks = [jobs[at:at + chunk_size] for at in range(0, len(jobs), chunk_size)]
        # Workers rebuild the driver from its (picklable) configuration; the
        # worker pool is scoped to the call so no idle processes linger.
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = pool.map(
                _measure_chunk_worker,
                [(self.config, self.platforms, chunk) for chunk in chunks],
            )
            measurements: list[KernelMeasurement] = []
            for chunk_result in results:
                measurements.extend(m for m in chunk_result if m is not None)
        return measurements

    def check_useful(self, source: str) -> DynamicCheckResult:
        """Run only the dynamic checker on *source* (used by the synthesizer).

        The source is compiled through the shimmed frontend cache first and
        the parsed unit threaded into the checker, so the four differential
        executions reuse the cached compilation (and its engine artifacts)
        instead of re-parsing the text.
        """
        try:
            compilation = cached_compile_source(
                with_shim(source), include_resolver=shim_include_resolver, strict=False
            )
        except CompileError:
            return self._checker.check_source(source)
        return self._checker.check_source(source, unit=compilation.unit)

    # ------------------------------------------------------------------

    def _noise_factor(self, name: str, platform: str, device: str) -> float:
        """Deterministic log-normal measurement noise for one runtime."""
        if self.config.measurement_noise <= 0:
            return 1.0
        digest = hashlib.sha256(
            f"{name}|{platform}|{device}|{self.config.payload_seed}".encode("utf-8")
        ).digest()
        # Two uniform draws from the digest -> one standard normal (Box–Muller).
        u1 = (int.from_bytes(digest[:8], "big") / 2**64) or 1e-12
        u2 = int.from_bytes(digest[8:16], "big") / 2**64
        normal = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return math.exp(self.config.measurement_noise * normal)

    @staticmethod
    def _kernel_work_dim(kernel) -> int:
        return kernel_work_dim(kernel)

    @staticmethod
    def _ir_function(compilation: CompilationResult, kernel_name: str):
        try:
            return compilation.ir.function(kernel_name)
        except KeyError:
            return None


def kernel_work_dim(kernel) -> int:
    """Detect 2D kernels by their use of dimension-1 work-item queries.

    The static analyzer mirrors this rule (``DivergenceAnalysis.multi_dim``)
    and the soundness harness dispatches with it, so all three layers agree
    on which kernels get a 2-D NDRange.
    """
    if kernel.body is None:
        return 1
    for node in walk(kernel.body):
        if isinstance(node, Call) and node.callee in (
            "get_global_id",
            "get_group_id",
            "get_local_id",
        ):
            if node.arguments:
                argument = node.arguments[0]
                value = getattr(argument, "value", None)
                if value == 1:
                    return 2
    return 1


def _measure_chunk_worker(task) -> list[KernelMeasurement | None]:
    """Process-pool entry point: measure a chunk of sources on a fresh driver."""
    config, platforms, jobs = task
    driver = HostDriver(platforms=platforms, config=config)
    return [
        driver.measure_source(source, name=name, dataset_scale=scale)
        for source, name, scale in jobs
    ]


def is_useful_benchmark(result: DynamicCheckResult) -> bool:
    """Convenience predicate for filtering synthesized kernels (§5.2)."""
    return result.outcome is CheckOutcome.USEFUL
