"""The dynamic checker (paper §5.2).

A synthesized kernel "performs useful work" if it predictably computes some
result.  The check runs the kernel four times over two distinct inputs
(each duplicated):

1. payloads ``A1, B1, A2, B2`` with ``A1 = A2``, ``B1 = B2``, ``A1 ≠ B1``;
2. executions ``k(A1) → A1out`` … ``k(B2) → B2out``;
3. assertions —
   * ``A1out ≠ A1in`` and ``B1out ≠ B1in``, else the kernel produced **no
     output** for these inputs;
   * ``A1out ≠ B1out`` and ``A2out ≠ B2out``, else the kernel is **input
     insensitive**;
   * ``A1out = A2out`` and ``B1out = B2out``, else the kernel is
     **non-deterministic**.

Floating-point comparisons use an epsilon, and a step-budget timeout marks
non-terminating kernels.  As in the paper this is a tailored differential
check, not a general verifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.clc import parse
from repro.clc.ast_nodes import TranslationUnit
from repro.driver.payload import Payload, PayloadConfig, PayloadGenerator
from repro.errors import ExecutionError, KernelTimeoutError
from repro.execution.cache import run_kernel
from repro.execution.interpreter import ExecutionResult


class CheckOutcome(Enum):
    """Classification of a kernel by the dynamic checker."""

    USEFUL = "useful work"
    NO_OUTPUT = "no output"
    INPUT_INSENSITIVE = "input insensitive"
    NON_DETERMINISTIC = "non-deterministic"
    TIMEOUT = "timeout"
    EXECUTION_ERROR = "execution error"
    NO_GLOBAL_OUTPUT_BUFFERS = "no writable global buffers"


@dataclass
class DynamicCheckResult:
    """The verdict plus the executions it was based on."""

    outcome: CheckOutcome
    detail: str = ""
    executions: int = 0
    representative: ExecutionResult | None = None

    @property
    def useful(self) -> bool:
        return self.outcome is CheckOutcome.USEFUL


class DynamicChecker:
    """Runs the four-execution differential check on a kernel."""

    def __init__(
        self,
        payload_config: PayloadConfig | None = None,
        epsilon: float = 1e-4,
        max_steps_per_item: int = 50_000,
        engine: str = "auto",
    ):
        self.payload_config = payload_config or PayloadConfig()
        self.epsilon = epsilon
        self.max_steps_per_item = max_steps_per_item
        self.engine = engine

    # ------------------------------------------------------------------

    def check_source(
        self,
        source: str,
        kernel_name: str | None = None,
        unit: TranslationUnit | None = None,
    ) -> DynamicCheckResult:
        """Check the (first) kernel of *source*.

        Callers that already compiled the source (the host driver, the
        rejection filter) pass the parsed *unit* so the check reuses it —
        and with it every cached engine artifact keyed on that unit —
        instead of re-parsing the text.
        """
        if unit is None:
            try:
                unit = parse(source)
            except Exception as error:  # rejected sources should not reach here
                return DynamicCheckResult(outcome=CheckOutcome.EXECUTION_ERROR, detail=str(error))
        return self.check(unit, kernel_name)

    def check(self, unit: TranslationUnit, kernel_name: str | None = None) -> DynamicCheckResult:
        kernels = unit.kernels
        if not kernels:
            return DynamicCheckResult(
                outcome=CheckOutcome.EXECUTION_ERROR, detail="no kernel in translation unit"
            )
        kernel = unit.kernel(kernel_name) if kernel_name else kernels[0]

        generator_a = PayloadGenerator(self._config_with_seed(self.payload_config.seed))
        generator_b = PayloadGenerator(self._config_with_seed(self.payload_config.seed + 7919))
        payload_a1 = generator_a.generate(kernel)
        payload_b1 = generator_b.generate(kernel)
        if not payload_a1.global_buffers():
            return DynamicCheckResult(outcome=CheckOutcome.NO_GLOBAL_OUTPUT_BUFFERS)
        payload_a2 = payload_a1.clone()
        payload_b2 = payload_b1.clone()

        inputs_a = self._snapshot(payload_a1)
        inputs_b = self._snapshot(payload_b1)

        executions = 0
        results = []
        try:
            # One compilation serves all four differential executions (the
            # compiled engine is fetched from the process-wide cache).
            for payload in (payload_a1, payload_b1, payload_a2, payload_b2):
                results.append(
                    run_kernel(
                        unit,
                        payload.pool,
                        payload.scalar_args,
                        payload.ndrange,
                        kernel_name=kernel.name,
                        max_steps_per_item=self.max_steps_per_item,
                        engine=self.engine,
                    )
                )
                executions += 1
        except KernelTimeoutError as error:
            return DynamicCheckResult(
                outcome=CheckOutcome.TIMEOUT, detail=str(error), executions=executions
            )
        except ExecutionError as error:
            return DynamicCheckResult(
                outcome=CheckOutcome.EXECUTION_ERROR, detail=str(error), executions=executions
            )

        out_a1 = self._snapshot(payload_a1)
        out_b1 = self._snapshot(payload_b1)
        out_a2 = self._snapshot(payload_a2)
        out_b2 = self._snapshot(payload_b2)

        if self._equal(out_a1, inputs_a) and self._equal(out_b1, inputs_b):
            return DynamicCheckResult(
                outcome=CheckOutcome.NO_OUTPUT,
                detail="outputs identical to inputs",
                executions=executions,
                representative=results[0],
            )
        if self._equal(out_a1, out_b1) and self._equal(out_a2, out_b2):
            return DynamicCheckResult(
                outcome=CheckOutcome.INPUT_INSENSITIVE,
                detail="different inputs produced identical outputs",
                executions=executions,
                representative=results[0],
            )
        if not self._equal(out_a1, out_a2) or not self._equal(out_b1, out_b2):
            return DynamicCheckResult(
                outcome=CheckOutcome.NON_DETERMINISTIC,
                detail="identical inputs produced different outputs",
                executions=executions,
                representative=results[0],
            )
        return DynamicCheckResult(
            outcome=CheckOutcome.USEFUL, executions=executions, representative=results[0]
        )

    # ------------------------------------------------------------------

    def _config_with_seed(self, seed: int) -> PayloadConfig:
        return PayloadConfig(
            global_size=self.payload_config.global_size,
            local_size=self.payload_config.local_size,
            seed=seed,
            value_range=self.payload_config.value_range,
        )

    @staticmethod
    def _snapshot(payload: Payload) -> dict[str, list]:
        return {
            name: buffer.to_list()
            for name, buffer in payload.pool.buffers.items()
            if buffer.address_space == "global"
        }

    def _equal(self, left: dict[str, list], right: dict[str, list]) -> bool:
        from repro.execution.values import values_equal

        if left.keys() != right.keys():
            return False
        for name in left:
            a, b = left[name], right[name]
            if len(a) != len(b):
                return False
            if not all(values_equal(x, y, self.epsilon) for x, y in zip(a, b)):
                return False
        return True
