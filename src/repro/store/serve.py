"""``repro serve`` — the stateless HTTP front door of the synthesis service.

The service architecture is deliberately lopsided: *all* coordination
state lives in the artifact store (plans, claims, attempts, failures,
fleet status), and this front end holds **none**.  A request is admitted
by publishing an ordinary ``plan`` artifact; progress is answered by
probing which store entries exist; quarantine is read from
``queue/failures/``; fleet health from ``fleet/status.json``.  Because
every answer is re-derived from the store on every request, any number of
``repro serve`` replicas can front one store, a replica can be killed and
restarted mid-request without losing anything, and a client that
reconnects to a different replica sees the exact same plan state.

The request lifecycle:

* **admit** — ``POST /plans`` validates the pipeline-config overrides,
  computes the plan fingerprint, and applies admission control: when the
  store already holds ``REPRO_SERVE_MAX_PLANS`` unfinished plans the
  request is refused with ``503`` and a ``Retry-After`` header instead of
  silently deepening the backlog.
* **publish** — the accepted request becomes a ``plan`` artifact with a
  per-plan **priority**; ``load_plans`` orders plans by it and claim
  sweeps order pending shards by it before the worker-id rotation, so
  the standing fleet (``repro fleet``) finishes urgent work first.
* **stream** — ``GET /plans/<key>/events`` emits newline-delimited JSON
  progress snapshots as shards land, and ``GET /plans/<key>/result?wait=1``
  blocks until the plan resolves; both poll the store, nothing else.
* **complete / quarantine / deadline** — a finished plan returns its
  synthesis and measurement summary; a quarantined plan maps
  ``queue/failures/<key>.json`` to a structured error naming the poison
  shard (never a hang); a plan that outlives the per-request deadline
  (``REPRO_SERVE_DEADLINE``) returns a structured timeout and is simply
  abandoned — its artifacts stay behind for the store's gc, and workers
  finishing it later turn the next request into an instant hit.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.envutil import env_duration, env_int
from repro.store.queue import (
    ShardQueue,
    load_plans,
    plan_fingerprint,
    plan_priority,
    publish_plan,
    queue_status,
)
from repro.store.supervisor import read_fleet_status

#: Default bound on unfinished plans admitted at once (``REPRO_SERVE_MAX_PLANS``).
DEFAULT_MAX_PLANS = 4

#: Default per-request deadline in seconds (``REPRO_SERVE_DEADLINE``).
DEFAULT_DEADLINE_SECONDS = 600.0

#: Seconds the saturation response asks clients to back off for.
RETRY_AFTER_SECONDS = 5

#: The merged artifact kinds whose existence means "plan complete".
WHOLE_KINDS = (
    "mine",
    "corpus",
    "model",
    "synthesis",
    "suite-measurements",
    "synthetic-measurements",
)


def default_max_plans() -> int:
    """The admission bound from ``REPRO_SERVE_MAX_PLANS``, hardened."""
    return env_int("REPRO_SERVE_MAX_PLANS", default=DEFAULT_MAX_PLANS, minimum=1)


def default_deadline_seconds() -> float:
    """The per-request deadline from ``REPRO_SERVE_DEADLINE`` (seconds,
    suffixes allowed: ``90``, ``45s``, ``10m``), hardened."""
    return env_duration(
        "REPRO_SERVE_DEADLINE", default=DEFAULT_DEADLINE_SECONDS, minimum=0.001
    )


class ValidationError(ValueError):
    """A request body that can never become a valid plan (HTTP 400)."""


def build_config(overrides: dict | None):
    """A :class:`PipelineConfig` from JSON field overrides, strictly.

    Unknown fields are refused rather than ignored — a typo'd field name
    silently running the default pipeline is the worst failure mode a
    front door can have.  ``lstm`` is refused too: nested hyper-parameter
    objects have their own constructor and are a CLI concern.
    """
    from repro.store.stages import PipelineConfig

    valid = {field.name for field in dataclasses.fields(PipelineConfig)}
    kwargs = {}
    for name, value in (overrides or {}).items():
        if name not in valid:
            raise ValidationError(f"unknown config field {name!r}")
        if name == "lstm":
            raise ValidationError("config field 'lstm' is not settable over HTTP")
        if isinstance(value, list):
            value = tuple(value)
            for item in value:
                if not isinstance(item, (bool, int, float, str)):
                    raise ValidationError(
                        f"config field {name!r} has unsupported type "
                        f"{type(item).__name__} in its list"
                    )
        elif not isinstance(value, (bool, int, float, str, type(None))):
            raise ValidationError(
                f"config field {name!r} has unsupported type {type(value).__name__}"
            )
        kwargs[name] = value
    try:
        return PipelineConfig(**kwargs)
    except (TypeError, ValueError) as error:
        raise ValidationError(str(error)) from error


def _whole_keys(cfg) -> dict[str, str]:
    """Merged-artifact kind → store key for *cfg* (the completion bar)."""
    from repro.store import stages

    return {
        "mine": stages.mine_fingerprint(cfg),
        "corpus": stages.corpus_fingerprint(cfg),
        "model": stages.model_fingerprint(cfg),
        "synthesis": stages.synthesis_fingerprint(cfg),
        "suite-measurements": stages.suite_execution_fingerprint(cfg),
        "synthetic-measurements": stages.synthetic_execution_fingerprint(cfg),
    }


def _task_labels(cfg, shards: int) -> dict[str, str]:
    """Every claimable task key of the plan → a human-readable label, so a
    quarantine record can name the poison shard instead of a bare hash."""
    labels: dict[str, str] = {}
    if shards > 1:
        from repro.store.shards import _SPECS

        for spec in _SPECS.values():
            for index, key in enumerate(spec.keys(cfg, shards)):
                labels[key] = f"{spec.kind}[{index}]"
    for kind, key in _whole_keys(cfg).items():
        labels[key] = kind
    return labels


def _has_entry(store, kind: str, key: str) -> bool:
    path = store.entry_path(kind, key)
    return path is not None and path.exists()


def plan_status(store, key: str) -> dict | None:
    """The observable state of plan *key*, derived purely from the store.

    ``state`` is one of ``pending`` (nothing touched it yet), ``running``
    (entries or live claims exist), ``complete`` (every merged artifact
    landed) or ``failed`` (a task of the plan was quarantined — the
    response names the poison shard and carries the failure record).
    """
    value = store.get("plan", key)
    if value is None:
        return None
    cfg, shards = value["config"], value["shards"]
    labels = _task_labels(cfg, shards)
    merged = {
        kind: _has_entry(store, kind, whole_key)
        for kind, whole_key in _whole_keys(cfg).items()
    }
    progress = {}
    if shards > 1:
        from repro.store.shards import _SPECS

        for spec in _SPECS.values():
            keys = spec.keys(cfg, shards)
            done = sum(1 for shard_key in keys if _has_entry(store, spec.kind, shard_key))
            progress[spec.kind] = {"done": done, "total": len(keys)}
    queue = ShardQueue(store.directory)
    failure = None
    for record in queue.failure_records():
        task = record.get("task")
        if task in labels:
            failure = {"task": task, "shard": labels[task], "record": record}
            break
    if failure is not None:
        state = "failed"
    elif all(merged.values()):
        state = "complete"
    else:
        claimed = any(
            record.get("task") in labels for record in queue.claim_records()
        )
        touched = any(merged.values()) or any(
            bucket["done"] for bucket in progress.values()
        )
        state = "running" if claimed or touched else "pending"
    status = {
        "plan": key,
        "state": state,
        "priority": plan_priority(value),
        "shards": shards,
        "merged": merged,
        "progress": progress,
    }
    if failure is not None:
        status["failure"] = failure
    return status


def plan_result(store, key: str) -> dict:
    """The result summary of a *complete* plan (caller checks the state)."""
    value = store.get("plan", key)
    cfg = value["config"]
    whole = _whole_keys(cfg)
    synthesis = store.get("synthesis", whole["synthesis"])
    suites = store.get("suite-measurements", whole["suite-measurements"])
    measurements = store.get("synthetic-measurements", whole["synthetic-measurements"])
    statistics = synthesis.statistics
    return {
        "plan": key,
        "state": "complete",
        "kernels": [kernel.source for kernel in synthesis.kernels],
        "synthesis": {
            "requested": statistics.requested,
            "generated": statistics.generated,
            "attempts": statistics.attempts,
            "acceptance_rate": statistics.acceptance_rate,
        },
        "suite_measurements": sum(
            len(batch) for batch in suites.suite_measurements.values()
        ),
        "synthetic_measurements": len(measurements),
    }


def quarantine_error(status: dict) -> dict:
    """The structured HTTP error body for a quarantined plan."""
    failure = status["failure"]
    attempts = failure["record"].get("attempts", [])
    return {
        "error": "plan-quarantined",
        "plan": status["plan"],
        "poison_task": failure["task"],
        "poison_shard": failure["shard"],
        "detail": (
            f"shard {failure['shard']} exhausted its retry budget "
            f"({len(attempts)} failed attempt(s)); see queue/failures/"
        ),
        "record": failure["record"],
    }


def in_flight_plans(store) -> list[str]:
    """Keys of published plans that are neither complete nor quarantined —
    the backlog admission control counts against ``REPRO_SERVE_MAX_PLANS``."""
    backlog = []
    for key, _value in load_plans(store):
        status = plan_status(store, key)
        if status is not None and status["state"] in ("pending", "running"):
            backlog.append(key)
    return backlog


class ReproServer(ThreadingHTTPServer):
    """One front-door replica: a threading HTTP server plus its knobs.

    Holds a store handle and scalar configuration only — no per-plan or
    per-request state — so replicas are interchangeable and restartable.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        store,
        max_plans: int | None = None,
        deadline_seconds: float | None = None,
        poll_seconds: float = 0.2,
        quiet: bool = True,
    ):
        self.store = store
        self.max_plans = max_plans if max_plans is not None else default_max_plans()
        self.deadline_seconds = (
            deadline_seconds
            if deadline_seconds is not None
            else default_deadline_seconds()
        )
        self.poll_seconds = poll_seconds
        self.quiet = quiet
        super().__init__(address, _Handler)


def build_server(
    store_directory,
    host: str = "127.0.0.1",
    port: int = 0,
    max_plans: int | None = None,
    deadline_seconds: float | None = None,
    poll_seconds: float = 0.2,
    quiet: bool = True,
) -> ReproServer:
    """A ready-to-run front door over *store_directory* (port 0 = ephemeral)."""
    from repro.store.artifact_store import resolve_store

    store = resolve_store(str(store_directory))
    if store.directory is None:
        raise ValueError("repro serve needs an on-disk store directory")
    return ReproServer(
        (host, port),
        store,
        max_plans=max_plans,
        deadline_seconds=deadline_seconds,
        poll_seconds=poll_seconds,
        quiet=quiet,
    )


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer

    #: Request bodies larger than this are refused (nothing legitimate
    #: comes close: a plan is a handful of scalar config overrides).
    MAX_BODY_BYTES = 1 << 20

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _deadline_seconds(self, params: dict) -> float:
        raw = params.get("deadline", [None])[0]
        if raw is None:
            return self.server.deadline_seconds
        try:
            value = float(raw)
        except ValueError:
            return self.server.deadline_seconds
        return value if value > 0 else self.server.deadline_seconds

    # ------------------------------------------------------------------
    # Routes.
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        try:
            self._route_get()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        try:
            self._route_post()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _route_get(self) -> None:
        path, _, query = self.path.partition("?")
        params = urllib.parse.parse_qs(query)
        parts = [part for part in path.split("/") if part]
        store = self.server.store
        if parts == ["healthz"]:
            self._send_json(200, {"ok": True, "store": str(store.directory)})
        elif parts == ["queue"]:
            self._send_json(200, queue_status(store.directory))
        elif parts == ["fleet"]:
            status = read_fleet_status(store.directory)
            if status is None:
                self._send_json(
                    404,
                    {
                        "error": "no-fleet-status",
                        "detail": "no supervisor has published fleet/status.json "
                        "into this store; start one with `repro fleet run`",
                    },
                )
            else:
                self._send_json(200, status)
        elif parts == ["plans"]:
            statuses = [
                status
                for key, _value in load_plans(store)
                if (status := plan_status(store, key)) is not None
            ]
            self._send_json(200, {"plans": statuses})
        elif len(parts) == 2 and parts[0] == "plans":
            status = plan_status(store, parts[1])
            if status is None:
                self._send_json(404, {"error": "unknown-plan", "plan": parts[1]})
            else:
                self._send_json(200, status)
        elif len(parts) == 3 and parts[0] == "plans" and parts[2] == "result":
            self._get_result(parts[1], params)
        elif len(parts) == 3 and parts[0] == "plans" and parts[2] == "events":
            self._get_events(parts[1], params)
        else:
            self._send_json(404, {"error": "unknown-route", "path": path})

    def _get_result(self, key: str, params: dict) -> None:
        """The plan's result — optionally blocking (``?wait=1``) until it
        completes, fails, or the per-request deadline passes."""
        store = self.server.store
        wait = params.get("wait", ["0"])[0] not in ("0", "", "false")
        deadline_seconds = self._deadline_seconds(params)
        deadline = time.monotonic() + deadline_seconds
        while True:
            status = plan_status(store, key)
            if status is None:
                self._send_json(404, {"error": "unknown-plan", "plan": key})
                return
            if status["state"] == "failed":
                self._send_json(502, quarantine_error(status))
                return
            if status["state"] == "complete":
                self._send_json(200, plan_result(store, key))
                return
            if not wait:
                self._send_json(202, status)
                return
            if time.monotonic() >= deadline:
                self._send_json(
                    504,
                    {
                        "error": "deadline",
                        "plan": key,
                        "deadline_seconds": deadline_seconds,
                        "state": status["state"],
                        "detail": "request abandoned: the plan stays published "
                        "and its artifacts are left for workers and gc",
                    },
                )
                return
            time.sleep(self.server.poll_seconds)

    def _get_events(self, key: str, params: dict) -> None:
        """Newline-delimited JSON progress snapshots until the plan reaches
        a terminal state or the request deadline passes."""
        store = self.server.store
        deadline_seconds = self._deadline_seconds(params)
        deadline = time.monotonic() + deadline_seconds
        first = plan_status(store, key)
        if first is None:
            self._send_json(404, {"error": "unknown-plan", "plan": key})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        last = None
        while True:
            status = plan_status(store, key)
            if status is None:
                break
            if status != last:
                self.wfile.write((json.dumps(status) + "\n").encode("utf-8"))
                self.wfile.flush()
                last = status
            if status["state"] in ("complete", "failed"):
                break
            if time.monotonic() >= deadline:
                self.wfile.write(
                    (
                        json.dumps(
                            {
                                "error": "deadline",
                                "plan": key,
                                "deadline_seconds": deadline_seconds,
                                "state": status["state"],
                            }
                        )
                        + "\n"
                    ).encode("utf-8")
                )
                break
            time.sleep(self.server.poll_seconds)

    def _route_post(self) -> None:
        path, _, _query = self.path.partition("?")
        if [part for part in path.split("/") if part] != ["plans"]:
            self._send_json(404, {"error": "unknown-route", "path": path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length > self.MAX_BODY_BYTES:
            self._send_json(413, {"error": "request-too-large"})
            return
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._send_json(400, {"error": "invalid-json"})
            return
        if not isinstance(body, dict):
            self._send_json(400, {"error": "invalid-request", "detail": "body must be a JSON object"})
            return
        try:
            cfg = build_config(body.get("config"))
            shards = self._positive_int(body.get("shards", 1), "shards", maximum=4096)
            priority = self._plain_int(body.get("priority", 0), "priority")
        except ValidationError as error:
            self._send_json(400, {"error": "invalid-request", "detail": str(error)})
            return
        store = self.server.store
        key = plan_fingerprint(cfg, shards)
        status = plan_status(store, key)
        if status is not None and status["state"] == "complete":
            # Idempotent fast path: the work already exists; no admission
            # needed for a request that costs nothing.
            self._send_json(200, status)
            return
        backlog = in_flight_plans(store)
        if key not in backlog and len(backlog) >= self.server.max_plans:
            self._send_json(
                503,
                {
                    "error": "saturated",
                    "detail": f"{len(backlog)} plans already in flight "
                    f"(max {self.server.max_plans}); retry later",
                    "retry_after_seconds": RETRY_AFTER_SECONDS,
                },
                headers=(("Retry-After", str(RETRY_AFTER_SECONDS)),),
            )
            return
        publish_plan(store, cfg, shards, priority=priority)
        status = plan_status(store, key)
        status["links"] = {
            "status": f"/plans/{key}",
            "result": f"/plans/{key}/result",
            "events": f"/plans/{key}/events",
        }
        self._send_json(202, status)

    @staticmethod
    def _positive_int(value, name: str, maximum: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValidationError(f"{name!r} must be a positive integer")
        if value > maximum:
            raise ValidationError(f"{name!r} must be <= {maximum}")
        return value

    @staticmethod
    def _plain_int(value, name: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValidationError(f"{name!r} must be an integer")
        return value
