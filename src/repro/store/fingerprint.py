"""Stable content-addresses for pipeline artifacts.

Every stage of the pipeline (see :mod:`repro.store.stages`) identifies its
output by a **fingerprint**: a SHA-256 digest over a canonical JSON
rendering of everything the output depends on — the stage's configuration,
the fingerprints of its upstream artifacts, and a per-kind schema version.
Because the rendering is canonical (sorted keys, no whitespace, repr-exact
floats) and SHA-256 does not depend on ``PYTHONHASHSEED``, a fingerprint is
stable across processes, sessions and machines: the same inputs always
address the same artifact.

Schema versions exist so that *code* changes can invalidate stored
artifacts without any migration logic: bump the kind's entry in
:data:`SCHEMA_VERSIONS` and every previously stored artifact of that kind
simply stops matching.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

#: Per-artifact-kind schema versions.  Bump a kind when the semantics of
#: the stage that produces it (or the layout of the stored value) change in
#: a way that should invalidate previously stored artifacts.
SCHEMA_VERSIONS: dict[str, int] = {
    #: Mined content-file texts (list[str]).
    "mine": 1,
    #: A preprocessed :class:`repro.corpus.corpus.Corpus`.  v2: the compute
    #: now honors ``min_static_instructions`` (older stores may hold
    #: corpora filtered at the former hard-coded default under non-default
    #: keys — flush them).
    "corpus": 2,
    #: A trained-model checkpoint record (model ``to_dict`` + summary).
    "model": 1,
    #: A :class:`repro.synthesis.generator.SynthesisResult` kernel batch.
    #: v2: per-kernel independently-seeded sampling (``(sample_seed, index)``
    #: streams with a deterministic cross-stream dedup merge) replaced the
    #: single sequential RNG chain — every sampled kernel changed, so every
    #: v1 batch (and everything fingerprint-downstream of it) is invalid.
    "synthesis": 2,
    #: Benchmark-suite measurement sets (dict of suite -> measurements).
    #: v2: measurements pickle slim — the embedded compilation is dropped
    #: from the stored bytes and recompiled lazily (KernelMeasurement
    #: __getstate__), so v1 artifacts have a different layout.
    "suite-measurements": 2,
    #: Synthetic-kernel measurement lists.  v2: slim measurement pickling
    #: (see suite-measurements).
    "synthetic-measurements": 2,
    #: Per-file preprocessing outcomes (repro.preprocess.cache).  v2:
    #: FileOutcome vocabularies became sorted tuples (hash-seed-stable
    #: serialization for shared stores).
    "preprocess-file": 2,
    #: Per-repository-range mined texts (repro.store.shards).
    "mine-shard": 1,
    #: Per-repository-range preprocessing outcomes (list[FileOutcome]).
    "corpus-shard": 1,
    #: One sample fan-out shard: per-index kernel stream results.  v2: the
    #: sequential chain links (RNG state + dedup-set carry-over) became
    #: independently-seeded fan-out shards (lists of
    #: :class:`repro.synthesis.generator.KernelStreamResult`).
    "synthesis-shard": 2,
    #: Per-benchmark-range suite measurements.  v2: slim measurement
    #: pickling (see suite-measurements).
    "suite-measurements-shard": 2,
    #: Per-kernel-range synthetic measurements.  v2: slim measurement
    #: pickling (see suite-measurements).
    "synthetic-measurements-shard": 2,
    #: A published work-stealing pipeline plan (config + shard count) that
    #: ``repro worker`` instances discover and drain (repro.store.queue).
    "plan": 1,
}


def schema_version(kind: str) -> int:
    """The current schema version for *kind* (0 for unregistered kinds)."""
    return SCHEMA_VERSIONS.get(kind, 0)


def _canonical(value: Any) -> Any:
    """Normalize *value* into plain JSON types, rejecting anything unstable."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() round-trips doubles exactly; format through it so that the
        # JSON rendering cannot vary between json library versions.
        return {"~float": repr(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"fingerprint payload keys must be strings, got {key!r}")
            out[key] = _canonical(value[key])
        return out
    raise TypeError(f"unfingerprintable value of type {type(value).__name__}: {value!r}")


def fingerprint(kind: str, payload: Mapping[str, Any]) -> str:
    """The content-address of one artifact of *kind* with inputs *payload*.

    *payload* must consist of JSON-representable values (str/int/bool/float,
    lists/tuples, nested string-keyed mappings).  Upstream artifacts are
    referenced by including their fingerprint strings in the payload, which
    chains invalidation: any upstream change readdresses everything
    downstream of it.
    """
    document = {
        "kind": kind,
        "schema": schema_version(kind),
        "payload": _canonical(payload),
    }
    rendering = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()


def text_digest(*texts: str) -> str:
    """A digest over raw texts (used to fingerprint code-defined inputs
    such as the benchmark-suite kernel sources)."""
    digest = hashlib.sha256()
    for text in texts:
        digest.update(len(text).to_bytes(8, "little"))
        digest.update(text.encode("utf-8", "replace"))
    return digest.hexdigest()
