"""Sharding the stage graph: per-range shard stages plus deterministic merges.

The stage graph (:mod:`repro.store.stages`) resolves whole-pipeline
artifacts — the full mined corpus, the complete kernel batch, every
measurement.  This module splits the data-parallel stages into **shards**
so several workers (process-pool workers here, or whole machines pointing
at one ``REPRO_STORE_DIR``) can fill one store concurrently:

=============  =========================  ==================================
stage          shard axis                 shard artifact kind
=============  =========================  ==================================
``mine``       repository range           ``mine-shard``
``preprocess`` repository range           ``corpus-shard`` (file outcomes)
``sample``     kernel-stream range        ``synthesis-shard``
``execute``    benchmark / kernel range   ``suite-measurements-shard`` /
                                          ``synthetic-measurements-shard``
=============  =========================  ==================================

Each shard has its own fingerprint — the parent (whole-artifact)
fingerprint plus the shard index and extent — and a **merge** combines the
shard artifacts into the existing whole-pipeline artifact *bit-identically*
to an unsharded run, stored under the unsharded fingerprint.  A warm repeat
therefore serves the merged artifact directly; a partially warm store
serves the shards it has and recomputes only the missing ones.

Every shardable stage — including ``sample`` since the synthesis layer
moved to per-kernel independently-seeded streams
(:func:`repro.synthesis.sampler.stream_rng`) — is a **fan-out**: each shard
is a pure function of the pipeline configuration and its range, so ready
shards are dispatched to a process pool (``ShardPlan.workers``).  Results
are bit-identical to sequential resolution because each shard is
deterministic in isolation; the sample merge restores batch-level kernel
uniqueness with a deterministic cross-shard dedup
(:func:`repro.synthesis.generator.merge_stream_results`).

Concurrency model: the artifact store already tolerates concurrent writers
(atomic ``os.replace`` per entry), so shard workers never coordinate — they
race benignly, and whoever finishes a key last leaves the same bytes as
whoever finished first.  The merge is pure recombination (no RNG, no
wall-clock), so it is deterministic under any shard completion order.

On top of the benign races sits an opt-in **work-stealing scheduler**
(``ShardPlan.steal``, :mod:`repro.store.queue`): instead of each worker
computing a statically assigned range, pending shard keys are claimed by
atomic create in a claim directory beside the store, with lease timestamps
so a crashed worker's claim expires and is re-stealable.  Any number of
heterogeneous workers (including separate ``repro worker`` processes on
other machines) drain one plan; the merge fires in whichever worker claims
it once the last shard lands.  Stolen, pooled and unsharded runs all leave
byte-identical store entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.envutil import env_int

#: Artifact kinds introduced by sharding (registered in
#: :data:`repro.store.fingerprint.SCHEMA_VERSIONS`).
SHARD_KINDS = (
    "mine-shard",
    "corpus-shard",
    "synthesis-shard",
    "suite-measurements-shard",
    "synthetic-measurements-shard",
)


@dataclass(frozen=True)
class ShardPlan:
    """How a :class:`~repro.store.stages.PipelineRunner` splits stage work.

    ``shards`` is the number of ranges each shardable stage is split into
    (1 = the unsharded legacy path, byte-for-byte).  ``workers`` is the
    process-pool width for dispatching ready fan-out shards; 0 or 1 resolves
    shards in-process (still sharded, still incremental — just sequential).
    ``steal`` switches from static range assignment to the work-stealing
    claim queue (:mod:`repro.store.queue`): every stage resolution is
    claimed by atomic create before computing, so concurrent runners —
    pool workers, other processes, other machines — drain one plan without
    duplicating work or idling behind a straggler's static range.
    """

    shards: int = 1
    workers: int = 0
    steal: bool = False

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    @property
    def pooled(self) -> bool:
        """True when shard work can actually reach the worker pool.

        ``workers`` alone is not enough: with a single shard the pool is
        never created, so timings stay genuine wall-clock (the bench
        snapshot/perf-gate guards key off this, not off ``workers``).
        """
        return self.sharded and self.workers > 1


def normalized_plan(shards: int, workers: int, steal: bool = False) -> ShardPlan:
    """A :class:`ShardPlan` from loose knobs.

    Asking for workers without shards means "parallelize this": it implies
    one shard per worker, so ``--workers 8`` alone is not a silent no-op.
    """
    shards = max(shards, 1)
    workers = max(workers, 0)
    if shards == 1 and workers > 1:
        shards = workers
    return ShardPlan(shards=shards, workers=workers, steal=steal)


def resolve_plan(
    shards: int | None, workers: int | None, steal: bool | None = None
) -> ShardPlan:
    """Combine explicit knobs (``None`` = not given) with the environment.

    The single source of the precedence rules, shared by the CLI flags and
    ``REPRO_SHARDS``/``REPRO_WORKERS``: an explicit value always beats the
    environment, and the workers-imply-shards expansion fires only when no
    shard count was given anywhere — asking for 1 shard means 1 shard.
    """
    import os

    if shards is None and (os.environ.get("REPRO_SHARDS") or "").strip():
        # 0 doubles as the sentinel for "no usable value": an explicit
        # REPRO_SHARDS=0 and a malformed one (env_int's warned fallback)
        # both leave the count undecided, so workers may still imply it.
        parsed = env_int("REPRO_SHARDS", default=0, minimum=0)
        if parsed >= 1:
            shards = parsed
    if workers is None:
        workers = env_int("REPRO_WORKERS", default=0, minimum=0)
    if steal is None:
        from repro.envutil import env_flag

        steal = env_flag("REPRO_STEAL", default=False)
    if shards is None:
        return normalized_plan(1, workers, steal=steal)
    if shards < 1 or workers < 0:
        # As loud as the env knobs: a typo'd sign must not silently
        # sequentialize the run.
        import warnings

        warnings.warn(
            f"clamping shards={shards}/workers={workers} to the valid range",
            RuntimeWarning,
            stacklevel=3,
        )
    plan = ShardPlan(shards=max(shards, 1), workers=max(workers, 0), steal=steal)
    if plan.workers > 1 and not plan.pooled:
        import warnings

        warnings.warn(
            f"workers={plan.workers} has no effect with a single shard; "
            "raise the shard count (or drop it to let workers imply one)",
            RuntimeWarning,
            stacklevel=3,
        )
    return plan


def plan_from_env() -> ShardPlan:
    """The plan named by ``REPRO_SHARDS`` / ``REPRO_WORKERS`` (default: unsharded)."""
    return resolve_plan(None, None)


def shard_ranges(total: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most *shards* contiguous, non-empty,
    disjoint ranges covering it in order.

    Deterministic: the first ``total % shards`` ranges are one longer.
    Fewer than *shards* ranges come back when *total* is smaller.
    """
    if total <= 0:
        return []
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


# ---------------------------------------------------------------------------
# Shard fingerprints: parent fingerprint + shard index/extent.
# ---------------------------------------------------------------------------


def _shard_fingerprint(kind: str, parent: str, index: int, shards: int,
                       start: int, stop: int) -> str:
    from repro.store.fingerprint import fingerprint

    return fingerprint(
        kind,
        {"parent": parent, "index": index, "shards": shards,
         "start": start, "stop": stop},
    )


# ---------------------------------------------------------------------------
# Fan-out shard specs.  Each knows its total extent, per-shard key and
# per-shard compute; resolution goes through runner._stage so events,
# store probing and warm accounting are identical to whole stages.
# ---------------------------------------------------------------------------


class _FanoutSpec:
    """One shardable fan-out stage (mine / preprocess / execute sides)."""

    name: str  # registry key, also used to route pool workers
    stage: str  # StageEvent stage name (phase accounting)
    kind: str  # shard artifact kind

    def total(self, cfg) -> int:
        raise NotImplementedError

    def parent_fingerprint(self, cfg) -> str:
        raise NotImplementedError

    def key(self, cfg, index: int, shards: int) -> str:
        return self.keys(cfg, shards)[index]

    def keys(self, cfg, shards: int) -> list[str]:
        """All shard keys of this stage, computing the parent fingerprint
        and the ranges once (probing every shard re-uses one digest pass)."""
        parent = self.parent_fingerprint(cfg)
        return [
            _shard_fingerprint(self.kind, parent, index, shards, start, stop)
            for index, (start, stop) in enumerate(shard_ranges(self.total(cfg), shards))
        ]

    def compute(self, runner, cfg, index: int, shards: int):
        raise NotImplementedError

    def resolve(
        self,
        runner,
        cfg,
        index: int,
        shards: int,
        key: str | None = None,
        direct: bool = False,
    ):
        from repro.store.faults import shard_compute_faults

        def compute():
            # The canonical mid-shard injection points (die / poison /
            # stall) fire after the claim but before any real work — the
            # window a real worker failure actually occupies.
            shard_compute_faults(self.kind, index)
            return self.compute(runner, cfg, index, shards)

        # direct=True skips the runner's claim-or-await wrapper: the
        # steal-mode drain loop claims shard keys itself before resolving.
        return runner._stage(
            self.stage,
            self.kind,
            key if key is not None else self.key(cfg, index, shards),
            compute,
            direct=direct,
        )

    def _range(self, cfg, index: int, shards: int) -> tuple[int, int]:
        return shard_ranges(self.total(cfg), shards)[index]


class _MineSpec(_FanoutSpec):
    name = "mine"
    stage = "mine"
    kind = "mine-shard"

    def total(self, cfg) -> int:
        return cfg.repository_count

    def parent_fingerprint(self, cfg) -> str:
        from repro.store import stages

        return stages.mine_fingerprint(cfg)

    def compute(self, runner, cfg, index: int, shards: int) -> list[str]:
        from repro.corpus.github import GitHubMiner

        start, stop = self._range(cfg, index, shards)
        mining = GitHubMiner(seed=cfg.seed).mine(stop, start=start)
        return [content_file.text for content_file in mining.content_files]


class _CorpusSpec(_FanoutSpec):
    """Per-repository-range preprocessing: the shard artifact is the list of
    per-file outcomes (the preprocessing pipeline's unit of work), so the
    merge can fold statistics exactly as an unsharded run does."""

    name = "corpus"
    stage = "preprocess"
    kind = "corpus-shard"

    def total(self, cfg) -> int:
        return cfg.repository_count

    def parent_fingerprint(self, cfg) -> str:
        from repro.store import stages

        return stages.corpus_fingerprint(cfg)

    def compute(self, runner, cfg, index: int, shards: int):
        from repro.preprocess.pipeline import PreprocessingPipeline
        from repro.store.stages import detached

        texts = _MINE.resolve(runner, cfg, index, shards)
        pipeline = PreprocessingPipeline(
            use_shim=cfg.use_shim,
            rename_identifiers=cfg.rename_identifiers,
            min_static_instructions=cfg.min_static_instructions,
            jobs=cfg.preprocess_jobs,
        )
        # Detached per outcome: a cold run shares one FileOutcome between
        # duplicate (forked) files while per-file-cache hits yield distinct
        # objects — detaching makes the shard's bytes independent of cache
        # state, like the execute/sample shard artifacts.
        return [detached(outcome) for outcome in pipeline.outcomes(texts)]


class _SuiteExecutionSpec(_FanoutSpec):
    name = "suite-exec"
    stage = "execute"
    kind = "suite-measurements-shard"

    def total(self, cfg) -> int:
        return len(self._flat_benchmarks(cfg))

    def parent_fingerprint(self, cfg) -> str:
        from repro.store import stages

        return stages.suite_execution_fingerprint(cfg)

    @staticmethod
    def _flat_benchmarks(cfg):
        from repro.store.stages import _selected_suites

        return [
            (suite.name, benchmark)
            for suite in _selected_suites(cfg)
            for benchmark in suite.benchmarks
        ]

    def compute(self, runner, cfg, index: int, shards: int):
        from repro.store.stages import detached

        start, stop = self._range(cfg, index, shards)
        driver = runner._make_driver(cfg)
        return [
            (suite_name, benchmark.qualified_name, detached(driver.measure_benchmark(benchmark)))
            for suite_name, benchmark in self._flat_benchmarks(cfg)[start:stop]
        ]


class _SyntheticExecutionSpec(_FanoutSpec):
    name = "synth-exec"
    stage = "execute"
    kind = "synthetic-measurements-shard"

    def total(self, cfg) -> int:
        return cfg.synthetic_kernel_count

    def parent_fingerprint(self, cfg) -> str:
        from repro.store import stages

        return stages.synthetic_execution_fingerprint(cfg)

    def compute(self, runner, cfg, index: int, shards: int):
        # Ranges are over the *generated* kernel list (which may fall short
        # of the requested count on sampler exhaustion); a shard past the
        # end measures nothing.  Names and dataset scales use the global
        # kernel index, exactly like the unsharded execute stage.
        synthesis = runner.synthesis(cfg)
        ranges = shard_ranges(len(synthesis.kernels), shards)
        if index >= len(ranges):
            return []
        start, stop = ranges[index]
        driver = runner._make_driver(cfg)
        scales = cfg.dataset_scales
        measured = driver.measure_many(
            [kernel.source for kernel in synthesis.kernels[start:stop]],
            names=[f"clgen.{position}" for position in range(start, stop)],
            dataset_scales=[
                scales[position % len(scales)] for position in range(start, stop)
            ],
        )
        from repro.store.stages import detached

        return [detached(measurement) for measurement in measured]


class _SampleSpec(_FanoutSpec):
    """Per-kernel-stream-range synthesis shards.

    Since the synthesis layer moved to independently-seeded
    ``(sample_seed, index)`` streams, a sample shard is a pure function of
    the configuration and its index range — exactly like an execute shard —
    and the old sequential chain (RNG state + dedup set threaded link to
    link) is gone.  The shard artifact is the list of per-stream
    :class:`~repro.synthesis.generator.KernelStreamResult` entries; the
    merge restores batch-level uniqueness deterministically.
    """

    name = "sample"
    stage = "sample"
    kind = "synthesis-shard"

    def total(self, cfg) -> int:
        return cfg.synthetic_kernel_count

    def parent_fingerprint(self, cfg) -> str:
        from repro.store import stages

        return stages.synthesis_fingerprint(cfg)

    def compute(self, runner, cfg, index: int, shards: int):
        from repro.store.stages import detached

        start, stop = self._range(cfg, index, shards)
        synthesizer = runner.clgen(cfg)
        entries = synthesizer.generate_kernel_range(
            start,
            stop,
            seed=cfg.sample_seed,
            max_attempts_per_kernel=cfg.max_attempts_per_kernel,
        )
        # Detached per stream entry so the shard's bytes are independent of
        # in-process object sharing, like every other shard artifact.
        return [detached(entry) for entry in entries]


_MINE = _MineSpec()
_CORPUS = _CorpusSpec()
_SAMPLE = _SampleSpec()
_SUITE_EXEC = _SuiteExecutionSpec()
_SYNTH_EXEC = _SyntheticExecutionSpec()

_SPECS = {
    spec.name: spec for spec in (_MINE, _CORPUS, _SAMPLE, _SUITE_EXEC, _SYNTH_EXEC)
}


def sharded_synthesis(runner, cfg):
    """Resolve the ``sample`` stage by kernel-stream-range shards and merge."""
    from repro.errors import SynthesisError
    from repro.store import stages
    from repro.synthesis.generator import merge_stream_results

    if cfg.synthetic_kernel_count <= 0:
        # Same contract as the unsharded generate_kernels.
        raise SynthesisError("kernel count must be positive")

    def merge():
        # Resolve the synthesizer in the parent before fanning out, so pool
        # workers (whose shard computes rebuild it from the store) hit the
        # model/corpus artifacts instead of each re-training privately.
        runner.clgen(cfg)
        shard_values = _resolve_fanout(runner, cfg, _SAMPLE)
        entries = [entry for value in shard_values for entry in value]
        return merge_stream_results(entries, requested=cfg.synthetic_kernel_count)

    def drain():
        runner.clgen(cfg)
        _resolve_fanout(runner, cfg, _SAMPLE)

    return _merged(
        runner, "sample", "synthesis", stages.synthesis_fingerprint(cfg), merge,
        drain=drain,
    )


# ---------------------------------------------------------------------------
# Fan-out resolution (with the process pool) and merges.
# ---------------------------------------------------------------------------


def _neutralized_worker_config(cfg):
    """Strip nested-parallelism knobs for a pool worker process.

    The shard pool *is* the parallelism: neutralize the nested pool knobs
    (env and config-carried alike) so N shard workers do not each spawn
    their own measure/preprocess pools and thrash the host with N*M
    processes.  Results are identical with or without those pools by
    their own contracts, and preprocess_jobs is deliberately
    un-fingerprinted, so no store key changes.
    """
    import dataclasses
    import os

    os.environ["REPRO_MEASURE_WORKERS"] = "0"
    os.environ["REPRO_PREPROCESS_JOBS"] = "1"
    os.environ["REPRO_WORKERS"] = "0"
    return dataclasses.replace(cfg, preprocess_jobs=1)


def _shard_worker(task):
    """Process-pool entry point: resolve one fan-out shard on a fresh runner.

    The worker's runner points at the same on-disk store (when one is
    configured), so its artifact lands there directly; the value and the
    worker's stage events ride back so the parent can warm its own memory
    layer and keep honest hit/miss accounting.
    """
    cache_dir, cfg, spec_name, index, shards = task
    from repro.store.artifact_store import resolve_store
    from repro.store.stages import PipelineRunner

    cfg = _neutralized_worker_config(cfg)
    # resolve_store, not a fresh ArtifactStore: a pool worker handling
    # several shard tasks then shares one memory layer across them (e.g.
    # the merged kernel batch deserializes once per worker, not per task).
    runner = PipelineRunner(store=resolve_store(cache_dir), shards=shards, workers=0)
    value = _SPECS[spec_name].resolve(runner, cfg, index, shards)
    return index, value, runner.events


def _drain_worker(task):
    """Process-pool entry point for steal mode: drain one spec's queue.

    Unlike :func:`_shard_worker` there is no assigned index — the worker
    claims whatever shards of *spec* are still unclaimed, computes them,
    and returns when the spec's shards all exist in the store (its own or
    other workers').  Heterogeneous workers therefore finish together
    instead of idling behind a straggler's static range.
    """
    cache_dir, cfg, spec_name, shards, lease_seconds = task
    from repro.store.artifact_store import resolve_store
    from repro.store.stages import PipelineRunner

    cfg = _neutralized_worker_config(cfg)
    runner = PipelineRunner(
        store=resolve_store(cache_dir),
        plan=ShardPlan(shards=shards, workers=0, steal=True),
        lease_seconds=lease_seconds,
    )
    _drain_fanout(runner, cfg, _SPECS[spec_name])
    return runner.events


def _resolve_fanout(runner, cfg, spec: _FanoutSpec) -> list:
    """All shard values of *spec*, in shard order.

    Warm shards are served (and logged as hits) from the parent's store;
    the remaining cold shards are computed — through a process pool when the
    plan asks for one and more than one shard is pending, in-process
    otherwise.  Pool failures (unpicklable values, no multiprocessing
    support) degrade to in-process computation with a warning.

    In steal mode the static split of pending work is replaced by the claim
    queue: see :func:`_drain_fanout`.
    """
    if runner.stealing:
        return _drain_fanout(runner, cfg, spec)
    shards = runner.plan.shards
    keys = spec.keys(cfg, shards)
    values: list = [None] * len(keys)
    pending: list[int] = []
    for index, key in enumerate(keys):
        started = time.perf_counter()
        value = runner.store.get(spec.kind, key)
        if value is not None:
            runner._record_event(spec.stage, key, True, time.perf_counter() - started)
            values[index] = value
        else:
            pending.append(index)

    if len(pending) > 1 and runner.plan.pooled:
        # (A memory-only store never reaches here: PipelineRunner
        # construction degrades such plans to workers=0 with one warning.)
        import warnings

        try:
            _resolve_fanout_pool(runner, cfg, spec, pending, values)
        except _PoolUnavailable as error:
            # Only genuine pool-machinery failures (worker crashes,
            # unpicklable payloads, no multiprocessing support) degrade
            # to in-process resolution; a deterministic error raised
            # *inside* a shard's compute propagates as-is — recomputing
            # it would just repeat the work and the exception.
            warnings.warn(
                f"shard worker pool unavailable ({error}); resolving shards in-process",
                RuntimeWarning,
                stacklevel=2,
            )
        # Outside the try: shards that landed before a mid-batch pool
        # failure are kept, so the in-process fallback only computes
        # what is actually still missing.
        pending = [index for index in pending if values[index] is None]
    for index in pending:
        values[index] = spec.resolve(runner, cfg, index, shards, key=keys[index])
    return values


class _PoolUnavailable(RuntimeError):
    """The shard worker pool itself failed (not a shard's computation)."""


def _resolve_fanout_pool(runner, cfg, spec, pending: list[int], values: list) -> None:
    """Fan *pending* shard indices out over a process pool.

    Only called for disk-backed stores (the caller refuses otherwise), so
    every worker persists its shard into the shared directory itself; the
    value rides back purely for the parent's merge.

    Failure classification matters here: pool-machinery problems (no
    multiprocessing support, unpicklable payloads, a hard worker crash)
    raise :class:`_PoolUnavailable` so the caller can degrade to in-process
    resolution, while a deterministic exception raised *inside* a shard's
    compute propagates unchanged — re-running it locally would only repeat
    the work and then the same error.
    """
    import pickle as pickle_mod
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed

    cache_dir = str(runner.store.directory)
    try:
        pool = ProcessPoolExecutor(max_workers=min(runner.plan.workers, len(pending)))
    except (ImportError, OSError, ValueError) as error:
        raise _PoolUnavailable(f"cannot start pool: {error!r}") from error
    with pool:
        try:
            futures = {
                pool.submit(
                    _shard_worker, (cache_dir, cfg, spec.name, index, runner.plan.shards)
                ): index
                for index in pending
            }
        except (pickle_mod.PicklingError, AttributeError, TypeError) as error:
            raise _PoolUnavailable(f"cannot ship shard task: {error!r}") from error
        for future in as_completed(futures):
            try:
                index, value, events = future.result()
            except (BrokenExecutor, pickle_mod.PicklingError) as error:
                raise _PoolUnavailable(f"worker failed: {error!r}") from error
            values[index] = value
            # Replay the worker's stage events (its own hits/misses plus any
            # upstream stages it resolved) so phase accounting and the
            # warm-phase guard see exactly what happened.  With a pool these
            # seconds are aggregate worker time, not wall-clock.
            for event in events:
                runner._record_event(event.stage, event.fingerprint, event.hit, event.seconds)


def _drain_fanout(runner, cfg, spec: _FanoutSpec) -> list:
    """Steal-mode resolution of *spec*: claim, compute, or await each shard.

    Every participating runner (this one, its pooled drain workers, and any
    ``repro worker`` process pointed at the same store) runs this same
    loop: probe each missing shard, claim one and compute it, and poll for
    the shards other workers hold claims on.  The loop ends when every
    shard exists — nobody idles while *any* shard is still unclaimed, and a
    crashed worker's claim expires (lease) and is stolen.

    With ``workers > 1`` the loop is preceded by a best-effort pool of
    :func:`_drain_worker` processes draining the same queue; the parent
    loop afterwards collects the values (and computes any stragglers
    itself), so pool failures degrade seamlessly.

    Failure semantics: a shard compute that raises charges the shard's
    retry budget (:meth:`~repro.store.queue.ShardQueue.record_failure`) and
    the sweep moves on — this worker or another re-claims it until the
    budget runs out and the shard is quarantined, at which point every
    claimer *and* every waiter raises :class:`~repro.errors.PlanFailed`
    naming the poison shard.  A worker death (simulated or real) leaves its
    claim held; the lease-expiry steal charges the budget instead.
    """
    from repro.errors import PlanFailed
    from repro.store.faults import fault_point

    shards = runner.plan.shards
    keys = spec.keys(cfg, shards)
    values: list = [None] * len(keys)
    pending = set(range(len(keys)))

    def sweep(claim: bool) -> bool:
        progressed = False
        queue = runner.queue()
        # Priority classes first (the serve layer's per-plan priority rides
        # on the runner), then the worker-id-hashed rotation within each
        # class: wide fan-outs would otherwise have every worker contend
        # for the same first pending shard, lose, and shift by one —
        # O(workers) wasted claim attempts per shard.
        order = queue.sweep_order(
            sorted(pending), {index: runner.priority for index in pending}
        )
        for index in order:
            started = time.perf_counter()
            value = runner.store.get(spec.kind, keys[index])
            if value is not None:
                runner._record_event(
                    spec.stage, keys[index], True, time.perf_counter() - started
                )
                values[index] = value
                pending.discard(index)
                progressed = True
                continue
            queue.raise_if_failed(keys[index])
            if claim and queue.try_claim(keys[index]):
                fault_point("crash_after_claim", kind=spec.kind, shard=index)
                try:
                    with queue.heartbeat(keys[index]):
                        values[index] = spec.resolve(
                            runner, cfg, index, shards, key=keys[index], direct=True
                        )
                except PlanFailed:
                    queue.release(keys[index])
                    raise
                except Exception as error:
                    quarantined = queue.record_failure(keys[index], error)
                    queue.release(keys[index])
                    if quarantined:
                        raise PlanFailed(keys[index], queue.failure(keys[index])) from error
                    progressed = True  # an attempt was consumed; retry now
                    continue
                queue.complete(keys[index])
                pending.discard(index)
                progressed = True
        return progressed

    # Probe-only sweep first: warm shards come straight from the store, and
    # the pool (when asked for) should get the cold work, not the parent.
    sweep(claim=False)
    if len(pending) > 1 and runner.plan.pooled:
        import warnings

        try:
            _drain_fanout_pool(runner, cfg, spec, len(pending))
        except _PoolUnavailable as error:
            warnings.warn(
                f"drain worker pool unavailable ({error}); draining in-process",
                RuntimeWarning,
                stacklevel=2,
            )
    while pending:
        if not sweep(claim=True) and pending:
            time.sleep(runner.queue().poll_seconds)
    return values


def _drain_fanout_pool(runner, cfg, spec, pending_count: int) -> None:
    """Fan steal-mode drain workers out over a process pool.

    Each worker drains the spec's claim queue until every shard exists;
    their stage events are replayed into the parent for honest accounting
    (a shard computed by a pool worker replays as a miss, so the parent's
    subsequent collection hit reads as structural, not warm).  Failure
    classification mirrors :func:`_resolve_fanout_pool`.
    """
    import pickle as pickle_mod
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed

    cache_dir = str(runner.store.directory)
    lease = runner.queue().lease_seconds
    try:
        pool = ProcessPoolExecutor(
            max_workers=min(runner.plan.workers, pending_count)
        )
    except (ImportError, OSError, ValueError) as error:
        raise _PoolUnavailable(f"cannot start pool: {error!r}") from error
    with pool:
        try:
            futures = [
                pool.submit(
                    _drain_worker, (cache_dir, cfg, spec.name, runner.plan.shards, lease)
                )
                for _ in range(min(runner.plan.workers, pending_count))
            ]
        except (pickle_mod.PicklingError, AttributeError, TypeError) as error:
            raise _PoolUnavailable(f"cannot ship drain task: {error!r}") from error
        for future in as_completed(futures):
            try:
                events = future.result()
            except (BrokenExecutor, pickle_mod.PicklingError) as error:
                raise _PoolUnavailable(f"worker failed: {error!r}") from error
            for event in events:
                runner._record_event(event.stage, event.fingerprint, event.hit, event.seconds)


def _merged(runner, stage: str, kind: str, key: str, combine, drain=None):
    """Serve the whole-pipeline artifact, or merge its shards into it.

    The merged artifact is stored under the **unsharded** fingerprint, so
    sharded and unsharded runs address (and share) the same whole-pipeline
    entries, and a warm repeat serves the merge without touching shards.
    Resolution (probe, events, exclusive-seconds accounting) is the
    ordinary stage machinery.

    In steal mode, *drain* (the stage's shard fan-out) runs **before** the
    merge claim is contested: every worker helps drain the shard queue, and
    only then does exactly one of them claim the (cheap, pure-recombination)
    merge while the rest await its store entry.  Without the pre-drain, the
    merge claim's single winner would resolve every shard alone while the
    other workers idled — the exact straggler pattern this scheduler
    replaces.
    """
    from repro.store.faults import fault_point

    if drain is not None and runner.stealing and not runner.has_entry(kind, key):
        drain()

    def combine_with_faults():
        value = combine()
        # The narrowest crash window in the protocol: every shard landed,
        # the merge is computed, and its put has not happened yet.  A death
        # here must leave a steal-back winner that re-runs the merge to a
        # byte-identical whole-pipeline entry.
        fault_point("crash_pre_merge", kind=kind)
        return value

    return runner._stage(stage, kind, key, combine_with_faults)


def sharded_mine(runner, cfg) -> list[str]:
    """Resolve the ``mine`` stage by repository-range shards and merge."""
    from repro.store import stages

    def merge() -> list[str]:
        shard_values = _resolve_fanout(runner, cfg, _MINE)
        return [text for value in shard_values for text in value]

    return _merged(
        runner,
        "mine",
        "mine",
        stages.mine_fingerprint(cfg),
        merge,
        drain=lambda: _resolve_fanout(runner, cfg, _MINE),
    )


def sharded_corpus(runner, cfg):
    """Resolve the ``preprocess`` stage by repository-range shards and merge.

    The merge folds the concatenated per-file outcomes with the same fold an
    unsharded preprocessing run uses, then deduplicates — bit-identical to
    ``Corpus.from_content_files`` over the whole mined text list.
    """
    from repro.corpus.corpus import Corpus
    from repro.preprocess.pipeline import fold_outcomes
    from repro.store import stages

    def merge() -> Corpus:
        shard_values = _resolve_fanout(runner, cfg, _CORPUS)
        outcomes = [outcome for value in shard_values for outcome in value]
        result = fold_outcomes(outcomes)
        return Corpus(
            kernels=Corpus._deduplicate(result.corpus_texts),
            statistics=result.statistics,
        )

    return _merged(
        runner,
        "preprocess",
        "corpus",
        stages.corpus_fingerprint(cfg),
        merge,
        drain=lambda: _resolve_fanout(runner, cfg, _CORPUS),
    )


def sharded_suite_measurements(runner, cfg):
    """Resolve the suite side of ``execute`` by benchmark-range shards."""
    from repro.store import stages
    from repro.store.stages import SuiteMeasurementSet, _selected_suites

    def merge() -> SuiteMeasurementSet:
        shard_values = _resolve_fanout(runner, cfg, _SUITE_EXEC)
        flat = [entry for value in shard_values for entry in value]
        by_benchmark = {name: measurements for _, name, measurements in flat}
        out = SuiteMeasurementSet()
        # Rebuild in suite/benchmark declaration order so dict insertion
        # orders match the unsharded compute exactly (bit-identity).
        for suite in _selected_suites(cfg):
            suite_measurements = []
            for benchmark in suite.benchmarks:
                measurements = by_benchmark.get(benchmark.qualified_name, [])
                if measurements:
                    out.benchmark_measurements[benchmark.qualified_name] = measurements
                    suite_measurements.extend(measurements)
            out.suite_measurements[suite.name] = suite_measurements
        return out

    return _merged(
        runner,
        "execute",
        "suite-measurements",
        stages.suite_execution_fingerprint(cfg),
        merge,
        drain=lambda: _resolve_fanout(runner, cfg, _SUITE_EXEC),
    )


def sharded_synthetic_measurements(runner, cfg):
    """Resolve the synthetic side of ``execute`` by kernel-range shards."""
    from repro.errors import SynthesisError
    from repro.store import stages

    if cfg.synthetic_kernel_count <= 0:
        # The unsharded path raises from inside its synthesis resolution;
        # with zero shards that resolution would never run, and a config
        # error must not be swallowed into an empty cached artifact.
        raise SynthesisError("kernel count must be positive")

    def merge():
        # Resolve the sample chain in the parent before fanning out: it
        # lands in the shared store, so pool workers (whose shard computes
        # re-resolve it for the kernel list) hit instead of each racing to
        # recompute the whole sequential chain.
        runner.synthesis(cfg)
        shard_values = _resolve_fanout(runner, cfg, _SYNTH_EXEC)
        return [measurement for value in shard_values for measurement in value]

    def drain():
        runner.synthesis(cfg)
        _resolve_fanout(runner, cfg, _SYNTH_EXEC)

    return _merged(
        runner,
        "execute",
        "synthetic-measurements",
        stages.synthetic_execution_fingerprint(cfg),
        merge,
        drain=drain,
    )
