"""The content-addressed artifact store.

Generalizes the design proven by the per-file preprocessing cache
(:mod:`repro.preprocess.cache`) into a store any pipeline stage can use:

* artifacts are addressed by ``(kind, key)`` where *key* is a
  :func:`repro.store.fingerprint.fingerprint` over the artifact's inputs;
* an **in-process LRU** sits in front, holding the *serialized* bytes of
  recently used artifacts — every hit deserializes a fresh copy, so cached
  artifacts can never be corrupted by a consumer mutating its result;
* an optional **sharded on-disk layer** (``<dir>/<kind>/<key[:2]>/<key>.pkl``,
  one pickle per entry, atomically replaced) makes artifacts survive across
  processes and sessions;
* disk entries embed the kind and its schema version; unreadable, truncated
  or stale entries read as misses, and the recompute's ``put`` atomically
  overwrites the slot — readers never delete (an unlink could race a
  concurrent writer's ``os.replace`` and destroy a fresh valid entry), so a
  damaged store heals itself by recomputation.

Writers never block readers: entries are written to a pid-suffixed
temporary file and ``os.replace``d into place, so concurrent writers
(threads or processes) racing on the same key all leave a complete entry
behind.
"""

from __future__ import annotations

import os
import pickle
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.envutil import env_directory, env_int, env_size
from repro.store.faults import fault_point
from repro.store.fingerprint import schema_version

#: Transient-I/O retry budget for one store/queue operation (put, get,
#: claim create).  Retries absorb the blips a shared store over a network
#: filesystem actually produces — ESTALE, EIO under load, EBUSY — without
#: masking hard failures for long.
DEFAULT_IO_RETRIES = 5


def default_io_retries() -> int:
    """The retry budget from ``REPRO_STORE_RETRIES``, hardened (0 = no retries)."""
    return env_int("REPRO_STORE_RETRIES", default=DEFAULT_IO_RETRIES, minimum=0)


#: Deliberately unseeded: jitter exists to decorrelate *workers*, so two
#: workers sharing code (and any seed) must still back off differently.
_JITTER_RNG = random.Random()

#: OSErrors that describe the *request*, not the medium — retrying them
#: can only repeat the same answer slower.
_NON_TRANSIENT_OS_ERRORS = (
    FileNotFoundError,
    FileExistsError,
    IsADirectoryError,
    NotADirectoryError,
)


def retry_io(operation, retries: int | None = None, base: float = 0.005,
             cap: float = 0.25, rng: random.Random | None = None):
    """Run *operation*, retrying transient :class:`OSError` with capped
    exponential backoff plus jitter.

    Non-transient errors (missing file, existing file, directory-shape
    mismatches) propagate immediately — a reader treating ENOENT as
    retry-worthy would turn every ordinary cache miss into a backoff
    stall.  The final failure propagates unchanged so callers keep their
    existing best-effort/except-OSError semantics.
    """
    retries = default_io_retries() if retries is None else retries
    rng = _JITTER_RNG if rng is None else rng
    attempt = 0
    while True:
        try:
            return operation()
        except _NON_TRANSIENT_OS_ERRORS:
            raise
        except OSError:
            if attempt >= retries:
                raise
            delay = min(cap, base * (2 ** attempt))
            # Full jitter in [delay/2, delay): synchronized workers that
            # failed together must not retry together.
            time.sleep(delay * (0.5 + 0.5 * rng.random()))
            attempt += 1


def default_store_directory() -> str | None:
    """The on-disk store location from the environment, if configured.

    A ``REPRO_STORE_DIR`` that exists but is not a directory is ignored
    with a warning (every write would fail against it otherwise).
    """
    return env_directory("REPRO_STORE_DIR")


@dataclass
class StoreStats:
    """Size accounting for one store (``repro store stats``)."""

    entries: int = 0
    bytes: int = 0
    #: Per-artifact-kind breakdown: ``{kind: {"entries": n, "bytes": b}}``.
    kinds: dict[str, dict[str, int]] = field(default_factory=dict)
    memory_entries: int = 0


@dataclass
class GCResult:
    """What one :meth:`ArtifactStore.gc` pass removed and what remains."""

    removed_entries: int = 0
    removed_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0


def default_store_max_bytes() -> int | None:
    """The auto-gc watermark from ``REPRO_STORE_MAX_BYTES``, if configured.

    Size suffixes are accepted (``500M``, ``2G``, ...); malformed values
    warn and read as "no watermark" rather than either crashing a pipeline
    or silently evicting a shared store.
    """
    return env_size("REPRO_STORE_MAX_BYTES")


class ArtifactStore:
    """A content-addressed artifact store with an LRU front and disk behind."""

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        memory_entries: int = 32,
        max_bytes: int | None = None,
    ):
        self._directory = Path(directory) if directory else None
        self._memory: OrderedDict[tuple[str, str], bytes] = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        #: Auto-gc watermark: after a put pushes the disk layer past this
        #: many bytes, a gc pass with the standard age/least-recently-written
        #: policy trims it back — long-lived shared stores stay bounded
        #: without an operator.  ``None`` (and no env default) disables it.
        self._max_bytes = max_bytes if max_bytes is not None else default_store_max_bytes()
        #: Bytes written since the last watermark check; the check scans the
        #: directory, so it only runs once enough new data accumulated to
        #: plausibly cross the watermark (<= ~12.5% overshoot between scans).
        self._written_since_gc = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def directory(self) -> Path | None:
        return self._directory

    def counts(self, kind: str) -> dict[str, int]:
        """``{"hit": n, "miss": m}`` for one artifact kind."""
        with self._lock:
            return {"hit": self._hits.get(kind, 0), "miss": self._misses.get(kind, 0)}

    def entry_path(self, kind: str, key: str) -> Path | None:
        """Where the disk entry for ``(kind, key)`` lives (None if memory-only)."""
        if self._directory is None:
            return None
        return self._directory / kind / key[:2] / f"{key}.pkl"

    def memory_size(self) -> int:
        with self._lock:
            return len(self._memory)

    def keys(self, kind: str) -> list[str]:
        """All on-disk keys of *kind*, sorted (used by ``repro worker`` to
        enumerate published plans; the memory layer is a strict subset)."""
        if self._directory is None:
            return []
        kind_dir = self._directory / kind
        if not kind_dir.is_dir():
            return []
        return sorted(path.stem for path in kind_dir.glob("*/*.pkl"))

    def _disk_entries(self) -> list[tuple[Path, str, int, float]]:
        """All on-disk entries as ``(path, kind, bytes, mtime)``.

        Entries that vanish mid-scan (a concurrent gc or writer) are
        skipped; in-flight ``.tmp.`` files are not entries.
        """
        if self._directory is None or not self._directory.is_dir():
            return []
        entries: list[tuple[Path, str, int, float]] = []
        for kind_dir in sorted(self._directory.iterdir()):
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.pkl")):
                try:
                    status = path.stat()
                except OSError:
                    continue
                entries.append((path, kind_dir.name, status.st_size, status.st_mtime))
        return entries

    def stats(self) -> StoreStats:
        """Entry count, total bytes and per-kind breakdown of the disk layer."""
        out = StoreStats(memory_entries=self.memory_size())
        for _, kind, size, _ in self._disk_entries():
            out.entries += 1
            out.bytes += size
            bucket = out.kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return out

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
        now: float | None = None,
    ) -> GCResult:
        """Bound the disk layer: drop entries older than *max_age_seconds*,
        then the least-recently-written until at most *max_bytes* remain.

        Safe against concurrent workers: removal is a plain unlink of a
        complete entry, a racing writer's ``os.replace`` simply recreates
        the key, and readers treat a vanished file as a miss that heals by
        recomputation.  Stale ``.tmp.`` spill files from crashed writers
        are swept too.  The in-process memory layer is left alone — its
        entries are content-addressed copies that stay valid regardless of
        what is on disk.
        """
        now = time.time() if now is None else now
        result = GCResult()
        entries = self._disk_entries()

        survivors: list[tuple[Path, str, int, float]] = []
        for entry in entries:
            path, _, size, mtime = entry
            if max_age_seconds is not None and now - mtime > max_age_seconds:
                if self._remove_entry(path):
                    result.removed_entries += 1
                    result.removed_bytes += size
                    continue
            survivors.append(entry)

        if max_bytes is not None:
            total = sum(size for _, _, size, _ in survivors)
            evicted: set[Path] = set()
            for entry in sorted(survivors, key=lambda entry: entry[3]):
                if total <= max_bytes:
                    break
                path, _, size, _ = entry
                if self._remove_entry(path):
                    result.removed_entries += 1
                    result.removed_bytes += size
                    total -= size
                    evicted.add(path)
            if evicted:
                survivors = [entry for entry in survivors if entry[0] not in evicted]

        self._sweep_stale_temp_files(now)
        result.remaining_entries = len(survivors)
        result.remaining_bytes = sum(size for _, _, size, _ in survivors)
        return result

    @staticmethod
    def _remove_entry(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    #: A writer's temp file older than this is a crash leftover, not a
    #: write in flight.
    _TEMP_FILE_TTL_SECONDS = 3600.0

    def _sweep_stale_temp_files(self, now: float) -> None:
        if self._directory is None or not self._directory.is_dir():
            return
        for path in self._directory.glob("*/*/*.tmp.*"):
            try:
                if now - path.stat().st_mtime > self._TEMP_FILE_TTL_SECONDS:
                    path.unlink()
            except OSError:
                continue

    # ------------------------------------------------------------------
    # Read / write.
    # ------------------------------------------------------------------

    def get(self, kind: str, key: str):
        """The stored artifact for ``(kind, key)``, or ``None``.

        Every hit returns a freshly deserialized copy, never a shared
        reference.
        """
        token = (kind, key)
        with self._lock:
            serialized = self._memory.get(token)
            if serialized is not None:
                self._memory.move_to_end(token)
        if serialized is not None:
            value = self._deserialize(kind, serialized)
            with self._lock:
                if value is None:
                    self._misses[kind] = self._misses.get(kind, 0) + 1
                else:
                    self._hits[kind] = self._hits.get(kind, 0) + 1
            return value
        loaded = self._read_disk(kind, key)
        if loaded is None:
            with self._lock:
                self._misses[kind] = self._misses.get(kind, 0) + 1
            return None
        serialized, value = loaded
        with self._lock:
            self._remember(token, serialized)
            self._hits[kind] = self._hits.get(kind, 0) + 1
        return value

    def put(self, kind: str, key: str, value) -> None:
        """Store *value* under ``(kind, key)`` in memory and (if configured) disk.

        Best-effort: an artifact that cannot be serialized is simply not
        cached — the pipeline must never fail over caching.
        """
        try:
            serialized = pickle.dumps(
                (kind, schema_version(kind), value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            return
        with self._lock:
            self._remember((kind, key), serialized)
        self._write_disk(kind, key, serialized)
        self._maybe_auto_gc(len(serialized))

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries are untouched)."""
        with self._lock:
            self._memory.clear()

    def reset_counts(self) -> None:
        with self._lock:
            self._hits.clear()
            self._misses.clear()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _remember(self, token: tuple[str, str], serialized: bytes) -> None:
        if self._memory_entries <= 0:
            return
        self._memory[token] = serialized
        self._memory.move_to_end(token)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    def _deserialize(self, kind: str, serialized: bytes):
        """Decode one entry, validating kind and schema version."""
        try:
            stored_kind, stored_schema, value = pickle.loads(serialized)
        except Exception:
            return None
        if stored_kind != kind or stored_schema != schema_version(kind):
            return None
        return value

    def _read_disk(self, kind: str, key: str) -> tuple[bytes, object] | None:
        """Read one disk entry, returning ``(serialized, value)`` or ``None``.

        Truncated/corrupt/stale entries read as misses; the recompute's
        ``put`` then atomically overwrites the slot, which is how a damaged
        store heals.  (Deliberately no reader-side unlink: between this read
        and an unlink another process may have ``os.replace``d a fresh valid
        entry, and deleting it would break the concurrent-writer guarantee.)
        The decoded value rides along so a disk hit costs a single
        deserialization.
        """
        path = self.entry_path(kind, key)
        if path is None:
            return None

        def read() -> bytes:
            fault_point("io_error", op="get", kind=kind)
            return path.read_bytes()

        try:
            serialized = retry_io(read)
        except OSError:
            return None
        value = self._deserialize(kind, serialized)
        if value is None:
            return None
        return serialized, value

    def _maybe_auto_gc(self, written: int) -> None:
        """Enforce the ``max_bytes`` watermark after a disk write.

        Throttled by write volume: the directory scan runs only once the
        bytes written since the previous check reach an eighth of the
        watermark, so steady-state overshoot is bounded without paying a
        scan per put.  Eviction reuses :meth:`gc`'s least-recently-written
        policy, which is concurrency-safe (evicted keys recompute and
        re-land; racing writers are never corrupted).
        """
        if self._max_bytes is None or self._directory is None:
            return
        with self._lock:
            self._written_since_gc += written
            if self._written_since_gc < max(self._max_bytes // 8, 1):
                return
            self._written_since_gc = 0
        try:
            self.gc(max_bytes=self._max_bytes)
        except Exception:
            # The watermark is hygiene, never a reason to fail a pipeline.
            return

    def _write_disk(self, kind: str, key: str, serialized: bytes) -> None:
        path = self.entry_path(kind, key)
        if path is None:
            return

        def write() -> None:
            fault_point("io_error", op="put", kind=kind)
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
            payload = serialized
            if fault_point("torn_write", kind=kind):
                # Simulated torn write: the entry lands truncated, as after
                # a power loss that renamed before the data flushed.  The
                # reader's deserialize rejects it (a miss), and the
                # recompute's put heals the slot — the crash-safety story
                # this injection exists to prove.
                payload = serialized[: max(1, len(serialized) // 2)]
            temp.write_bytes(payload)
            os.replace(temp, path)

        try:
            retry_io(write)
        except Exception:
            # Disk persistence is best-effort; never fail a pipeline over it.
            return


#: Process-wide store used when no directory is configured: stages still
#: get cross-invocation reuse within one process (unit tests, the bench
#: harness, long-lived services) without touching the filesystem.
GLOBAL_MEMORY_STORE = ArtifactStore(directory=None)

_DIRECTORY_STORES: dict[str, ArtifactStore] = {}
_DIRECTORY_LOCK = threading.Lock()


def resolve_store(directory: str | None = None) -> ArtifactStore:
    """The store for *directory* (or the ``REPRO_STORE_DIR`` default).

    Without a directory this is the shared in-memory store; with one, a
    per-directory singleton so the LRU layer is shared between all pipelines
    pointing at the same store.  A path that exists but is not a directory
    (env- or ``--cache-dir``-supplied alike) cannot back a store: it falls
    back to the in-memory store with a warning rather than silently
    swallowing every disk write.
    """
    directory = directory or default_store_directory()
    if directory is None:
        return GLOBAL_MEMORY_STORE
    if os.path.exists(directory) and not os.path.isdir(directory):
        import warnings

        warnings.warn(
            f"store path {directory!r} exists but is not a directory; "
            "using the in-memory store",
            RuntimeWarning,
            stacklevel=2,
        )
        return GLOBAL_MEMORY_STORE
    directory = os.path.abspath(directory)
    with _DIRECTORY_LOCK:
        store = _DIRECTORY_STORES.get(directory)
        if store is None:
            store = ArtifactStore(directory=directory)
            _DIRECTORY_STORES[directory] = store
        return store
