"""The content-addressed artifact store.

Generalizes the design proven by the per-file preprocessing cache
(:mod:`repro.preprocess.cache`) into a store any pipeline stage can use:

* artifacts are addressed by ``(kind, key)`` where *key* is a
  :func:`repro.store.fingerprint.fingerprint` over the artifact's inputs;
* an **in-process LRU** sits in front, holding the *serialized* bytes of
  recently used artifacts — every hit deserializes a fresh copy, so cached
  artifacts can never be corrupted by a consumer mutating its result;
* an optional **sharded on-disk layer** (``<dir>/<kind>/<key[:2]>/<key>.pkl``,
  one pickle per entry, atomically replaced) makes artifacts survive across
  processes and sessions;
* disk entries embed the kind and its schema version; unreadable, truncated
  or stale entries read as misses, and the recompute's ``put`` atomically
  overwrites the slot — readers never delete (an unlink could race a
  concurrent writer's ``os.replace`` and destroy a fresh valid entry), so a
  damaged store heals itself by recomputation.

Writers never block readers: entries are written to a pid-suffixed
temporary file and ``os.replace``d into place, so concurrent writers
(threads or processes) racing on the same key all leave a complete entry
behind.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path

from repro.store.fingerprint import schema_version


def default_store_directory() -> str | None:
    """The on-disk store location from the environment, if configured."""
    return os.environ.get("REPRO_STORE_DIR") or None


class ArtifactStore:
    """A content-addressed artifact store with an LRU front and disk behind."""

    def __init__(self, directory: str | os.PathLike | None = None, memory_entries: int = 32):
        self._directory = Path(directory) if directory else None
        self._memory: OrderedDict[tuple[str, str], bytes] = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def directory(self) -> Path | None:
        return self._directory

    def counts(self, kind: str) -> dict[str, int]:
        """``{"hit": n, "miss": m}`` for one artifact kind."""
        with self._lock:
            return {"hit": self._hits.get(kind, 0), "miss": self._misses.get(kind, 0)}

    def entry_path(self, kind: str, key: str) -> Path | None:
        """Where the disk entry for ``(kind, key)`` lives (None if memory-only)."""
        if self._directory is None:
            return None
        return self._directory / kind / key[:2] / f"{key}.pkl"

    def memory_size(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------
    # Read / write.
    # ------------------------------------------------------------------

    def get(self, kind: str, key: str):
        """The stored artifact for ``(kind, key)``, or ``None``.

        Every hit returns a freshly deserialized copy, never a shared
        reference.
        """
        token = (kind, key)
        with self._lock:
            serialized = self._memory.get(token)
            if serialized is not None:
                self._memory.move_to_end(token)
        if serialized is not None:
            value = self._deserialize(kind, serialized)
            with self._lock:
                if value is None:
                    self._misses[kind] = self._misses.get(kind, 0) + 1
                else:
                    self._hits[kind] = self._hits.get(kind, 0) + 1
            return value
        loaded = self._read_disk(kind, key)
        if loaded is None:
            with self._lock:
                self._misses[kind] = self._misses.get(kind, 0) + 1
            return None
        serialized, value = loaded
        with self._lock:
            self._remember(token, serialized)
            self._hits[kind] = self._hits.get(kind, 0) + 1
        return value

    def put(self, kind: str, key: str, value) -> None:
        """Store *value* under ``(kind, key)`` in memory and (if configured) disk.

        Best-effort: an artifact that cannot be serialized is simply not
        cached — the pipeline must never fail over caching.
        """
        try:
            serialized = pickle.dumps(
                (kind, schema_version(kind), value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            return
        with self._lock:
            self._remember((kind, key), serialized)
        self._write_disk(kind, key, serialized)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries are untouched)."""
        with self._lock:
            self._memory.clear()

    def reset_counts(self) -> None:
        with self._lock:
            self._hits.clear()
            self._misses.clear()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _remember(self, token: tuple[str, str], serialized: bytes) -> None:
        if self._memory_entries <= 0:
            return
        self._memory[token] = serialized
        self._memory.move_to_end(token)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    def _deserialize(self, kind: str, serialized: bytes):
        """Decode one entry, validating kind and schema version."""
        try:
            stored_kind, stored_schema, value = pickle.loads(serialized)
        except Exception:
            return None
        if stored_kind != kind or stored_schema != schema_version(kind):
            return None
        return value

    def _read_disk(self, kind: str, key: str) -> tuple[bytes, object] | None:
        """Read one disk entry, returning ``(serialized, value)`` or ``None``.

        Truncated/corrupt/stale entries read as misses; the recompute's
        ``put`` then atomically overwrites the slot, which is how a damaged
        store heals.  (Deliberately no reader-side unlink: between this read
        and an unlink another process may have ``os.replace``d a fresh valid
        entry, and deleting it would break the concurrent-writer guarantee.)
        The decoded value rides along so a disk hit costs a single
        deserialization.
        """
        path = self.entry_path(kind, key)
        if path is None:
            return None
        try:
            serialized = path.read_bytes()
        except OSError:
            return None
        value = self._deserialize(kind, serialized)
        if value is None:
            return None
        return serialized, value

    def _write_disk(self, kind: str, key: str, serialized: bytes) -> None:
        path = self.entry_path(kind, key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
            temp.write_bytes(serialized)
            os.replace(temp, path)
        except Exception:
            # Disk persistence is best-effort; never fail a pipeline over it.
            return


#: Process-wide store used when no directory is configured: stages still
#: get cross-invocation reuse within one process (unit tests, the bench
#: harness, long-lived services) without touching the filesystem.
GLOBAL_MEMORY_STORE = ArtifactStore(directory=None)

_DIRECTORY_STORES: dict[str, ArtifactStore] = {}
_DIRECTORY_LOCK = threading.Lock()


def resolve_store(directory: str | None = None) -> ArtifactStore:
    """The store for *directory* (or the ``REPRO_STORE_DIR`` default).

    Without a directory this is the shared in-memory store; with one, a
    per-directory singleton so the LRU layer is shared between all pipelines
    pointing at the same store.
    """
    directory = directory or default_store_directory()
    if directory is None:
        return GLOBAL_MEMORY_STORE
    directory = os.path.abspath(directory)
    with _DIRECTORY_LOCK:
        store = _DIRECTORY_STORES.get(directory)
        if store is None:
            store = ArtifactStore(directory=directory)
            _DIRECTORY_STORES[directory] = store
        return store
