"""``repro.store`` — the content-addressed artifact store and stage graph.

See ARCHITECTURE.md for the full design: artifact kinds, fingerprint rules
and cache environment variables.
"""

from repro.store.artifact_store import (
    ArtifactStore,
    GLOBAL_MEMORY_STORE,
    default_store_directory,
    resolve_store,
)
from repro.store.fingerprint import SCHEMA_VERSIONS, fingerprint, schema_version, text_digest

#: Stage-graph symbols, loaded lazily (PEP 562): the per-file preprocess
#: cache imports this package from inside the corpus layer, and the stage
#: graph imports the corpus layer — eager re-export here would be circular.
_STAGE_EXPORTS = {
    "PipelineConfig",
    "PipelineRunner",
    "STAGE_ORDER",
    "STAGE_PHASES",
    "StageEvent",
    "SuiteMeasurementSet",
    "corpus_fingerprint",
    "default_runner",
    "mine_fingerprint",
    "model_fingerprint",
    "suite_execution_fingerprint",
    "synthesis_fingerprint",
    "synthetic_execution_fingerprint",
    "warm_phases",
}


def __getattr__(name: str):
    if name in _STAGE_EXPORTS:
        from repro.store import stages

        return getattr(stages, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ArtifactStore",
    "GLOBAL_MEMORY_STORE",
    "PipelineConfig",
    "PipelineRunner",
    "SCHEMA_VERSIONS",
    "STAGE_ORDER",
    "STAGE_PHASES",
    "StageEvent",
    "SuiteMeasurementSet",
    "corpus_fingerprint",
    "default_runner",
    "default_store_directory",
    "fingerprint",
    "mine_fingerprint",
    "model_fingerprint",
    "resolve_store",
    "schema_version",
    "suite_execution_fingerprint",
    "synthesis_fingerprint",
    "synthetic_execution_fingerprint",
    "text_digest",
    "warm_phases",
]
