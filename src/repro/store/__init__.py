"""``repro.store`` — the content-addressed artifact store and stage graph.

See ARCHITECTURE.md for the full design: artifact kinds, fingerprint rules
and cache environment variables.
"""

from repro.store.artifact_store import (
    ArtifactStore,
    GCResult,
    GLOBAL_MEMORY_STORE,
    StoreStats,
    default_io_retries,
    default_store_directory,
    default_store_max_bytes,
    resolve_store,
    retry_io,
)
from repro.store.faults import CRASH_EXIT_CODE, fault_point
from repro.store.fingerprint import SCHEMA_VERSIONS, fingerprint, schema_version, text_digest
from repro.store.queue import (
    ShardQueue,
    default_max_attempts,
    drain_plan,
    load_plans,
    plan_fingerprint,
    plan_priority,
    publish_plan,
    queue_status,
)
from repro.store.shards import ShardPlan, plan_from_env, shard_ranges

#: Stage-graph symbols, loaded lazily (PEP 562): the per-file preprocess
#: cache imports this package from inside the corpus layer, and the stage
#: graph imports the corpus layer — eager re-export here would be circular.
_STAGE_EXPORTS = {
    "PipelineConfig",
    "PipelineRunner",
    "STAGE_ORDER",
    "STAGE_PHASES",
    "StageEvent",
    "SuiteMeasurementSet",
    "corpus_fingerprint",
    "default_runner",
    "mine_fingerprint",
    "model_fingerprint",
    "suite_execution_fingerprint",
    "synthesis_fingerprint",
    "synthetic_execution_fingerprint",
    "warm_phases",
}

#: Service-layer symbols, also lazy: the serve module imports the stage
#: graph at module scope (same circularity), and the supervisor rides
#: along so `import repro.store` stays cheap for subprocess workers.
_SERVICE_EXPORTS = {
    "FleetSupervisor": "repro.store.supervisor",
    "RestartBudget": "repro.store.supervisor",
    "classify_exit": "repro.store.supervisor",
    "default_fleet_restarts": "repro.store.supervisor",
    "default_fleet_size": "repro.store.supervisor",
    "read_fleet_status": "repro.store.supervisor",
    "build_server": "repro.store.serve",
    "default_deadline_seconds": "repro.store.serve",
    "default_max_plans": "repro.store.serve",
    "plan_status": "repro.store.serve",
}


def __getattr__(name: str):
    if name in _STAGE_EXPORTS:
        from repro.store import stages

        return getattr(stages, name)
    if name in _SERVICE_EXPORTS:
        import importlib

        return getattr(importlib.import_module(_SERVICE_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ArtifactStore",
    "CRASH_EXIT_CODE",
    "FleetSupervisor",
    "GCResult",
    "GLOBAL_MEMORY_STORE",
    "RestartBudget",
    "StoreStats",
    "PipelineConfig",
    "PipelineRunner",
    "SCHEMA_VERSIONS",
    "STAGE_ORDER",
    "STAGE_PHASES",
    "ShardPlan",
    "ShardQueue",
    "StageEvent",
    "SuiteMeasurementSet",
    "build_server",
    "classify_exit",
    "corpus_fingerprint",
    "default_deadline_seconds",
    "default_fleet_restarts",
    "default_fleet_size",
    "default_io_retries",
    "default_max_attempts",
    "default_max_plans",
    "default_runner",
    "default_store_directory",
    "default_store_max_bytes",
    "drain_plan",
    "fault_point",
    "fingerprint",
    "load_plans",
    "mine_fingerprint",
    "model_fingerprint",
    "plan_fingerprint",
    "plan_from_env",
    "plan_priority",
    "plan_status",
    "publish_plan",
    "queue_status",
    "read_fleet_status",
    "resolve_store",
    "retry_io",
    "schema_version",
    "shard_ranges",
    "suite_execution_fingerprint",
    "synthesis_fingerprint",
    "synthetic_execution_fingerprint",
    "text_digest",
    "warm_phases",
]
