"""Crash-only supervision of a ``repro worker --watch`` fleet.

PR 6 made a *single* worker crash-tolerant: claims expire, deaths are
charged against attempt budgets, poison shards quarantine instead of
livelocking.  This module makes the *fleet* a standing service: the
supervisor spawns N resident workers, watches their exits, and keeps the
pool at strength without ever trusting its own state — everything it
believes is re-derivable from the store directory and the child process
table, so killing the supervisor (even with SIGKILL) loses nothing.  Its
workers are plain subprocesses with no death-pact: they keep draining
through a supervisor crash, and a replacement supervisor simply spawns a
fresh pool beside them (extra workers are benign by the claim protocol).

Exit classification is the heart of the restart policy:

* ``0`` — a clean drain (the worker was asked to stop, or finished).
* ``70`` (:data:`~repro.store.faults.CRASH_EXIT_CODE`) — scripted chaos:
  an injected fault killed the worker on purpose.  Respawned immediately
  and *never* charged against the restart budget, so a chaos soak cannot
  talk the supervisor into degrading a healthy fleet.
* ``1`` with a quarantine artifact under ``queue/failures/`` — the worker
  is fine; a *plan* is poisoned.  Respawned for free: burning restart
  budget here would punish the messenger.
* anything else (including death by signal: a negative returncode) — a
  real crash.  Respawned under an exponential-backoff restart budget of
  at most R restarts per rolling window; past that the slot is marked
  **degraded** and the fleet keeps serving with the survivors.

SIGTERM propagates as a graceful fleet drain: every worker gets SIGTERM,
finishes its current stage, and exits through its own clean path.  The
supervisor's observable state — slot states, pids, restart counts, last
exits — lands in ``fleet/status.json`` inside the store on every change
and on a heartbeat interval, so ``repro fleet status`` and the serve
layer read fleet health through the same bus as every other artifact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.envutil import env_duration, env_int
from repro.store.faults import CRASH_EXIT_CODE

#: Exit classifications (`classify_exit`).
CLEAN = "clean"
CHAOS = "chaos"
QUARANTINE = "quarantine"
CRASH = "crash"

#: Default fleet width (``REPRO_FLEET_SIZE``).
DEFAULT_FLEET_SIZE = 2

#: Default budget of real-crash restarts per slot per rolling window
#: (``REPRO_FLEET_RESTARTS``).
DEFAULT_FLEET_RESTARTS = 3

#: Default rolling window the restart budget counts within
#: (``REPRO_FLEET_WINDOW``).
DEFAULT_RESTART_WINDOW = 60.0

#: First-crash respawn delay; doubles per consecutive crash.
DEFAULT_BACKOFF_BASE = 0.5

#: Ceiling on the exponential respawn delay.
DEFAULT_BACKOFF_CAP = 30.0

#: A worker that survived this long ran real work: its next crash restarts
#: the backoff ladder from the base instead of resuming where it left off.
DEFAULT_HEALTHY_SECONDS = 10.0


def default_fleet_size() -> int:
    """The fleet width from ``REPRO_FLEET_SIZE``, hardened."""
    return env_int("REPRO_FLEET_SIZE", default=DEFAULT_FLEET_SIZE, minimum=1)


def default_fleet_restarts() -> int:
    """The per-slot crash-restart budget from ``REPRO_FLEET_RESTARTS``.

    The minimum is 1: a budget of zero would degrade a slot on its first
    wobble, which is a monitor, not a supervisor.
    """
    return env_int("REPRO_FLEET_RESTARTS", default=DEFAULT_FLEET_RESTARTS, minimum=1)


def default_restart_window() -> float:
    """The restart-budget rolling window from ``REPRO_FLEET_WINDOW``."""
    return env_duration(
        "REPRO_FLEET_WINDOW", default=DEFAULT_RESTART_WINDOW, minimum=0.001
    )


def classify_exit(returncode: int, quarantine_present: bool) -> str:
    """Map a worker exit to its supervision class.

    *quarantine_present* is whether ``queue/failures/`` holds any failure
    artifact — the only way to tell a worker's honest "a plan is poisoned"
    exit 1 from a crash that happened to pick the same code.
    """
    if returncode == 0:
        return CLEAN
    if returncode == CRASH_EXIT_CODE:
        return CHAOS
    if returncode == 1 and quarantine_present:
        return QUARANTINE
    return CRASH


class RestartBudget:
    """Per-slot crash-restart accounting.

    Two independent mechanisms, both keyed on *real* crashes only (chaos
    kills and quarantine exits never reach here):

    * a **rolling-window budget** — at most *max_restarts* charged crashes
      within *window_seconds*; one more and :meth:`charge` answers that
      the slot must degrade instead of respawn;
    * an **exponential backoff** — consecutive crashes double the respawn
      delay from *backoff_base* up to *backoff_cap*, and a worker that
      stayed up past *healthy_seconds* resets the ladder (it did real
      work; its next crash is a fresh incident, not a continuation).
    """

    def __init__(
        self,
        max_restarts: int,
        window_seconds: float,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        healthy_seconds: float = DEFAULT_HEALTHY_SECONDS,
    ):
        self.max_restarts = max_restarts
        self.window_seconds = window_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.healthy_seconds = healthy_seconds
        self._charged: list[float] = []
        self._consecutive = 0

    def note_uptime(self, uptime_seconds: float) -> None:
        """Record how long the worker ran before this exit; a healthy
        stretch resets the consecutive-crash backoff ladder."""
        if uptime_seconds >= self.healthy_seconds:
            self._consecutive = 0

    def charge(self, now: float) -> bool:
        """Charge one real crash at *now*; ``True`` = respawn is allowed,
        ``False`` = the window budget is spent and the slot degrades."""
        cutoff = now - self.window_seconds
        self._charged = [moment for moment in self._charged if moment > cutoff]
        self._charged.append(now)
        self._consecutive += 1
        return len(self._charged) <= self.max_restarts

    def backoff_seconds(self) -> float:
        """The respawn delay after the most recently charged crash."""
        exponent = max(self._consecutive - 1, 0)
        return min(self.backoff_base * (2.0 ** exponent), self.backoff_cap)

    @property
    def charged_in_window(self) -> int:
        return len(self._charged)


class _Slot:
    """One position in the fleet: a worker process plus its budget."""

    def __init__(self, index: int, budget: RestartBudget):
        self.index = index
        self.budget = budget
        self.process: subprocess.Popen | None = None
        self.state = "stopped"  # running | backoff | degraded | stopped
        self.started_at = 0.0
        self.respawn_at = 0.0
        self.respawns = 0
        self.last_exit: int | None = None
        self.last_class: str | None = None


class FleetSupervisor:
    """Spawn and supervise N ``repro worker --watch`` processes.

    The supervisor holds no durable state: slot bookkeeping is advisory
    and is republished to ``fleet/status.json`` on every change, so an
    operator (or the serve layer) always sees where the fleet stands, and
    a supervisor killed hard can simply be restarted — its orphaned
    workers keep draining, the replacement's fresh pool joins them, and
    the claim protocol keeps the overlap benign.
    """

    def __init__(
        self,
        store_directory: str | os.PathLike,
        size: int | None = None,
        max_restarts: int | None = None,
        window_seconds: float | None = None,
        lease_seconds: float | None = None,
        poll_seconds: float = 5.0,
        status_interval: float = 1.0,
        drain_grace: float = 60.0,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        healthy_seconds: float = DEFAULT_HEALTHY_SECONDS,
        worker_argv: list[str] | None = None,
    ):
        self.directory = Path(store_directory)
        self.size = size if size is not None else default_fleet_size()
        self.max_restarts = (
            max_restarts if max_restarts is not None else default_fleet_restarts()
        )
        self.window_seconds = (
            window_seconds if window_seconds is not None else default_restart_window()
        )
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.status_interval = status_interval
        self.drain_grace = drain_grace
        self._worker_argv = worker_argv
        self.slots = [
            _Slot(
                index,
                RestartBudget(
                    self.max_restarts,
                    self.window_seconds,
                    backoff_base=backoff_base,
                    backoff_cap=backoff_cap,
                    healthy_seconds=healthy_seconds,
                ),
            )
            for index in range(self.size)
        ]
        self.quarantine_exits = 0
        self.draining = False
        self._stop = threading.Event()
        self._started_wall = time.time()
        self._status_written = 0.0
        self._dirty = True

    # ------------------------------------------------------------------
    # Worker processes.
    # ------------------------------------------------------------------

    def worker_argv(self) -> list[str]:
        if self._worker_argv is not None:
            return list(self._worker_argv)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--store",
            str(self.directory),
            "--watch",
            "--poll",
            str(self.poll_seconds),
        ]
        if self.lease_seconds is not None:
            argv += ["--lease", str(self.lease_seconds)]
        return argv

    def _spawn(self, slot: _Slot, now: float) -> None:
        if slot.process is not None:
            slot.respawns += 1
        try:
            slot.process = subprocess.Popen(self.worker_argv())
        except OSError as error:
            # Treat an unspawnable worker like an instant crash: charge the
            # budget so a broken command degrades the slot instead of
            # spinning the supervisor in a hot spawn loop.
            print(f"fleet: slot {slot.index} spawn failed: {error}", file=sys.stderr)
            slot.last_exit, slot.last_class = None, CRASH
            if slot.budget.charge(now):
                slot.state = "backoff"
                slot.respawn_at = now + slot.budget.backoff_seconds()
            else:
                slot.state = "degraded"
            self._dirty = True
            return
        slot.state = "running"
        slot.started_at = now
        self._dirty = True

    def _quarantine_present(self) -> bool:
        try:
            return any((self.directory / "queue" / "failures").glob("*.json"))
        except OSError:
            return False

    # ------------------------------------------------------------------
    # The supervision loop.
    # ------------------------------------------------------------------

    def tick(self, now: float | None = None) -> None:
        """One supervision pass: reap exits, classify, respawn or degrade."""
        now = time.monotonic() if now is None else now
        for slot in self.slots:
            if slot.state == "running":
                returncode = slot.process.poll() if slot.process else None
                if returncode is None:
                    continue
                self._on_exit(slot, returncode, now)
            elif slot.state == "backoff" and now >= slot.respawn_at and not self.draining:
                self._spawn(slot, now)

    def _on_exit(self, slot: _Slot, returncode: int, now: float) -> None:
        uptime = now - slot.started_at
        exit_class = classify_exit(returncode, self._quarantine_present())
        slot.last_exit = returncode
        slot.last_class = exit_class
        slot.process = None
        self._dirty = True
        if exit_class == QUARANTINE:
            self.quarantine_exits += 1
        if self.draining:
            slot.state = "stopped"
            return
        if exit_class in (CLEAN, CHAOS, QUARANTINE):
            # Not the worker's fault: clean stops, scripted chaos kills and
            # poisoned-plan reports all respawn immediately and for free.
            self._spawn(slot, now)
            return
        slot.budget.note_uptime(uptime)
        if slot.budget.charge(now):
            slot.state = "backoff"
            slot.respawn_at = now + slot.budget.backoff_seconds()
            print(
                f"fleet: slot {slot.index} crashed (exit {returncode}); "
                f"respawn in {slot.budget.backoff_seconds():.1f}s "
                f"({slot.budget.charged_in_window}/{self.max_restarts} "
                f"restarts in window)",
                file=sys.stderr,
            )
        else:
            slot.state = "degraded"
            print(
                f"fleet: slot {slot.index} degraded after "
                f"{slot.budget.charged_in_window} crashes within "
                f"{self.window_seconds:.0f}s; serving with the survivors",
                file=sys.stderr,
            )

    def request_drain(self) -> None:
        """Ask the fleet to stop: workers get SIGTERM, finish their current
        stage, and exit through their own clean (or quarantine) path."""
        self._stop.set()

    def run(self) -> int:
        """Supervise until SIGTERM/SIGINT (or :meth:`request_drain`).

        Returns 0 after a clean drain, 1 when any worker reported a
        quarantined plan along the way — the same contract as a single
        ``repro worker``.
        """
        previous_handlers = {}
        if threading.current_thread() is threading.main_thread():
            def handle(signum, frame):
                self._stop.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(signum, handle)
        try:
            now = time.monotonic()
            for slot in self.slots:
                self._spawn(slot, now)
            self.write_status(force=True)
            while not self._stop.is_set():
                self.tick()
                self.write_status()
                self._stop.wait(0.1)
            self._drain()
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        return 1 if self.quarantine_exits else 0

    def _drain(self) -> None:
        self.draining = True
        self._dirty = True
        print("fleet: drain requested; stopping workers", file=sys.stderr)
        for slot in self.slots:
            if slot.state == "running" and slot.process is not None:
                try:
                    slot.process.terminate()
                except OSError:
                    pass
            elif slot.state == "backoff":
                slot.state = "stopped"
        deadline = time.monotonic() + self.drain_grace
        for slot in self.slots:
            if slot.state != "running" or slot.process is None:
                continue
            try:
                slot.process.wait(timeout=max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:
                slot.process.kill()
                slot.process.wait()
            self._on_exit(slot, slot.process.returncode, time.monotonic())
        self.write_status(force=True)

    # ------------------------------------------------------------------
    # Observable state: fleet/status.json.
    # ------------------------------------------------------------------

    def status(self) -> dict:
        now = time.monotonic()
        workers = []
        for slot in self.slots:
            workers.append(
                {
                    "index": slot.index,
                    "pid": slot.process.pid if slot.process is not None else None,
                    "state": slot.state,
                    "respawns": slot.respawns,
                    "restarts_in_window": slot.budget.charged_in_window,
                    "last_exit": slot.last_exit,
                    "last_exit_class": slot.last_class,
                    "uptime_seconds": (
                        round(now - slot.started_at, 3)
                        if slot.state == "running"
                        else None
                    ),
                }
            )
        return {
            "updated_at": time.time(),
            "supervisor": {
                "pid": os.getpid(),
                "started_at": self._started_wall,
                "draining": self.draining,
            },
            "size": self.size,
            "max_restarts": self.max_restarts,
            "window_seconds": self.window_seconds,
            "running": sum(1 for slot in self.slots if slot.state == "running"),
            "degraded": sum(1 for slot in self.slots if slot.state == "degraded"),
            "quarantine_exits": self.quarantine_exits,
            "workers": workers,
        }

    def write_status(self, force: bool = False) -> None:
        """Publish :meth:`status` to ``<store>/fleet/status.json``.

        Written atomically (temp + ``os.replace``) like every queue-side
        artifact, throttled to the heartbeat interval unless something
        changed; best-effort — a full disk must not kill the supervisor.
        """
        now = time.monotonic()
        if not force and not self._dirty and now - self._status_written < self.status_interval:
            return
        path = self.directory / "fleet" / "status.json"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            temp.write_text(json.dumps(self.status(), indent=2))
            os.replace(temp, path)
        except OSError:
            pass
        self._status_written = now
        self._dirty = False


def read_fleet_status(store_directory: str | os.PathLike) -> dict | None:
    """The last published ``fleet/status.json``, or ``None``.

    Shared by ``repro fleet status`` and the serve layer's ``GET /fleet``
    so both report fleet health from the same artifact.
    """
    path = Path(store_directory) / "fleet" / "status.json"
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    return record if isinstance(record, dict) else None
