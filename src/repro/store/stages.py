"""The pipeline stage graph: mine → preprocess → train → sample → execute.

The paper's workflow is a linear pipeline, but until this module existed it
was only implicit in ad-hoc call chains (``experiments/common.py``,
``cli.py``, the bench harness) that re-ran everything end-to-end on every
invocation.  Here each stage is explicit:

=============  ==========================  ============================
stage          artifact kind               artifact value
=============  ==========================  ============================
``mine``       ``mine``                    mined content-file texts
``preprocess`` ``corpus``                  :class:`~repro.corpus.corpus.Corpus`
``train``      ``model``                   checkpoint record (``to_dict``)
``sample``     ``synthesis``               :class:`~repro.synthesis.generator.SynthesisResult`
``execute``    ``suite-measurements`` /    measurement sets
               ``synthetic-measurements``
=============  ==========================  ============================

Each stage declares a :func:`~repro.store.fingerprint.fingerprint` over its
configuration plus the fingerprints of its upstream artifacts, and persists
its output to the :class:`~repro.store.artifact_store.ArtifactStore`.
Re-running any entry point reuses every stage whose fingerprint still
matches and recomputes only downstream of a change; a downstream hit
short-circuits its entire upstream chain (a warm ``sample`` never re-mines
the corpus).

All stage computations are deterministic functions of their fingerprinted
inputs, so cached results are bit-identical to recomputation — the same
invariant the execution engines already guarantee.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import asdict, dataclass, field, replace

from repro.corpus.corpus import Corpus
from repro.driver.harness import DriverConfig, HostDriver, KernelMeasurement
from repro.model.backend import TrainingSummary
from repro.model.checkpoint import model_from_dict, model_to_dict
from repro.model.lstm import LSTMConfig
from repro.model.trainer import ModelTrainer, TrainedModel, TrainerConfig
from repro.store.artifact_store import ArtifactStore, resolve_store
from repro.store.fingerprint import fingerprint, text_digest
from repro.store.shards import ShardPlan, normalized_plan, plan_from_env
from repro.suites.registry import all_suites
from repro.synthesis.generator import CLgen, SynthesisResult
from repro.synthesis.sampler import SamplerConfig

#: Stage name -> benchmark-protocol phase name (ROADMAP "Performance").
STAGE_PHASES = {
    "mine": "preprocess",
    "preprocess": "preprocess",
    "train": "train",
    "sample": "sample",
    "execute": "execute",
}

#: Pipeline order, for reporting.
STAGE_ORDER = ("mine", "preprocess", "train", "sample", "execute")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything the five stages depend on, in one fingerprintable record."""

    # mine
    repository_count: int = 100
    seed: int = 0
    # preprocess
    use_shim: bool = True
    rename_identifiers: bool = True
    min_static_instructions: int = 3
    #: Worker processes for cold preprocessing.  Deliberately *not* part of
    #: any fingerprint: parallel and serial runs are byte-identical.
    preprocess_jobs: int | None = None
    # train
    backend: str = "ngram"
    ngram_order: int = 12
    shuffle_seed: int = 0
    #: LSTM hyper-parameters, used (and fingerprinted) only when
    #: ``backend == "lstm"`` — two LSTM trainings with different knobs must
    #: never share a ``model`` store entry.  ``None`` means the
    #: :class:`~repro.model.lstm.LSTMConfig` defaults.
    lstm: LSTMConfig | None = None
    # sample
    sampler_temperature: float = 0.6
    max_kernel_length: int = 2048
    seed_kernel_name: str = "A"
    synthetic_kernel_count: int = 100
    max_attempts_per_kernel: int = 40
    sample_seed: int = 0
    #: Wavefront width for the batched sample stage.  Like
    #: ``preprocess_jobs``, deliberately *not* part of any fingerprint:
    #: every width produces byte-identical kernels (per-stream RNG
    #: isolation), so batched and sequential runs share store entries.
    #: ``None`` defers to ``REPRO_SAMPLE_BATCH``, then the built-in default.
    sample_batch: int | None = None
    # execute
    executed_global_size: int = 128
    local_size: int = 32
    payload_seed: int = 0
    dataset_scales: tuple[float, ...] = (4.0, 16.0, 64.0, 256.0, 1024.0)
    suites: tuple[str, ...] | None = None
    #: Pre-execution static lint filter: when on, synthesized kernels the
    #: analyzer proves bailout-certain are dropped before measurement (their
    #: verdicts persist in the ``lint-verdicts`` artifact either way).  Joins
    #: the execute fingerprint only when enabled, so every existing
    #: default-config artifact keeps its address (the ``lstm`` pattern).
    lint_filter: bool = False

    @classmethod
    def from_experiment(cls, config, suites=None, count: int | None = None) -> "PipelineConfig":
        """Derive stage configuration from an ``ExperimentConfig``."""
        return cls(
            repository_count=config.corpus_repository_count,
            seed=config.seed,
            ngram_order=config.ngram_order,
            sampler_temperature=config.sampler_temperature,
            synthetic_kernel_count=(
                count if count is not None else config.synthetic_kernel_count
            ),
            sample_seed=config.seed,
            executed_global_size=config.executed_global_size,
            local_size=config.local_size,
            payload_seed=config.seed,
            suites=tuple(suites) if suites is not None else None,
        )

    def with_count(self, count: int) -> "PipelineConfig":
        return replace(self, synthetic_kernel_count=count)


# ---------------------------------------------------------------------------
# Stage fingerprints.  Each includes its upstream fingerprint, chaining
# invalidation all the way down the graph.
# ---------------------------------------------------------------------------


def mine_fingerprint(cfg: PipelineConfig) -> str:
    return fingerprint("mine", {"repository_count": cfg.repository_count, "seed": cfg.seed})


def corpus_fingerprint(cfg: PipelineConfig) -> str:
    return fingerprint(
        "corpus",
        {
            "mine": mine_fingerprint(cfg),
            "use_shim": cfg.use_shim,
            "rename_identifiers": cfg.rename_identifiers,
            "min_static_instructions": cfg.min_static_instructions,
        },
    )


def model_fingerprint(cfg: PipelineConfig) -> str:
    payload = {
        "corpus": corpus_fingerprint(cfg),
        "backend": cfg.backend,
        "ngram_order": cfg.ngram_order,
        "shuffle_seed": cfg.shuffle_seed,
    }
    if cfg.backend == "lstm":
        # Every LSTM hyper-parameter joins the payload (defaults made
        # explicit), so differently-configured trainings address different
        # checkpoints.  The n-gram payload is untouched: its fingerprints —
        # and every stored n-gram model — stay valid.
        payload["lstm"] = asdict(cfg.lstm if cfg.lstm is not None else LSTMConfig())
    return fingerprint("model", payload)


def synthesis_fingerprint(cfg: PipelineConfig) -> str:
    return fingerprint(
        "synthesis",
        {
            "model": model_fingerprint(cfg),
            "temperature": cfg.sampler_temperature,
            "max_kernel_length": cfg.max_kernel_length,
            "seed_kernel_name": cfg.seed_kernel_name,
            "count": cfg.synthetic_kernel_count,
            "sample_seed": cfg.sample_seed,
            "max_attempts_per_kernel": cfg.max_attempts_per_kernel,
            "min_static_instructions": cfg.min_static_instructions,
        },
    )


def _driver_payload(cfg: PipelineConfig) -> dict:
    # Engine choice and measurement workers are deliberately excluded: all
    # engines and any worker count produce bit-identical measurements (the
    # differential tests enforce this), so artifacts are shareable across
    # them.
    return {
        "executed_global_size": cfg.executed_global_size,
        "local_size": cfg.local_size,
        "payload_seed": cfg.payload_seed,
    }


def _selected_suites(cfg: PipelineConfig):
    return [
        suite
        for suite in all_suites()
        if cfg.suites is None or suite.name in cfg.suites
    ]


def suite_execution_fingerprint(cfg: PipelineConfig) -> str:
    # The suite kernels are code-defined, so fingerprint their sources too:
    # editing a benchmark invalidates its stored measurements without a
    # schema bump.
    suites = _selected_suites(cfg)
    texts: list[str] = []
    for suite in suites:
        for benchmark in suite.benchmarks:
            texts.append(benchmark.qualified_name)
            for dataset in benchmark.datasets:
                texts.append(f"{dataset.name}:{dataset.scale!r}")
            texts.append(benchmark.source)
    return fingerprint(
        "suite-measurements",
        {
            "driver": _driver_payload(cfg),
            "suites": [suite.name for suite in suites],
            "sources": text_digest(*texts),
        },
    )


def lint_fingerprint(cfg: PipelineConfig) -> str:
    """Address of the static-analyzer verdicts for the synthesized batch."""
    return fingerprint("lint-verdicts", {"synthesis": synthesis_fingerprint(cfg)})


def synthetic_execution_fingerprint(cfg: PipelineConfig) -> str:
    payload = {
        "synthesis": synthesis_fingerprint(cfg),
        "driver": _driver_payload(cfg),
        "dataset_scales": list(cfg.dataset_scales),
    }
    if cfg.lint_filter:
        # Only when enabled: filtered and unfiltered runs must never share
        # a measurement artifact, but default-config addresses stay stable.
        payload["lint_filter"] = True
    return fingerprint("synthetic-measurements", payload)


# ---------------------------------------------------------------------------
# The runner.
# ---------------------------------------------------------------------------


@dataclass
class StageEvent:
    """One stage resolution: served from the store (hit) or recomputed."""

    stage: str
    fingerprint: str
    hit: bool
    seconds: float


def warm_phases(events) -> list[str]:
    """Benchmark phases whose timings are tainted by cross-session warmth.

    A hit whose fingerprint was *missed earlier in the same event slice* is
    structural (the same session computed it moments ago — e.g. the execute
    stage re-resolving its sample artifact) and costs nothing; a hit with no
    such miss was served from a previous session's store and replaced real
    work with a lookup.  Any phase containing the latter must not be used as
    a cold timing source (bench snapshots, perf gates).  *events* may be
    :class:`StageEvent` objects or dicts with ``stage``/``fingerprint``/
    ``hit`` entries.
    """
    missed: set[str] = set()
    tainted: set[str] = set()
    for event in events:
        if isinstance(event, dict):
            stage, fingerprint, hit = event["stage"], event["fingerprint"], event["hit"]
        else:
            stage, fingerprint, hit = event.stage, event.fingerprint, event.hit
        if hit:
            if fingerprint not in missed:
                tainted.add(STAGE_PHASES.get(stage, stage))
        else:
            missed.add(fingerprint)
    return sorted(tainted)


@dataclass
class SuiteMeasurementSet:
    """The execute stage's suite-side artifact."""

    suite_measurements: dict[str, list[KernelMeasurement]] = field(default_factory=dict)
    benchmark_measurements: dict[str, list[KernelMeasurement]] = field(default_factory=dict)


def detached(value):
    """A deep copy of *value* with no object sharing beyond its own graph.

    Measurements computed in one process share sub-objects through
    process-wide caches (e.g. every compilation embeds the same shim-prelude
    AST nodes), so the pickled bytes of a measurement *batch* would depend
    on which process computed which member.  Execute artifacts detach each
    benchmark/kernel island at creation instead, making the artifact's
    serialization independent of compute locality — the property that lets
    sharded, pooled and unsharded runs produce byte-identical store entries.
    """
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


class PipelineRunner:
    """Resolves pipeline stages through the artifact store.

    One runner wraps one store (by default the process-wide memory store, or
    the directory named by ``REPRO_STORE_DIR`` / ``cache_dir``).  Every
    stage resolution is recorded as a :class:`StageEvent` with its
    wall-clock cost (exclusive of upstream stages), which is what the CLI,
    the profile script and the warm-run tests report.

    With ``shards > 1`` the data-parallel stages (mine, preprocess, sample,
    both execute sides) resolve as per-range shard artifacts plus a
    deterministic merge (see :mod:`repro.store.shards`); ``workers > 1``
    dispatches ready fan-out shards to a process pool.  With ``steal=True``
    (and an on-disk store) every stage resolution is claimed through the
    work-stealing queue (:mod:`repro.store.queue`) before computing, so any
    number of runners — this process, its pool workers, and separate
    ``repro worker`` processes — drain one plan together.  Sharded, pooled,
    stolen and unsharded runs produce bit-identical whole-pipeline
    artifacts under the same store keys.
    """

    #: Bound on live (deserialization-free) objects kept for in-process reuse.
    _LIVE_LIMIT = 16

    def __init__(
        self,
        store: ArtifactStore | None = None,
        cache_dir: str | None = None,
        shards: int = 1,
        workers: int = 0,
        steal: bool = False,
        plan: ShardPlan | None = None,
        lease_seconds: float | None = None,
        poll_seconds: float | None = None,
        priority: int = 0,
    ):
        self.store = store if store is not None else resolve_store(cache_dir)
        # workers without shards implies one shard per worker (an explicit
        # plan= is taken verbatim).
        self.plan = plan if plan is not None else normalized_plan(shards, workers, steal=steal)
        #: The plan as asked for, before any store-capability demotions —
        #: default_runner() compares against this so a runner whose plan was
        #: demoted (e.g. steal without a disk store) is not rebuilt, and
        #: re-warned, on every call.
        self.requested_plan = self.plan
        if self.plan.pooled and self.store.directory is None:
            # A memory-only store is invisible to pool workers: each would
            # recompute the whole upstream chain privately and ship it
            # back, making the pool slower than sequential resolution.
            # Warn once here rather than on every stage resolution.
            import warnings

            warnings.warn(
                "shard worker pool needs an on-disk store (cache_dir or "
                "REPRO_STORE_DIR); resolving shards in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            self.plan = replace(self.plan, workers=0)
        if self.plan.steal and self.store.directory is None:
            # The claim queue is a directory protocol; without a shared
            # directory there is nobody to coordinate with anyway.
            import warnings

            warnings.warn(
                "work-stealing needs an on-disk store (cache_dir or "
                "REPRO_STORE_DIR); resolving stages directly",
                RuntimeWarning,
                stacklevel=2,
            )
            self.plan = replace(self.plan, steal=False)
        #: Claim lease/poll overrides for the work-stealing queue (None =
        #: the queue defaults / REPRO_QUEUE_LEASE).
        self._lease_seconds = lease_seconds
        self._poll_seconds = poll_seconds
        #: The priority of the plan this runner is draining: claim sweeps
        #: order pending shards by it (higher first) before the worker-id
        #: rotation, so a fleet finishes urgent plans before backfill.
        self.priority = priority
        self._shard_queue = None
        self.events: list[StageEvent] = []
        #: Live objects (the trained model instance, with its sampling memos
        #: warm) keyed by fingerprint, so in-process reuse skips even the
        #: deserialization cost and downstream stages compute from the very
        #: object that produced the stored artifact.
        self._live: dict[tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # Event accounting.
    # ------------------------------------------------------------------

    def mark(self) -> int:
        """A position in the event log (see :meth:`phase_seconds`)."""
        return len(self.events)

    def stage_counts(self, since: int = 0) -> dict[str, dict[str, int]]:
        """``{stage: {"hit": n, "miss": m}}`` over events from *since*."""
        counts: dict[str, dict[str, int]] = {}
        for event in self.events[since:]:
            bucket = counts.setdefault(event.stage, {"hit": 0, "miss": 0})
            bucket["hit" if event.hit else "miss"] += 1
        return counts

    def phase_seconds(self, since: int = 0) -> dict[str, float]:
        """Per-benchmark-phase seconds over events from *since*.

        Sums each event's exclusive seconds.  With a shard worker pool
        (``workers > 1``) pool-computed shards report their worker's
        compute time, so a phase's sum is aggregate worker seconds — an
        upper bound on (not equal to) its wall-clock.
        """
        phases: dict[str, float] = {}
        for event in self.events[since:]:
            phase = STAGE_PHASES.get(event.stage, event.stage)
            phases[phase] = phases.get(phase, 0.0) + event.seconds
        return phases

    # ------------------------------------------------------------------
    # Stages.
    # ------------------------------------------------------------------

    def content_files(self, cfg: PipelineConfig) -> list[str]:
        """Stage ``mine``: the mined content-file texts."""
        if self.plan.sharded:
            from repro.store import shards as shardlib

            return shardlib.sharded_mine(self, cfg)

        def compute() -> list[str]:
            from repro.corpus.github import GitHubMiner

            mining = GitHubMiner(seed=cfg.seed).mine(cfg.repository_count)
            return [content_file.text for content_file in mining.content_files]

        return self._stage("mine", "mine", mine_fingerprint(cfg), compute)

    def corpus(self, cfg: PipelineConfig) -> Corpus:
        """Stage ``preprocess``: the normalized language corpus."""
        key = corpus_fingerprint(cfg)
        live = self._live.get(("corpus", key))
        if live is not None:
            # In-process repeat: skip even the store deserialization (the
            # corpus is treated as immutable by every consumer, exactly as
            # the pre-stage-graph code shared one Corpus object around).
            self.events.append(StageEvent("preprocess", key, True, 0.0))
            return live

        if self.plan.sharded:
            from repro.store import shards as shardlib

            value = shardlib.sharded_corpus(self, cfg)
            self._keep_live(("corpus", key), value)
            return value

        def compute() -> Corpus:
            texts = self.content_files(cfg)
            built = Corpus.from_content_files(
                texts,
                use_shim=cfg.use_shim,
                rename_identifiers=cfg.rename_identifiers,
                min_static_instructions=cfg.min_static_instructions,
                jobs=cfg.preprocess_jobs,
            )
            # Drop the raw mined texts: the mine artifact already holds them,
            # and keeping them here would double the size of every corpus
            # entry (no downstream stage reads Corpus.content_files).
            return Corpus(kernels=built.kernels, statistics=built.statistics)

        value = self._stage("preprocess", "corpus", key, compute)
        self._keep_live(("corpus", key), value)
        return value

    def trained_model(self, cfg: PipelineConfig) -> TrainedModel:
        """Stage ``train``: the trained language model (checkpoint artifact)."""
        key = model_fingerprint(cfg)
        cached = self._live.get(("trained", key))
        if cached is not None:
            # In-process repeat: reuse the live model (its sampling memos
            # stay warm) instead of re-deserializing the checkpoint.
            self.events.append(StageEvent("train", key, True, 0.0))
            return cached

        def compute() -> dict:
            corpus = self.corpus(cfg)
            trainer = ModelTrainer(
                TrainerConfig(
                    backend=cfg.backend,
                    ngram_order=cfg.ngram_order,
                    lstm=cfg.lstm,
                    shuffle_seed=cfg.shuffle_seed,
                )
            )
            trained = trainer.train(corpus)
            self._keep_live(("model", key), trained.model)
            return {
                "checkpoint": model_to_dict(trained.model),
                "losses": list(trained.summary.losses),
                "epochs": trained.summary.epochs,
                "parameters": trained.summary.parameters,
                "corpus_characters": trained.corpus_characters,
            }

        artifact = self._stage("train", "model", key, compute)
        model = self._live.get(("model", key))
        if model is None:
            model = model_from_dict(artifact["checkpoint"])
        summary = TrainingSummary(
            losses=list(artifact["losses"]),
            epochs=artifact["epochs"],
            parameters=artifact["parameters"],
        )
        trained = TrainedModel(
            model=model, summary=summary, corpus_characters=artifact["corpus_characters"]
        )
        self._live.pop(("model", key), None)
        self._keep_live(("trained", key), trained)
        return trained

    def clgen(self, cfg: PipelineConfig) -> CLgen:
        """A synthesizer assembled from the ``preprocess`` and ``train`` artifacts."""
        trained = self.trained_model(cfg)
        corpus = self.corpus(cfg)
        synthesizer = CLgen(
            model=trained.model,
            corpus=corpus,
            sampler_config=SamplerConfig(
                max_kernel_length=cfg.max_kernel_length,
                temperature=cfg.sampler_temperature,
                seed_kernel_name=cfg.seed_kernel_name,
                batch_size=cfg.sample_batch,
            ),
            min_static_instructions=cfg.min_static_instructions,
        )
        # Tag the synthesizer with the model artifact it embeds, so callers
        # (experiments/common.py) can tell a stage-graph product from an
        # ad-hoc synthesizer that must bypass the store.
        synthesizer.stage_model_fingerprint = model_fingerprint(cfg)
        return synthesizer

    def synthesis(self, cfg: PipelineConfig) -> SynthesisResult:
        """Stage ``sample``: the synthetic kernel batch."""
        if self.plan.sharded:
            from repro.store import shards as shardlib

            return shardlib.sharded_synthesis(self, cfg)

        def compute() -> SynthesisResult:
            from repro.errors import SynthesisError
            from repro.synthesis.generator import merge_stream_results

            if cfg.synthetic_kernel_count <= 0:
                # Same contract as generate_kernels (and the sharded path):
                # a config error must never cache an empty artifact.
                raise SynthesisError("kernel count must be positive")
            synthesizer = self.clgen(cfg)
            # Detach each per-stream entry (see detached()) before merging,
            # exactly as the shard computes do, so the merged artifact's
            # bytes do not depend on in-process object sharing — sharded
            # merges must reproduce them bit-identically from separately
            # stored shards.
            entries = [
                detached(entry)
                for entry in synthesizer.generate_kernel_range(
                    0,
                    cfg.synthetic_kernel_count,
                    seed=cfg.sample_seed,
                    max_attempts_per_kernel=cfg.max_attempts_per_kernel,
                )
            ]
            return merge_stream_results(entries, requested=cfg.synthetic_kernel_count)

        return self._stage("sample", "synthesis", synthesis_fingerprint(cfg), compute)

    def suite_measurements(self, cfg: PipelineConfig) -> SuiteMeasurementSet:
        """Stage ``execute`` (suite side): measurements of every benchmark."""
        if self.plan.sharded:
            from repro.store import shards as shardlib

            return shardlib.sharded_suite_measurements(self, cfg)

        def compute() -> SuiteMeasurementSet:
            driver = self._make_driver(cfg)
            out = SuiteMeasurementSet()
            for suite in _selected_suites(cfg):
                suite_measurements: list[KernelMeasurement] = []
                for benchmark in suite.benchmarks:
                    measurements = detached(driver.measure_benchmark(benchmark))
                    if measurements:
                        out.benchmark_measurements[benchmark.qualified_name] = measurements
                        suite_measurements.extend(measurements)
                out.suite_measurements[suite.name] = suite_measurements
            return out

        return self._stage(
            "execute", "suite-measurements", suite_execution_fingerprint(cfg), compute
        )

    def lint_verdicts(self, cfg: PipelineConfig) -> list[dict]:
        """Stage ``execute`` (lint side): static verdicts for the kernel batch.

        One JSON-encodable record per synthesized kernel, keyed off the
        synthesis fingerprint — the verdicts are a pure function of the
        kernel sources, so they are shared by filtered and unfiltered
        measurement runs.
        """

        def compute() -> list[dict]:
            from repro.analysis.lint import lint_source

            synthesis = self.synthesis(cfg)
            return [
                lint_source(kernel.source, name=f"clgen.{index}").to_dict()
                for index, kernel in enumerate(synthesis.kernels)
            ]

        return self._stage("execute", "lint-verdicts", lint_fingerprint(cfg), compute)

    def synthetic_measurements(self, cfg: PipelineConfig) -> list[KernelMeasurement]:
        """Stage ``execute`` (synthetic side): measurements of the kernel batch."""
        if self.plan.sharded and not cfg.lint_filter:
            from repro.store import shards as shardlib

            return shardlib.sharded_synthetic_measurements(self, cfg)

        def compute() -> list[KernelMeasurement]:
            synthesis = self.synthesis(cfg)
            driver = self._make_driver(cfg)
            scales = cfg.dataset_scales
            batch = list(enumerate(synthesis.kernels))
            if cfg.lint_filter:
                # Drop bailout-certain kernels before measurement; indices
                # (and therefore names and dataset scales) of the surviving
                # kernels are preserved, so a filtered run is the unfiltered
                # run minus the doomed rows.
                doomed = {
                    record["name"]
                    for record in self.lint_verdicts(cfg)
                    if record["classification"] == "bailout"
                }
                batch = [
                    (index, kernel)
                    for index, kernel in batch
                    if f"clgen.{index}" not in doomed
                ]
            measured = driver.measure_many(
                [kernel.source for index, kernel in batch],
                names=[f"clgen.{index}" for index, kernel in batch],
                dataset_scales=[scales[index % len(scales)] for index, kernel in batch],
            )
            return [detached(measurement) for measurement in measured]

        return self._stage(
            "execute", "synthetic-measurements", synthetic_execution_fingerprint(cfg), compute
        )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _make_driver(self, cfg: PipelineConfig) -> HostDriver:
        return HostDriver(
            config=DriverConfig(
                executed_global_size=cfg.executed_global_size,
                local_size=cfg.local_size,
                payload_seed=cfg.payload_seed,
            )
        )

    def _record_event(self, stage: str, key: str, hit: bool, seconds: float) -> None:
        """Append one resolution event (used by the shard layer, which logs
        probes and pool-worker results itself)."""
        self.events.append(StageEvent(stage, key, hit, seconds))

    def _keep_live(self, token: tuple[str, str], value: object) -> None:
        self._live[token] = value
        while len(self._live) > self._LIVE_LIMIT:
            self._live.pop(next(iter(self._live)))

    @property
    def stealing(self) -> bool:
        """True when stage resolution goes through the claim queue."""
        return self.plan.steal and self.store.directory is not None

    def queue(self):
        """The claim queue over this runner's store directory (steal mode)."""
        if self._shard_queue is None:
            from repro.store.queue import ShardQueue

            self._shard_queue = ShardQueue(
                self.store.directory,
                lease_seconds=self._lease_seconds,
                poll_seconds=self._poll_seconds,
            )
        return self._shard_queue

    def has_entry(self, kind: str, key: str) -> bool:
        """Whether the store already holds ``(kind, key)`` on disk — a
        cheap existence probe that records no event and decodes nothing."""
        path = self.store.entry_path(kind, key)
        return path is not None and path.exists()

    def _stage(self, stage: str, kind: str, key: str, compute, direct: bool = False):
        started = time.perf_counter()
        value = self.store.get(kind, key)
        if value is not None:
            self.events.append(
                StageEvent(stage, key, True, time.perf_counter() - started)
            )
            return value
        if self.stealing and not direct:
            return self._stage_stolen(stage, kind, key, compute, started)
        return self._compute_stage(stage, kind, key, compute, started)

    def _compute_stage(self, stage: str, kind: str, key: str, compute, started: float):
        mark = len(self.events)
        value = compute()
        self.store.put(kind, key, value)
        # Upstream stages resolved inside compute() logged their own events;
        # subtract them so each event carries exclusive wall-clock.  Clamped:
        # pool-computed shards report aggregate worker seconds, which can
        # exceed the enclosing merge's wall-clock.
        nested = sum(event.seconds for event in self.events[mark:])
        self.events.append(
            StageEvent(stage, key, False, max(0.0, time.perf_counter() - started - nested))
        )
        return value

    def _stage_stolen(self, stage: str, kind: str, key: str, compute, started: float):
        """Claim-or-await resolution (work-stealing mode).

        Exactly one concurrent runner wins the claim and computes — under a
        lease heartbeat, so a long compute is never mistaken for a dead
        worker — while everyone else polls the store until the artifact
        lands, recorded as a hit whose seconds are wait rather than work
        (one reason steal-mode sessions are refused as bench timing
        sources).  A crashed winner's claim expires after its lease and the
        next poller steals it, charging the death against the task's retry
        budget; a winner whose compute *raises* records the failure and
        releases the claim, so the task is retried (here or elsewhere)
        until the budget runs out and it is quarantined — at which point
        every claimer and waiter raises
        :class:`~repro.errors.PlanFailed` instead of spinning.

        A simulated *crash* (:class:`~repro.store.faults.InjectedCrash`, a
        ``BaseException``) — like a real ``SIGKILL``, a ``KeyboardInterrupt``
        or the interpreter dying — deliberately leaves the claim held: the
        lease-expiry steal is the recovery path for deaths, and releasing
        on the way out would hide it from testing.
        """
        from repro.errors import PlanFailed
        from repro.store.faults import fault_point

        queue = self.queue()
        while True:
            queue.raise_if_failed(key)
            if queue.try_claim(key):
                fault_point("crash_after_claim", kind=kind)
                try:
                    with queue.heartbeat(key):
                        value = self._compute_stage(stage, kind, key, compute, started)
                except PlanFailed:
                    # An upstream task (resolved inside compute) was
                    # quarantined: this stage did not fail, it can never
                    # run.  Pass the verdict through unconsumed.
                    queue.release(key)
                    raise
                except Exception as error:
                    quarantined = queue.record_failure(key, error)
                    queue.release(key)
                    if quarantined:
                        raise PlanFailed(key, queue.failure(key)) from error
                    continue  # budget remains: retry (or let another worker)
                queue.complete(key)
                return value
            time.sleep(queue.poll_seconds)
            value = self.store.get(kind, key)
            if value is not None:
                self.events.append(
                    StageEvent(stage, key, True, time.perf_counter() - started)
                )
                return value


_DEFAULT_RUNNER: PipelineRunner | None = None


def default_runner() -> PipelineRunner:
    """The process-wide runner over the env-configured (or memory) store.

    The shard plan comes from ``REPRO_SHARDS`` / ``REPRO_WORKERS``, which is
    how entry points that only take a runner implicitly — the experiment
    harness, the bench session fixtures — opt into sharded resolution.
    """
    global _DEFAULT_RUNNER
    plan = plan_from_env()
    if (
        _DEFAULT_RUNNER is None
        or _DEFAULT_RUNNER.store is not resolve_store(None)
        or _DEFAULT_RUNNER.requested_plan != plan
    ):
        _DEFAULT_RUNNER = PipelineRunner(store=resolve_store(None), plan=plan)
    return _DEFAULT_RUNNER
