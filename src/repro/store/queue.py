"""The work-stealing shard queue, materialized in the artifact store.

PR 4's sharding statically partitions ranges: worker *k* computes shards
``k, k+N, ...`` and everyone idles behind the slowest straggler before the
merge can fire.  This module replaces assignment with **claiming**: the
pending work of a pipeline plan is the set of store keys that do not exist
yet, and a worker takes a unit of work by atomically creating a *claim
file* for its key.  ``O_CREAT | O_EXCL`` is the whole mutual-exclusion
story — the filesystem guarantees exactly one creator — so any number of
heterogeneous workers (threads, processes, machines sharing one
``REPRO_STORE_DIR`` over a network filesystem) drain one plan without a
coordinator.

Crash tolerance comes from **leases**: a claim carries its creation time
(the file's mtime), and a claim older than the lease is treated as
abandoned — some worker died mid-shard.  Stealing an expired claim is a
two-step dance that preserves single-winner semantics: rename the stale
claim file away (``os.rename`` has exactly one winner; losers see
``ENOENT``) and then re-create the claim with ``O_EXCL`` as usual.  The
artifact a crashed worker half-wrote is invisible by construction — store
writes land via temp file + ``os.replace``, so an interrupted shard leaves
only a stale ``.tmp.`` spill (swept by gc), never a truncated entry.

Completion needs no bookkeeping either: a unit of work is done exactly
when its store entry exists.  Workers therefore poll the store between
claim attempts, and the stage merge fires in whichever worker claims it
after the last shard lands.  Because every compute is a deterministic
function of fingerprinted inputs, even the worst race — two workers
computing the same shard because a lease expired under a live-but-slow
worker — is benign: both leave byte-identical entries.

A **plan** is how ``repro worker`` finds work in the first place: the
process that wants a pipeline resolved publishes its
:class:`~repro.store.stages.PipelineConfig` plus shard count as an ordinary
store artifact (kind ``plan``), and workers pointed at the directory
enumerate the plans and drain each one's stage graph through the claim
protocol until nothing is left to do.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.envutil import env_float

#: A claim older than this is an abandoned worker's, and may be stolen.
DEFAULT_LEASE_SECONDS = 300.0

#: How long a worker sleeps between probes while someone else holds a claim.
DEFAULT_POLL_SECONDS = 0.05


def default_lease_seconds() -> float:
    """The claim lease from ``REPRO_QUEUE_LEASE`` (seconds), hardened."""
    return env_float("REPRO_QUEUE_LEASE", default=DEFAULT_LEASE_SECONDS, minimum=0.001)


class ShardQueue:
    """Claim/lease coordination for one store directory.

    Claims live in ``<directory>/queue/claims/<key>.claim`` — beside, not
    inside, the artifact kind directories, so gc and stats never mistake
    them for entries.  Task identifiers are artifact store keys
    (fingerprints), which are globally unique across kinds and plans, so
    one claim namespace serves every plan sharing the store.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        lease_seconds: float | None = None,
        poll_seconds: float | None = None,
    ):
        self.claims = Path(directory) / "queue" / "claims"
        self.lease_seconds = (
            lease_seconds if lease_seconds is not None else default_lease_seconds()
        )
        self.poll_seconds = (
            poll_seconds if poll_seconds is not None else DEFAULT_POLL_SECONDS
        )
        self.worker_id = (
            f"{socket.gethostname()}.{os.getpid()}.{threading.get_ident()}"
        )

    def _claim_path(self, task_id: str) -> Path:
        return self.claims / f"{task_id}.claim"

    # ------------------------------------------------------------------
    # The claim protocol.
    # ------------------------------------------------------------------

    def try_claim(self, task_id: str) -> bool:
        """Atomically take *task_id*; steal it first if its lease expired.

        Returns ``True`` for exactly one caller per claim lifetime: the
        ``O_EXCL`` create admits a single winner, and an expired claim is
        stolen through a single-winner ``os.rename`` before re-claiming.
        """
        path = self._claim_path(task_id)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        if self._create_claim(path):
            return True
        if not self._expired(path):
            return False
        # Steal: move the stale claim aside.  os.rename of one source has
        # exactly one winner — every losing stealer gets ENOENT — and the
        # slot then reopens for an ordinary O_EXCL claim (which a third
        # worker may legitimately win first).
        stale = path.with_name(
            f"{path.name}.stale.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            os.rename(path, stale)
        except OSError:
            return False
        try:
            stale.unlink()
        except OSError:
            pass
        return self._create_claim(path)

    def _create_claim(self, path: Path) -> bool:
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        payload = json.dumps(
            {"worker": self.worker_id, "claimed_at": time.time()}
        )
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        return True

    def _expired(self, path: Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # Vanished between the failed create and this stat: the holder
            # completed (or a stealer renamed it).  Not ours to steal; the
            # caller re-probes the store / retries the claim.
            return False
        return age > self.lease_seconds

    def refresh(self, task_id: str) -> None:
        """Extend the lease of a held claim (long computes call this to
        keep stealers away; missing it only risks duplicate benign work)."""
        try:
            os.utime(self._claim_path(task_id))
        except OSError:
            pass

    def complete(self, task_id: str) -> None:
        """Drop the claim after the artifact landed (or the compute raised,
        so another worker may retry without waiting out the lease)."""
        try:
            self._claim_path(task_id).unlink()
        except OSError:
            pass

    def holder(self, task_id: str) -> dict | None:
        """The claim record for *task_id*, or ``None`` (diagnostics only)."""
        try:
            return json.loads(self._claim_path(task_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None


# ---------------------------------------------------------------------------
# Published plans: how `repro worker` discovers what to drain.
# ---------------------------------------------------------------------------


def plan_fingerprint(cfg, shards: int) -> str:
    """The store key of the plan resolving *cfg* at *shards* shards.

    Keyed off the two execute-side fingerprints (which transitively include
    every upstream stage), so a plan readdresses whenever any stage of the
    pipeline it describes would.
    """
    from repro.store import stages
    from repro.store.fingerprint import fingerprint

    return fingerprint(
        "plan",
        {
            "suite": stages.suite_execution_fingerprint(cfg),
            "synthetic": stages.synthetic_execution_fingerprint(cfg),
            "shards": shards,
        },
    )


def publish_plan(store, cfg, shards: int) -> str:
    """Persist *cfg* as a drainable plan; returns its key.

    Idempotent: republishing the same configuration lands on the same key
    with the same bytes.
    """
    key = plan_fingerprint(cfg, shards)
    store.put("plan", key, {"config": cfg, "shards": shards})
    return key


def load_plans(store) -> list[tuple[str, dict]]:
    """All published plans in *store*, as ``(key, value)`` pairs.

    Sorted by key so every worker visits plans in the same order (workers
    colliding on the same plan is fine — that is the point — but a shared
    order drains one plan at full width before starting the next).
    """
    return [
        (key, value)
        for key in sorted(store.keys("plan"))
        if (value := store.get("plan", key)) is not None
    ]


def drain_plan(runner, cfg) -> None:
    """Resolve every stage of *cfg* through *runner*.

    Ordered so independent work comes first: the suite-side measurements
    need no model, so workers blocked behind another worker's ``train``
    claim would otherwise idle when there are still suite shards to take.
    ``content_files`` is listed explicitly because the sharded corpus merge
    consumes mine *shards* directly — without it the whole-``mine`` entry
    an unsharded run leaves behind would be missing, and queue-drained
    stores must be entry-for-entry identical to unsharded ones.
    """
    runner.suite_measurements(cfg)
    runner.content_files(cfg)
    runner.synthesis(cfg)
    runner.synthetic_measurements(cfg)
